//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `pat in strategy` arguments, `prop_assert*!`
//! macros, range/tuple/`any`/`select`/`collection::vec` strategies, and a
//! deterministic per-test RNG. There is **no shrinking**: a failing case
//! reports the case number and message and panics immediately. Each test
//! function's stream is seeded from its name, so failures reproduce
//! exactly across runs.

pub mod test_runner {
    //! Configuration, RNG, and failure type for generated tests.

    use std::fmt;

    /// Per-`proptest!` configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given reason.
        #[must_use]
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                message: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Shorthand result alias (mirrors upstream).
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test RNG (xorshift64*, seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's name, so every run of that test
        /// draws the same cases.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, mixed with a fixed offset so short
            // names still spread.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h | 1, // never zero
            }
        }

        /// Next raw word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use crate::test_runner::TestRng;

    /// Something that can generate values of a type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy per type.

    use core::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod sample {
    //! Uniform selection from a fixed set.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniformly selects one of `options` (must be nonempty).
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::sample::select`, `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `#[test] fn name(pat in strategy, ...) { .. }`.
///
/// Unlike upstream proptest there is no shrinking; the failing case number
/// and message are reported directly. Bodies may use `?` on
/// `Result<_, TestCaseError>` and the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body (fails the case, not the
/// process, so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1usize..8) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..8).contains(&y));
        }

        #[test]
        fn tuples_and_vectors(data in prop::collection::vec((any::<u8>(), 0u16..100), 0..6)) {
            prop_assert!(data.len() < 6);
            for (_, v) in &data {
                prop_assert!(*v < 100);
            }
        }

        #[test]
        fn select_draws_members(v in prop::sample::select(vec![2i64, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&v));
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            let parsed: u32 = format!("{x}")
                .parse()
                .map_err(|e| crate::test_runner::TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, x);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
