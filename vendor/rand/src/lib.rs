//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate reimplements exactly the API surface the DSAGEN
//! workspace consumes: [`rngs::StdRng`] (a deterministic xoshiro256**),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! and [`seq::SliceRandom`] (`choose`/`shuffle`).
//!
//! Determinism is the only contract that matters to the workspace (every
//! scheduler/DSE run is seeded); the exact stream does *not* match the
//! upstream `rand` crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (expanded internally
    /// with splitmix64, as upstream does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly samples from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero degenerate state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// `choose` and `shuffle` on slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn full_u16_inclusive_range_hits_extremes_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = u16::MAX;
        let mut hi = 0u16;
        for _ in 0..20_000 {
            let v = rng.gen_range(0u16..=u16::MAX);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 1000, "lo {lo}");
        assert!(hi > 64_000, "hi {hi}");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
