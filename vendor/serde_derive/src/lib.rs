//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The derives accept (and discard) `#[serde(...)]` helper attributes so
//! annotations like `#[serde(skip)]` keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
