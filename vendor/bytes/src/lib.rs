//! Offline stand-in for the `bytes` crate.
//!
//! Backed by plain `Vec<u8>` (no refcounted zero-copy splitting — the
//! workspace only builds buffers and reads them back).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Append-style writing of primitive values (big-endian, as upstream).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_u64_is_big_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u64(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(frozen.len(), 8);
    }

    #[test]
    fn roundtrip_via_vec() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32(0xDEAD_BEEF);
        v.put_u8(0x42);
        assert_eq!(v, vec![0xDE, 0xAD, 0xBE, 0xEF, 0x42]);
        let b: Bytes = v.into();
        assert!(!b.is_empty());
    }
}
