//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations (there is no serializer backend such as `serde_json` in the
//! dependency tree), so this vendored crate provides marker traits and
//! no-op derive macros. Should a real serializer ever be added, replace
//! this stub with the upstream crate.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
