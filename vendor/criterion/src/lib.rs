//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides `Criterion`, `Bencher::iter`/`iter_batched`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock mean over `sample_size` batches — no statistics, plots, or
//! outlier analysis. Enough to run `cargo bench` offline and spot
//! order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// Re-exported so call sites can spell `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-runs for every iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!("bench {name:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.total += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion::default().sample_size(2);
        let mut sum = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| sum += v, BatchSize::LargeInput)
        });
        assert_eq!(sum, 42);
    }
}
