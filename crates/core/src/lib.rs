//! # DSAGEN — programmable spatial-accelerator synthesis
//!
//! A from-scratch Rust reproduction of *DSAGEN: Synthesizing Programmable
//! Spatial Accelerators* (Weng et al., ISCA 2020). The framework composes
//! decoupled-spatial hardware primitives into an architecture description
//! graph (ADG), compiles annotated kernels onto any such graph with
//! modular, feature-gated transformations, and co-designs hardware and
//! software by iterative graph search under a `perf²/mm²` objective.
//!
//! The subsystems live in dedicated crates, re-exported here:
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`adg`] | `dsagen-adg` | §III hardware primitives & presets |
//! | [`dfg`] | `dsagen-dfg` | §IV decoupled IR & modular compilation |
//! | [`scheduler`] | `dsagen-scheduler` | §IV Alg. 1 + §V-A repair |
//! | [`model`] | `dsagen-model` | §V-B/C performance & area models |
//! | [`sim`] | `dsagen-sim` | §VII cycle-level simulator |
//! | [`dse`] | `dsagen-dse` | §V design-space exploration |
//! | [`hwgen`] | `dsagen-hwgen` | §VI hardware generation |
//! | [`workloads`] | `dsagen-workloads` | §VII Table I benchmarks |
//! | [`faults`] | `dsagen-faults` | fault injection & graceful degradation |
//!
//! This crate adds the top-level flows: [`compile`] (pick the best legal
//! kernel version for a given ADG), [`generate`] (bitstream + config paths
//! + structural RTL), and a re-export of [`dse::explore`].
//!
//! # Quickstart
//!
//! ```
//! use dsagen::prelude::*;
//!
//! // Target one of the paper's accelerators…
//! let adg = dsagen::adg::presets::softbrain();
//! // …compile one of the paper's workloads onto it…
//! let kernel = dsagen::workloads::machsuite::mm();
//! let compiled = dsagen::compile(&adg, &kernel, &CompileOptions::default())?;
//! // …and simulate it.
//! let report = dsagen::sim::simulate(
//!     &adg,
//!     &compiled.version,
//!     &compiled.schedule,
//!     &compiled.eval,
//!     compiled.config_path_len,
//!     &dsagen::sim::SimConfig::default(),
//! )?;
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use dsagen_adg as adg;
pub use dsagen_dfg as dfg;
pub use dsagen_dse as dse;
pub use dsagen_faults as faults;
pub use dsagen_hwgen as hwgen;
pub use dsagen_model as model;
pub use dsagen_scheduler as scheduler;
pub use dsagen_service as service;
pub use dsagen_sim as sim;
pub use dsagen_store as store;
pub use dsagen_telemetry as telemetry;
pub use dsagen_workloads as workloads;

pub mod attribution;

use std::error::Error;
use std::fmt;

use dsagen_adg::Adg;
use dsagen_dfg::{compile_kernel, enumerate_configs, CompiledKernel, Kernel};
use dsagen_hwgen::{generate_config_paths, Bitstream, ConfigPaths};
use dsagen_model::{PerfEstimate, PerfModel};
use dsagen_scheduler::{schedule as run_scheduler, Evaluation, Problem, Schedule, SchedulerConfig};

/// Commonly used items for `use dsagen::prelude::*`.
pub mod prelude {
    pub use crate::attribution::{attribute, Attribution};
    pub use crate::{
        compile, compile_traced, generate, recover, recover_with_degradation, CompileError,
        CompileOptions, Compiled, Hardware,
    };
    pub use dsagen_faults::{FaultLifetime, FaultSchedule, StormConfig};
    pub use dsagen_sim::{
        RecoveryError, RecoveryOutcome, RecoveryPolicy, RecoveryReport, RepairRung,
    };
    pub use dsagen_adg::{Adg, BitWidth, OpSet, Opcode, PeSpec, Scheduling, Sharing};
    pub use dsagen_dfg::{
        AffineExpr, Kernel, KernelBuilder, MemClass, TransformConfig, TripCount,
    };
    pub use dsagen_dse::{explore, DseConfig};
    pub use dsagen_scheduler::SchedulerConfig;
}

/// Options for the top-level [`compile`] flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Maximum vectorization degree enumerated (§IV-E).
    pub max_unroll: u16,
    /// Scheduler tunables.
    pub scheduler: SchedulerConfig,
    /// Number of configuration paths generated for the config-time charge.
    pub config_paths: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_unroll: 8,
            scheduler: SchedulerConfig::default(),
            config_paths: 4,
        }
    }
}

/// The outcome of compiling one kernel onto one ADG: the best legal
/// version (highest modeled performance), its schedule, and its estimate.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The chosen kernel version.
    pub version: CompiledKernel,
    /// Its spatial schedule.
    pub schedule: Schedule,
    /// The schedule's evaluation (timing facts for models/simulator).
    pub eval: Evaluation,
    /// The §V-B performance estimate.
    pub perf: PerfEstimate,
    /// Longest configuration path of the hardware (config-time charge).
    pub config_path_len: u32,
    /// How many candidate versions were tried.
    pub candidates_tried: usize,
}

/// Errors from the top-level flows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The kernel itself is malformed.
    Kernel(dsagen_dfg::DfgError),
    /// No candidate version produced a legal schedule on this hardware
    /// (e.g. the fabric lacks required functional units entirely).
    NoLegalVersion {
        /// Kernel name.
        kernel: String,
        /// Target ADG name.
        adg: String,
        /// Candidates attempted.
        tried: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Kernel(e) => write!(f, "kernel error: {e}"),
            CompileError::NoLegalVersion { kernel, adg, tried } => write!(
                f,
                "no legal version of '{kernel}' maps onto '{adg}' ({tried} candidates tried)"
            ),
        }
    }
}

impl Error for CompileError {}

impl From<dsagen_dfg::DfgError> for CompileError {
    fn from(e: dsagen_dfg::DfgError) -> Self {
        CompileError::Kernel(e)
    }
}

/// Compiles `kernel` onto `adg`: enumerates modular-transformation
/// configurations gated by the hardware's features, compiles and schedules
/// each satisfiable version, and returns the one with the best modeled
/// performance (§IV-C "the compiler goes through each candidate of each
/// code transformation, and chooses one with the highest estimated
/// performance").
///
/// # Errors
///
/// [`CompileError::Kernel`] if the kernel is malformed;
/// [`CompileError::NoLegalVersion`] if nothing maps (the scalar fallback
/// exists for every kernel, so this only happens when the fabric is
/// fundamentally incompatible — e.g. no floating-point units for an FP
/// kernel).
pub fn compile(
    adg: &Adg,
    kernel: &Kernel,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    compile_traced(adg, kernel, opts, &dsagen_telemetry::Telemetry::disabled())
}

/// [`compile`] with phase spans reported into `tel`: one outer
/// `compile` span, per-candidate `schedule` spans (with legality and
/// reseed counts), and a `model` span per surviving candidate. Passing
/// [`dsagen_telemetry::Telemetry::disabled`] makes this byte-for-byte
/// identical to [`compile`] — instrumentation never changes which
/// version wins.
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_traced(
    adg: &Adg,
    kernel: &Kernel,
    opts: &CompileOptions,
    tel: &dsagen_telemetry::Telemetry,
) -> Result<Compiled, CompileError> {
    let mut compile_span = tel.span("phase", format!("compile {}", kernel.name));
    kernel.validate()?;
    let features = adg.features();
    let config_path_len = {
        let _span = tel.span("phase", "config-paths");
        generate_config_paths(adg, opts.config_paths, opts.scheduler.seed).longest() as u32
    };
    let perf_model = PerfModel::default();

    let mut best: Option<Compiled> = None;
    let mut tried = 0usize;
    for config in enumerate_configs(kernel, &features, opts.max_unroll) {
        let version = compile_kernel(kernel, &config, &features)?;
        if !version.requires.satisfied_by(&features) {
            continue;
        }
        tried += 1;
        // The stochastic scheduler occasionally needs a reseed on tightly
        // constrained topologies; give each version a few attempts.
        let mut sched_span = tel.span("phase", "schedule");
        let mut result = run_scheduler(adg, &version, &opts.scheduler);
        let mut reseeds = 0u64;
        for retry in 1..3u64 {
            if result.is_legal() {
                break;
            }
            reseeds += 1;
            let reseeded = SchedulerConfig {
                seed: opts.scheduler.seed.wrapping_add(retry * 0x9E37_79B9),
                ..opts.scheduler
            };
            result = run_scheduler(adg, &version, &reseeded);
        }
        sched_span.arg("candidate", tried);
        sched_span.arg("unroll", u64::from(version.config.unroll));
        sched_span.arg("legal", result.is_legal());
        sched_span.arg("reseeds", reseeds);
        sched_span.end();
        if !result.is_legal() {
            continue;
        }
        let perf = {
            let _span = tel.span("phase", "model");
            perf_model.estimate(adg, &version, &result.schedule, &result.eval, config_path_len)
        };
        // Faster wins; performance ties break toward the version using
        // fewer instructions (less fabric, less energy — e.g. sub-word
        // packing at the same port-limited throughput).
        let better = best.as_ref().is_none_or(|b| {
            perf.cycles < b.perf.cycles * 0.999
                || (perf.cycles < b.perf.cycles * 1.001
                    && version.inst_count() < b.version.inst_count())
        });
        if better {
            best = Some(Compiled {
                version,
                schedule: result.schedule,
                eval: result.eval,
                perf,
                config_path_len,
                candidates_tried: 0,
            });
        }
    }
    compile_span.arg("candidates", tried);
    compile_span.arg("legal_version_found", best.is_some());
    compile_span.end();
    match best {
        Some(mut c) => {
            c.candidates_tried = tried;
            Ok(c)
        }
        None => Err(CompileError::NoLegalVersion {
            kernel: kernel.name.clone(),
            adg: adg.name().to_string(),
            tried,
        }),
    }
}

/// Generated hardware artifacts (§VI).
#[derive(Debug, Clone)]
pub struct Hardware {
    /// Per-component configuration bitstream for the compiled program.
    pub bitstream: Bitstream,
    /// Configuration paths covering every component.
    pub config_paths: ConfigPaths,
    /// Structural Verilog for the fabric.
    pub verilog: String,
}

/// Produces the §VI hardware artifacts for a compiled kernel on `adg`.
#[must_use]
pub fn generate(adg: &Adg, compiled: &Compiled, config_paths: usize, seed: u64) -> Hardware {
    let problem = Problem::new(adg, &compiled.version);
    Hardware {
        bitstream: Bitstream::encode_with_timing(&problem, &compiled.schedule, &compiled.eval),
        config_paths: generate_config_paths(adg, config_paths, seed),
        verilog: dsagen_hwgen::emit_verilog(adg),
    }
}

/// Runs a [`Compiled`] kernel on `adg` under a mid-execution
/// [`FaultSchedule`](dsagen_faults::FaultSchedule), recovering every
/// detected fault: checkpoint → online repair → verified reprogramming →
/// resume. Convenience wrapper over
/// [`dsagen_sim::run_with_recovery`] that unpacks the compiled artifact.
///
/// # Errors
///
/// A typed [`dsagen_sim::RecoveryError`] for every terminal failure mode
/// (`Unrecoverable` when repair exhausts its escalation budget). Never
/// panics.
pub fn recover(
    adg: &Adg,
    compiled: &Compiled,
    cfg: &dsagen_sim::SimConfig,
    faults: &dsagen_faults::FaultSchedule,
    policy: &dsagen_sim::RecoveryPolicy,
    tel: &dsagen_telemetry::Telemetry,
) -> Result<dsagen_sim::RecoveryReport, dsagen_sim::RecoveryError> {
    dsagen_sim::run_with_recovery(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        cfg,
        faults,
        policy,
        tel,
    )
}

/// [`recover`] with the degradation ladder's typed outcome: distinguishes
/// a full-fidelity [`dsagen_sim::RecoveryOutcome::Recovered`] finish from
/// a [`dsagen_sim::RecoveryOutcome::Degraded`] one (structural repair
/// exhausted; the run finished on the surviving fabric at a measured
/// fraction of fault-free throughput). Convenience wrapper over
/// [`dsagen_sim::run_with_degradation`].
///
/// # Errors
///
/// A typed [`dsagen_sim::RecoveryError`] only when even the degraded-mode
/// reschedule cannot produce a legal mapping. Never panics.
pub fn recover_with_degradation(
    adg: &Adg,
    compiled: &Compiled,
    cfg: &dsagen_sim::SimConfig,
    faults: &dsagen_faults::FaultSchedule,
    policy: &dsagen_sim::RecoveryPolicy,
    tel: &dsagen_telemetry::Telemetry,
) -> Result<dsagen_sim::RecoveryOutcome, dsagen_sim::RecoveryError> {
    dsagen_sim::run_with_degradation(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        cfg,
        faults,
        policy,
        tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_adg::presets;

    #[test]
    fn compile_picks_an_unrolled_version_for_mm() {
        let adg = presets::softbrain();
        let kernel = dsagen_workloads::machsuite::mm();
        let c = compile(&adg, &kernel, &CompileOptions::default()).unwrap();
        assert!(c.candidates_tried >= 2);
        assert!(c.version.config.unroll >= 1);
        assert!(c.perf.cycles > 0.0);
    }

    #[test]
    fn compile_errors_on_incompatible_fabric() {
        use dsagen_adg::*;
        // An integer-only fabric cannot host an FP kernel, even as fallback.
        let mut adg = Adg::new("int-only");
        let ctrl = adg.add_control(CtrlSpec::new());
        let mem = adg.add_memory(MemSpec::main_memory());
        let sy_in = adg.add_sync(SyncSpec::new(8));
        let sy_out = adg.add_sync(SyncSpec::new(8));
        let pe = adg.add_pe(PeSpec::new(
            Scheduling::Dynamic,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        adg.add_link(ctrl, mem).unwrap();
        adg.add_link(mem, sy_in).unwrap();
        adg.add_link(sy_in, pe).unwrap();
        adg.add_link(sy_in, pe).unwrap();
        adg.add_link(pe, sy_out).unwrap();
        adg.add_link(sy_out, mem).unwrap();
        adg.validate().unwrap();

        let kernel = dsagen_workloads::machsuite::mm(); // FP multiply
        let err = compile(&adg, &kernel, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::NoLegalVersion { .. }));
    }

    #[test]
    fn generate_produces_all_artifacts() {
        let adg = presets::softbrain();
        let kernel = dsagen_workloads::polybench::mm();
        let c = compile(&adg, &kernel, &CompileOptions::default()).unwrap();
        let hw = generate(&adg, &c, 4, 1);
        assert!(hw.bitstream.word_count() > 0);
        assert!(hw.config_paths.longest() > 0);
        assert!(hw.verilog.contains("dsagen_top"));
    }
}
