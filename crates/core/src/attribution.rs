//! Model-vs-sim attribution: *why* do the analytical model (§V-B) and
//! the cycle-level simulator (§VII) disagree on a design point?
//!
//! The paper validates the model against simulation only as a scalar
//! error (Fig 15 bottom: mean 7%). This module makes the comparison
//! queryable: for any compiled kernel it joins the model's predicted
//! bottleneck term (the `max()` the per-region cycle count came from —
//! compute, memory, recurrence, or control) against the simulator's
//! measured stall taxonomy, and reports per-region and per-kernel error
//! plus whether the two agree on *what* the bottleneck is.

use std::fmt::Write as _;

use dsagen_adg::Adg;
use dsagen_model::RegionPerf;
use dsagen_sim::telemetry::RegionTally;
use dsagen_sim::{simulate_instrumented, SimConfig, SimReport, SimTelemetry, StallTaxonomy};
use dsagen_telemetry::{escape_json, EventData, Telemetry};

use crate::Compiled;

/// The model's binding term for one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// `instances × effective II` dominates (fabric-limited).
    Compute,
    /// A memory's bandwidth dominates.
    Memory,
    /// A loop-carried dependence dominates.
    Recurrence,
    /// Control-core scalar work / command issue dominates.
    Ctrl,
}

impl Bottleneck {
    /// Short label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Memory => "memory",
            Bottleneck::Recurrence => "recurrence",
            Bottleneck::Ctrl => "ctrl",
        }
    }

    /// The binding term of one modeled region.
    #[must_use]
    pub fn of(perf: &RegionPerf) -> Bottleneck {
        let terms = [
            (Bottleneck::Compute, perf.compute_cycles),
            (Bottleneck::Memory, perf.memory_cycles),
            (Bottleneck::Recurrence, perf.recurrence_cycles),
            (Bottleneck::Ctrl, perf.ctrl_cycles),
        ];
        terms
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(Bottleneck::Compute, |t| t.0)
    }

    /// Whether a measured dominant stall/state label is the symptom this
    /// predicted bottleneck would produce in the engine.
    ///
    /// * `Compute` — the fabric fires almost every cycle or waits only on
    ///   its own initiation interval (`busy`, `ii`).
    /// * `Memory` — streams starve the fabric (`operand-wait`) or
    ///   backpressure it (`backpressure`), or arbitration loses cycles
    ///   (`memory`).
    /// * `Recurrence` — the engine folds recurrence gating into the
    ///   firing interval (`ii`).
    /// * `Ctrl` — control-fed streams throttle the region
    ///   (`operand-wait` on the fabric side, `ctrl` at stream level).
    #[must_use]
    pub fn explains(self, measured: &str) -> bool {
        match self {
            Bottleneck::Compute => matches!(measured, "busy" | "ii" | "none"),
            Bottleneck::Memory => {
                matches!(measured, "operand-wait" | "backpressure" | "memory")
            }
            Bottleneck::Recurrence => matches!(measured, "ii" | "busy"),
            Bottleneck::Ctrl => matches!(measured, "operand-wait" | "ctrl"),
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The dominant measured state of one region: `busy` if it fired more
/// cycles than it lost to any single stall cause, otherwise the largest
/// exclusive stall cause.
#[must_use]
pub fn measured_dominant(tally: &RegionTally) -> (&'static str, u64) {
    let candidates = [
        ("busy", tally.fired_cycles),
        ("operand-wait", tally.operands),
        ("backpressure", tally.backpressure),
        ("ii", tally.ii),
    ];
    let best = candidates
        .iter()
        .max_by_key(|(_, c)| *c)
        .copied()
        .unwrap_or(("none", 0));
    if best.1 == 0 {
        ("none", 0)
    } else {
        best
    }
}

/// One region's joined prediction/measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionAttribution {
    /// Region index within the kernel.
    pub region: usize,
    /// Modeled cycles for the region.
    pub predicted_cycles: f64,
    /// The model's binding term.
    pub predicted_bottleneck: Bottleneck,
    /// Simulated cycles for the region (within its group timeline).
    pub measured_cycles: u64,
    /// Dominant measured state label (`busy` or a stall cause).
    pub measured_dominant: &'static str,
    /// Cycles of the dominant state.
    pub measured_dominant_cycles: u64,
    /// Whether the measured symptom is one the predicted bottleneck
    /// explains (see [`Bottleneck::explains`]).
    pub agrees: bool,
}

/// The full model-vs-sim attribution for one kernel on one ADG — the
/// paper's Fig 15-bottom validation, now queryable per design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Kernel name.
    pub kernel: String,
    /// ADG name.
    pub adg: String,
    /// Model-predicted total cycles.
    pub predicted_cycles: f64,
    /// Simulator-measured total cycles.
    pub measured_cycles: u64,
    /// Relative error `|predicted − measured| / measured`.
    pub error: f64,
    /// Per-region joins.
    pub regions: Vec<RegionAttribution>,
    /// Whole-run measured stall taxonomy.
    pub taxonomy: StallTaxonomy,
    /// The public simulation report the measurement came from.
    pub report: SimReport,
}

impl Attribution {
    /// Fraction of regions where model and simulator agree on the
    /// bottleneck.
    #[must_use]
    pub fn agreement_rate(&self) -> f64 {
        if self.regions.is_empty() {
            return 1.0;
        }
        self.regions.iter().filter(|r| r.agrees).count() as f64 / self.regions.len() as f64
    }

    /// Hand-rendered JSON object (the vendored serde is a no-op).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"kernel\":\"{}\",\"adg\":\"{}\",\"predicted_cycles\":{:.1},\
\"measured_cycles\":{},\"error\":{:.4},\"agreement_rate\":{:.3},\"taxonomy\":{},\"regions\":[",
            escape_json(&self.kernel),
            escape_json(&self.adg),
            self.predicted_cycles,
            self.measured_cycles,
            self.error,
            self.agreement_rate(),
            self.taxonomy.to_json()
        );
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"region\":{},\"predicted_cycles\":{:.1},\"predicted_bottleneck\":\"{}\",\
\"measured_cycles\":{},\"measured_dominant\":\"{}\",\"measured_dominant_cycles\":{},\
\"agrees\":{}}}",
                r.region,
                r.predicted_cycles,
                r.predicted_bottleneck,
                r.measured_cycles,
                r.measured_dominant,
                r.measured_dominant_cycles,
                r.agrees
            );
        }
        s.push_str("]}");
        s
    }
}

/// Joins the analytical model's prediction against an instrumented
/// simulation of `compiled` on `adg`, emitting an `attribution` event
/// into `tel` and returning the per-region error table.
///
/// # Errors
///
/// Propagates the simulator's typed error if the schedule references
/// hardware absent from `adg` (see [`dsagen_sim::try_simulate`]).
pub fn attribute(
    adg: &Adg,
    kernel_name: &str,
    compiled: &Compiled,
    sim_cfg: &SimConfig,
    tel: &Telemetry,
) -> Result<Attribution, dsagen_sim::SimError> {
    let (report, hw) = simulate_instrumented(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        sim_cfg,
        tel,
    )?;
    let a = join(adg, kernel_name, compiled, report, &hw);
    let (err, rate) = (a.error, a.agreement_rate());
    tel.emit(|| {
        EventData::new("attribution", kernel_name.to_string())
            .arg("predicted_cycles", a.predicted_cycles)
            .arg("measured_cycles", a.measured_cycles)
            .arg("error", err)
            .arg("agreement_rate", rate)
    });
    Ok(a)
}

/// Pure join of a model estimate and an instrumented simulation (no
/// telemetry side effects) — used by [`attribute`] and directly by
/// tests.
#[must_use]
pub fn join(
    adg: &Adg,
    kernel_name: &str,
    compiled: &Compiled,
    report: SimReport,
    hw: &SimTelemetry,
) -> Attribution {
    let predicted = &compiled.perf;
    let mut regions = Vec::with_capacity(predicted.regions.len());
    for (ri, rp) in predicted.regions.iter().enumerate() {
        let bottleneck = Bottleneck::of(rp);
        let tally = hw.region_tallies.get(ri).copied().unwrap_or_default();
        let (label, cycles) = measured_dominant(&tally);
        regions.push(RegionAttribution {
            region: ri,
            predicted_cycles: rp.cycles,
            predicted_bottleneck: bottleneck,
            measured_cycles: report.region_cycles.get(ri).copied().unwrap_or(0),
            measured_dominant: label,
            measured_dominant_cycles: cycles,
            agrees: bottleneck.explains(label),
        });
    }
    let measured_cycles = report.cycles;
    Attribution {
        kernel: kernel_name.to_string(),
        adg: adg.name().to_string(),
        predicted_cycles: predicted.cycles,
        measured_cycles,
        error: (predicted.cycles - measured_cycles as f64).abs() / measured_cycles.max(1) as f64,
        regions,
        taxonomy: hw.taxonomy,
        report,
    }
}

/// Renders a fixed-width per-kernel error table from several
/// attributions (one row per kernel) — the Fig 15-bottom validation as
/// text.
#[must_use]
pub fn attribution_table(rows: &[Attribution]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>7}  {:<11} {:<13} {:>6}",
        "kernel", "model", "sim", "err%", "predicted", "measured", "agree"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    for a in rows {
        // Kernel-level bottleneck: the longest-running region decides.
        let lead = a
            .regions
            .iter()
            .max_by(|x, y| x.predicted_cycles.total_cmp(&y.predicted_cycles));
        let (pred, meas, agrees) = match lead {
            Some(r) => (
                r.predicted_bottleneck.label(),
                r.measured_dominant,
                r.agrees,
            ),
            None => ("-", "-", true),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>10.0} {:>10} {:>6.1}%  {:<11} {:<13} {:>6}",
            a.kernel,
            a.predicted_cycles,
            a.measured_cycles,
            a.error * 100.0,
            pred,
            meas,
            if agrees { "yes" } else { "NO" }
        );
    }
    if !rows.is_empty() {
        let mean_err = rows.iter().map(|a| a.error).sum::<f64>() / rows.len() as f64;
        let max_err = rows.iter().map(|a| a.error).fold(0.0f64, f64::max);
        let agree = rows.iter().map(Attribution::agreement_rate).sum::<f64>() / rows.len() as f64;
        let _ = writeln!(out, "{}", "-".repeat(80));
        let _ = writeln!(
            out,
            "mean error {:.1}%   max error {:.1}%   bottleneck agreement {:.0}%",
            mean_err * 100.0,
            max_err * 100.0,
            agree * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use dsagen_adg::presets;

    #[test]
    fn attribution_joins_model_and_sim() {
        let adg = presets::softbrain();
        let kernel = dsagen_workloads::machsuite::mm();
        let c = compile(&adg, &kernel, &CompileOptions::default()).unwrap();
        let tel = Telemetry::in_memory();
        let a = attribute(&adg, "mm", &c, &SimConfig::default(), &tel).unwrap();
        assert_eq!(a.kernel, "mm");
        assert!(a.measured_cycles > 0);
        assert!(a.predicted_cycles > 0.0);
        assert!(a.error.is_finite());
        assert_eq!(a.regions.len(), c.version.regions.len());
        for r in &a.regions {
            assert!(r.predicted_cycles > 0.0);
        }
        // The attribution event and sim counters landed in the sink.
        let events = tel.events();
        assert!(events.iter().any(|e| e.cat == "attribution"));
        assert!(events.iter().any(|e| e.cat == "sim.counters"));
        // Table and JSON render without panicking and mention the kernel.
        let table = attribution_table(std::slice::from_ref(&a));
        assert!(table.contains("mm"));
        assert!(table.contains("mean error"));
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"kernel\":\"mm\""));
    }

    #[test]
    fn bottleneck_of_picks_max_term() {
        let rp = RegionPerf {
            cycles: 100.0,
            compute_cycles: 10.0,
            memory_cycles: 100.0,
            recurrence_cycles: 5.0,
            ctrl_cycles: 1.0,
            activity: 0.1,
        };
        assert_eq!(Bottleneck::of(&rp), Bottleneck::Memory);
        assert!(Bottleneck::Memory.explains("operand-wait"));
        assert!(!Bottleneck::Compute.explains("backpressure"));
    }
}
