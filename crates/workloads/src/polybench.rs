//! PolyBench workloads (§VII, Table I): mm (32³), 2mm (32³), 3mm (32²),
//! plus atax and mvt — "all simple dense linear kernels with mostly
//! perfect loops" (§VIII-A).

use dsagen_adg::{BitWidth, Opcode};
use dsagen_dfg::{AffineExpr, Kernel, KernelBuilder, MemClass, TripCount};

use crate::machsuite::gemm_kernel;

/// mm — 32³ dense matrix multiply.
#[must_use]
pub fn mm() -> Kernel {
    gemm_kernel("poly-mm", 32)
}

/// 2mm — two chained matrix multiplies `D = (A·B)·C`, each 32³. The
/// intermediate matrix creates a memory-carried dependence between the two
/// offload regions (a barrier, unlike yield-forwarded scalars).
#[must_use]
pub fn mm2() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-2mm");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
    let b = k.array("b", BitWidth::B64, n * n, MemClass::Scratchpad);
    let tmp = k.array("tmp", BitWidth::B64, n * n, MemClass::Scratchpad);
    let c = k.array("c", BitWidth::B64, n * n, MemClass::Scratchpad);
    let d = k.array("d", BitWidth::B64, n * n, MemClass::MainMemory);

    for (name, src1, src2, dst) in [("mm1", a, b, tmp), ("mm2", tmp, c, d)] {
        let mut r = k.region(name, 1.0);
        let i = r.for_loop(TripCount::fixed(n), false);
        let j = r.for_loop(TripCount::fixed(n), true);
        let kk = r.for_loop(TripCount::fixed(n), false);
        let va = r.load(
            src1,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(kk)),
        );
        let vb = r.load(
            src2,
            AffineExpr::var(kk).scaled(n as i64).plus(&AffineExpr::var(j)),
        );
        let prod = r.bin(Opcode::FMul, va, vb);
        let acc = r.reduce(Opcode::FAdd, prod, kk);
        r.store(
            dst,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
            acc,
        );
        k.finish_region(r);
    }
    k.build().expect("2mm is well-formed")
}

/// 3mm — three matrix multiplies `G = (A·B)·(C·D)` at 32² blocks.
#[must_use]
pub fn mm3() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-3mm");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
    let b = k.array("b", BitWidth::B64, n * n, MemClass::Scratchpad);
    let c = k.array("c", BitWidth::B64, n * n, MemClass::MainMemory);
    let d = k.array("d", BitWidth::B64, n * n, MemClass::Scratchpad);
    let e = k.array("e", BitWidth::B64, n * n, MemClass::Scratchpad);
    let f = k.array("f", BitWidth::B64, n * n, MemClass::Scratchpad);
    let g = k.array("g", BitWidth::B64, n * n, MemClass::MainMemory);

    for (name, src1, src2, dst) in [
        ("mm1", a, b, e),
        ("mm2", c, d, f),
        ("mm3", e, f, g),
    ] {
        let mut r = k.region(name, 1.0);
        let i = r.for_loop(TripCount::fixed(n), false);
        let j = r.for_loop(TripCount::fixed(n), true);
        let kk = r.for_loop(TripCount::fixed(n), false);
        let va = r.load(
            src1,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(kk)),
        );
        let vb = r.load(
            src2,
            AffineExpr::var(kk).scaled(n as i64).plus(&AffineExpr::var(j)),
        );
        let prod = r.bin(Opcode::FMul, va, vb);
        let acc = r.reduce(Opcode::FAdd, prod, kk);
        r.store(
            dst,
            AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
            acc,
        );
        k.finish_region(r);
    }
    k.build().expect("3mm is well-formed")
}

/// atax — `y = Aᵀ(Ax)`: a matvec whose result row-scalar is immediately
/// consumed by the transpose accumulation (repetitive in-place update,
/// Fig 7b).
#[must_use]
pub fn atax() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-atax");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::Scratchpad);
    let x = k.array("x", BitWidth::B64, n, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B64, n, MemClass::MainMemory);

    // Region 0: per row i, tmp_i = Σ_j a[i][j]·x[j], yielded.
    let mut r0 = k.region("ax", 1.0);
    let i0 = r0.for_loop(TripCount::fixed(n), false);
    let j0 = r0.for_loop(TripCount::fixed(n), false);
    let va = r0.load(
        a,
        AffineExpr::var(i0).scaled(n as i64).plus(&AffineExpr::var(j0)),
    );
    let vx = r0.load(x, AffineExpr::var(j0));
    let p = r0.bin(Opcode::FMul, va, vx);
    let acc = r0.reduce(Opcode::FAdd, p, j0);
    r0.yield_value(acc);
    let r0i = k.finish_region(r0);

    // Region 1: y[j] += a[i][j]·tmp_i — repetitive in-place update on y.
    let mut r1 = k.region("aty", 1.0);
    let i1 = r1.for_loop(TripCount::fixed(n), false);
    let j1 = r1.for_loop(TripCount::fixed(n), true);
    let tmp = r1.consume(r0i, 0);
    let va1 = r1.load(
        a,
        AffineExpr::var(i1).scaled(n as i64).plus(&AffineExpr::var(j1)),
    );
    let p1 = r1.bin(Opcode::FMul, va1, tmp);
    r1.update(y, AffineExpr::var(j1), Opcode::FAdd, p1);
    k.finish_region(r1);
    k.build().expect("atax is well-formed")
}

/// mvt — two independent matvec accumulations `x1 += A·y1`, `x2 += Aᵀ·y2`,
/// fully concurrent regions within one config scope.
#[must_use]
pub fn mvt() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-mvt");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::Scratchpad);
    let x1 = k.array("x1", BitWidth::B64, n, MemClass::MainMemory);
    let y1 = k.array("y1", BitWidth::B64, n, MemClass::Scratchpad);
    let x2 = k.array("x2", BitWidth::B64, n, MemClass::MainMemory);
    let y2 = k.array("y2", BitWidth::B64, n, MemClass::Scratchpad);

    let mut r0 = k.region("mv", 1.0);
    let i = r0.for_loop(TripCount::fixed(n), true);
    let j = r0.for_loop(TripCount::fixed(n), false);
    let va = r0.load(
        a,
        AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
    );
    let vy = r0.load(y1, AffineExpr::var(j));
    let p = r0.bin(Opcode::FMul, va, vy);
    let acc = r0.reduce(Opcode::FAdd, p, j);
    r0.store(x1, AffineExpr::var(i), acc);
    k.finish_region(r0);

    let mut r1 = k.region("mtv", 1.0);
    let i1 = r1.for_loop(TripCount::fixed(n), true);
    let j1 = r1.for_loop(TripCount::fixed(n), false);
    // Transposed access: column-major walk of A.
    let va1 = r1.load(
        a,
        AffineExpr::var(j1).scaled(n as i64).plus(&AffineExpr::var(i1)),
    );
    let vy1 = r1.load(y2, AffineExpr::var(j1));
    let p1 = r1.bin(Opcode::FMul, va1, vy1);
    let acc1 = r1.reduce(Opcode::FAdd, p1, j1);
    r1.store(x2, AffineExpr::var(i1), acc1);
    k.finish_region(r1);
    k.build().expect("mvt is well-formed")
}

/// bicg — the BiCG sub-kernels `s = Aᵀ·r` and `q = A·p` (PolyBench's
/// bicg at 32²). Not part of the paper's five-kernel slice; used by the
/// functional-validation suite and available for DSE experiments.
#[must_use]
pub fn bicg() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-bicg");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::Scratchpad);
    let r = k.array("r", BitWidth::B64, n, MemClass::Scratchpad);
    let p = k.array("p", BitWidth::B64, n, MemClass::Scratchpad);
    let s_out = k.array("s", BitWidth::B64, n, MemClass::MainMemory);
    let q_out = k.array("q", BitWidth::B64, n, MemClass::MainMemory);

    // s[j] = Σ_i a[i][j] * r[i] — column-major reduction.
    let mut r0 = k.region("at_r", 1.0);
    let j = r0.for_loop(TripCount::fixed(n), true);
    let i = r0.for_loop(TripCount::fixed(n), false);
    let va = r0.load(
        a,
        AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
    );
    let vr = r0.load(r, AffineExpr::var(i));
    let prod = r0.bin(Opcode::FMul, va, vr);
    let acc = r0.reduce(Opcode::FAdd, prod, i);
    r0.store(s_out, AffineExpr::var(j), acc);
    k.finish_region(r0);

    // q[i] = Σ_j a[i][j] * p[j] — row-major reduction.
    let mut r1 = k.region("a_p", 1.0);
    let i1 = r1.for_loop(TripCount::fixed(n), true);
    let j1 = r1.for_loop(TripCount::fixed(n), false);
    let va1 = r1.load(
        a,
        AffineExpr::var(i1).scaled(n as i64).plus(&AffineExpr::var(j1)),
    );
    let vp = r1.load(p, AffineExpr::var(j1));
    let prod1 = r1.bin(Opcode::FMul, va1, vp);
    let acc1 = r1.reduce(Opcode::FAdd, prod1, j1);
    r1.store(q_out, AffineExpr::var(i1), acc1);
    k.finish_region(r1);
    k.build().expect("bicg is well-formed")
}

/// pipe-split — a live producer-consumer pipeline whose two stages touch
/// *disjoint* memories: the matvec stage streams from main memory and
/// forwards its row scalar, the scaling stage consumes it against
/// scratchpad-resident weights. The stages share a pipeline group but no
/// arrays or memory ports, so under a schedule that places them on
/// disjoint fabric they land in separate recovery domains while executing
/// concurrently — the shape that engages domain-sliced rollback (a fault
/// in one stage rewinds only that stage; the other's replay is "saved").
/// Soak/recovery fixture, not part of the paper's five-kernel slice.
#[must_use]
pub fn pipe_split() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("poly-pipe-split");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
    let x = k.array("x", BitWidth::B64, n, MemClass::MainMemory);
    let w = k.array("w", BitWidth::B64, n, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B64, n, MemClass::Scratchpad);

    // Stage 0: per row i, tmp_i = Σ_j a[i][j]·x[j], forwarded (never
    // stored) — main memory only.
    let mut r0 = k.region("matvec", 1.0);
    let i0 = r0.for_loop(TripCount::fixed(n), false);
    let j0 = r0.for_loop(TripCount::fixed(n), false);
    let va = r0.load(
        a,
        AffineExpr::var(i0).scaled(n as i64).plus(&AffineExpr::var(j0)),
    );
    let vx = r0.load(x, AffineExpr::var(j0));
    let p = r0.bin(Opcode::FMul, va, vx);
    let acc = r0.reduce(Opcode::FAdd, p, j0);
    r0.yield_value(acc);
    let r0i = k.finish_region(r0);

    // Stage 1: y[i] = tmp_i · w[i] — scratchpad only.
    let mut r1 = k.region("scale", 1.0);
    let i1 = r1.for_loop(TripCount::fixed(n), true);
    let tmp = r1.consume(r0i, 0);
    let vw = r1.load(w, AffineExpr::var(i1));
    let s = r1.bin(Opcode::FMul, tmp, vw);
    r1.store(y, AffineExpr::var(i1), s);
    k.finish_region(r1);
    k.build().expect("pipe-split is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_dfg::KernelIdioms;

    #[test]
    fn all_build() {
        for k in [mm(), mm2(), mm3(), atax(), mvt(), bicg(), pipe_split()] {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn pipe_split_stages_forward_and_share_no_arrays() {
        use dsagen_dfg::{SrcExpr, SrcStmt};
        let k = pipe_split();
        assert_eq!(k.regions.len(), 2);
        assert!(KernelIdioms::analyze(&k).has_forwarding);
        // Disjoint array footprints are what let the two stages land in
        // separate recovery domains despite the live pipeline group.
        let touched = |ri: usize| {
            let mut ids: Vec<_> = k.regions[ri]
                .iter_exprs()
                .filter_map(|(_, e)| match e {
                    SrcExpr::Load { array, .. } => Some(*array),
                    _ => None,
                })
                .collect();
            ids.extend(k.regions[ri].stmts.iter().filter_map(|s| match s {
                SrcStmt::Store { array, .. } | SrcStmt::Update { array, .. } => Some(*array),
                SrcStmt::Yield { .. } => None,
            }));
            ids
        };
        let (t0, t1) = (touched(0), touched(1));
        assert!(!t0.is_empty() && !t1.is_empty());
        assert!(t0.iter().all(|a| !t1.contains(a)));
    }

    #[test]
    fn polybench_is_regular() {
        for k in [mm(), mm2(), mm3(), mvt()] {
            let i = KernelIdioms::analyze(&k);
            assert!(!i.has_indirect, "{}", k.name);
            assert!(!i.has_join, "{}", k.name);
        }
    }

    #[test]
    fn chain_lengths() {
        assert_eq!(mm().regions.len(), 1);
        assert_eq!(mm2().regions.len(), 2);
        assert_eq!(mm3().regions.len(), 3);
    }

    #[test]
    fn atax_forwards_and_updates() {
        let i = KernelIdioms::analyze(&atax());
        assert!(i.has_forwarding);
    }

    #[test]
    fn table1_sizes() {
        assert!(mm().arrays.iter().all(|a| a.len == 32 * 32));
        assert!(mm2().arrays.iter().all(|a| a.len == 32 * 32));
    }
}
