//! SPU sparse microbenchmarks (§VII, Table I): histogram and join.

use dsagen_adg::{BitWidth, Opcode};
use dsagen_dfg::{AffineExpr, JoinSide, Kernel, KernelBuilder, MemClass, TripCount};

/// histogram — `h[b[i]] += 1` over 2¹⁶ samples into 2¹⁰ bins (Table I:
/// `2¹⁰ × 2¹⁶`). Exercises indirect atomic update.
#[must_use]
pub fn histogram() -> Kernel {
    let (bins, samples) = (1u64 << 10, 1u64 << 16);
    let mut k = KernelBuilder::new("histogram");
    let h = k.array("hist", BitWidth::B64, bins, MemClass::Scratchpad);
    let b = k.array("samples", BitWidth::B64, samples, MemClass::MainMemory);
    let mut r = k.region("body", 1.0);
    let i = r.for_loop(TripCount::fixed(samples), true);
    let one = r.imm(1);
    r.update_indirect(h, b, AffineExpr::var(i), Opcode::Add, one);
    k.finish_region(r);
    k.build().expect("histogram is well-formed")
}

/// join — sorted-key database join over two 768-entry tables (Table I:
/// `768 × 2`), summing products of matched payloads. Exercises
/// control-dependent memory access (stream-join, §IV-E Fig 8).
#[must_use]
pub fn join() -> Kernel {
    join_sized(768, 0.33)
}

/// A join with configurable table size and key match ratio.
#[must_use]
pub fn join_sized(len: u64, match_ratio: f64) -> Kernel {
    let mut k = KernelBuilder::new("join");
    let k0 = k.array("key0", BitWidth::B64, len, MemClass::MainMemory);
    let v0 = k.array("val0", BitWidth::B64, len, MemClass::MainMemory);
    let k1 = k.array("key1", BitWidth::B64, len, MemClass::MainMemory);
    let v1 = k.array("val1", BitWidth::B64, len, MemClass::MainMemory);
    let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
    let mut r = k.region("merge", 1.0);
    let j = r.join_loop(
        JoinSide {
            key: k0,
            payloads: vec![v0],
            len,
        },
        JoinSide {
            key: k1,
            payloads: vec![v1],
            len,
        },
        match_ratio,
    );
    let a = r.load(v0, AffineExpr::var(j));
    let b = r.load(v1, AffineExpr::var(j));
    let p = r.bin(Opcode::Mul, a, b);
    let acc = r.reduce(Opcode::Add, p, j);
    r.store(out, AffineExpr::constant(0), acc);
    k.finish_region(r);
    k.build().expect("join is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_dfg::KernelIdioms;

    #[test]
    fn histogram_idioms() {
        let i = KernelIdioms::analyze(&histogram());
        assert!(i.has_indirect);
        assert!(i.has_indirect_update);
        assert!(i.has_parallel_loop);
    }

    #[test]
    fn join_idioms() {
        let i = KernelIdioms::analyze(&join());
        assert!(i.has_join);
        assert!(!i.has_indirect);
    }

    #[test]
    fn table1_sizes() {
        assert!(histogram()
            .arrays
            .iter()
            .any(|a| a.name == "hist" && a.len == 1 << 10));
        assert!(histogram()
            .arrays
            .iter()
            .any(|a| a.name == "samples" && a.len == 1 << 16));
        assert!(join().arrays.iter().filter(|a| a.len == 768).count() == 4);
    }

    #[test]
    fn join_expected_trip_reflects_match_ratio() {
        let lo = join_sized(100, 0.0);
        let hi = join_sized(100, 1.0);
        let t_lo = lo.regions[0].loops[0].expected_trip(1);
        let t_hi = hi.regions[0].loops[0].expected_trip(1);
        assert!(t_lo > t_hi, "more matches ⇒ fewer merge steps");
        assert!((t_lo - 200.0).abs() < 1e-9);
        assert!((t_hi - 100.0).abs() < 1e-9);
    }
}
