//! Seeded input-data generators for the workloads.
//!
//! The simulator and models are value-agnostic (they model timing, not
//! arithmetic), but the examples and the Table I harness use these to
//! show realistic end-to-end inputs, and the sorted/sparse generators
//! document the distributional assumptions behind the join and SpMV
//! kernels (e.g. the join match ratio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense vector of `len` values in `[lo, hi)`.
#[must_use]
pub fn dense_f64(len: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A sorted key column with approximately `len` unique keys drawn from a
/// universe sized to hit `match_ratio` against an independently drawn
/// column.
#[must_use]
pub fn sorted_keys(len: usize, match_ratio: f64, seed: u64) -> Vec<u64> {
    let universe = (len as f64 / match_ratio.clamp(0.05, 1.0)) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..universe.max(1))).collect();
    keys.sort_unstable();
    keys.dedup();
    while keys.len() < len {
        let extra = rng.gen_range(0..universe.max(1));
        if let Err(pos) = keys.binary_search(&extra) {
            keys.insert(pos, extra);
        }
    }
    keys.truncate(len);
    keys
}

/// CRS row lengths for a `rows`-row sparse matrix averaging `avg_nnz`
/// nonzeros per row (clamped to ≥ 0).
#[must_use]
pub fn crs_row_lengths(rows: usize, avg_nnz: f64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| {
            let jitter = rng.gen_range(-1.5..1.5);
            (avg_nnz + jitter).max(0.0).round() as u32
        })
        .collect()
}

/// Column indices for one sparse row of `nnz` entries over `cols` columns,
/// strictly increasing.
#[must_use]
pub fn sparse_row_cols(nnz: usize, cols: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<u32> = (0..nnz.min(cols))
        .map(|_| rng.gen_range(0..cols as u32))
        .collect();
    out.sort_unstable();
    out.dedup();
    let mut next = out.last().copied().unwrap_or(0);
    while out.len() < nnz.min(cols) {
        next = (next + 1) % cols as u32;
        if !out.contains(&next) {
            out.push(next);
        }
    }
    out.sort_unstable();
    out
}

/// Histogram sample indices: `len` values over `bins` bins with a mild
/// hot-spot skew (Zipf-flavored), the distribution bank conflicts care
/// about.
#[must_use]
pub fn histogram_samples(len: usize, bins: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            // Square the uniform draw: mild skew toward low bins.
            ((u * u) * bins as f64) as u32
        })
        .map(|b| b.min(bins as u32 - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_seed_deterministic() {
        assert_eq!(dense_f64(64, 0.0, 1.0, 9), dense_f64(64, 0.0, 1.0, 9));
        assert_ne!(dense_f64(64, 0.0, 1.0, 9), dense_f64(64, 0.0, 1.0, 10));
    }

    #[test]
    fn sorted_keys_are_sorted_unique() {
        let keys = sorted_keys(768, 0.33, 4);
        assert_eq!(keys.len(), 768);
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn join_match_ratio_is_roughly_requested() {
        let a = sorted_keys(768, 0.33, 1);
        let b = sorted_keys(768, 0.33, 2);
        let matches = a.iter().filter(|k| b.binary_search(k).is_ok()).count();
        let ratio = matches as f64 / 768.0;
        assert!((0.1..0.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn crs_lengths_average_near_target() {
        let lens = crs_row_lengths(464, 4.0, 3);
        let avg = lens.iter().map(|x| f64::from(*x)).sum::<f64>() / lens.len() as f64;
        assert!((avg - 4.0).abs() < 0.5, "avg {avg}");
    }

    #[test]
    fn sparse_row_cols_strictly_increasing() {
        let cols = sparse_row_cols(16, 512, 5);
        assert_eq!(cols.len(), 16);
        for w in cols.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn histogram_samples_in_range_and_skewed() {
        let samples = histogram_samples(1 << 14, 1 << 10, 6);
        assert!(samples.iter().all(|s| *s < 1 << 10));
        let low = samples.iter().filter(|s| **s < 256).count();
        let high = samples.iter().filter(|s| **s >= 768).count();
        assert!(low > high, "distribution should skew low");
    }
}
