//! MachSuite workloads (§VII, Table I): md, spmv-crs, spmv-ellpack, mm,
//! stencil-2d, stencil-3d.

use dsagen_adg::{BitWidth, Opcode};
use dsagen_dfg::{AffineExpr, Kernel, KernelBuilder, MemClass, TripCount};

/// md — molecular-dynamics k-nearest-neighbor force kernel, 128 atoms × 16
/// neighbors (Table I: `128 × 16`). Gather-heavy (indirect neighbor loads)
/// with floating-point force arithmetic.
#[must_use]
pub fn md() -> Kernel {
    let (atoms, neighbors) = (128u64, 16u64);
    let mut k = KernelBuilder::new("md");
    let px = k.array("pos_x", BitWidth::B64, atoms, MemClass::Scratchpad);
    let py = k.array("pos_y", BitWidth::B64, atoms, MemClass::Scratchpad);
    let pz = k.array("pos_z", BitWidth::B64, atoms, MemClass::Scratchpad);
    let nl = k.array("neigh", BitWidth::B64, atoms * neighbors, MemClass::MainMemory);
    let fx = k.array("force_x", BitWidth::B64, atoms, MemClass::MainMemory);
    let fy = k.array("force_y", BitWidth::B64, atoms, MemClass::MainMemory);
    let fz = k.array("force_z", BitWidth::B64, atoms, MemClass::MainMemory);

    let mut r = k.region("forces", 1.0);
    let i = r.for_loop(TripCount::fixed(atoms), true);
    let j = r.for_loop(TripCount::fixed(neighbors), true);
    let nidx = AffineExpr::var(i)
        .scaled(neighbors as i64)
        .plus(&AffineExpr::var(j));
    // Own position (outer rate) and gathered neighbor positions.
    let xi = r.load(px, AffineExpr::var(i));
    let yi = r.load(py, AffineExpr::var(i));
    let zi = r.load(pz, AffineExpr::var(i));
    let xj = r.load_indirect(px, nl, nidx.clone());
    let yj = r.load_indirect(py, nl, nidx.clone());
    let zj = r.load_indirect(pz, nl, nidx);
    // delta, r2 = dx² + dy² + dz²
    let dx = r.bin(Opcode::FSub, xi, xj);
    let dy = r.bin(Opcode::FSub, yi, yj);
    let dz = r.bin(Opcode::FSub, zi, zj);
    let dx2 = r.bin(Opcode::FMul, dx, dx);
    let dy2 = r.bin(Opcode::FMul, dy, dy);
    let dz2 = r.bin(Opcode::FMul, dz, dz);
    let s1 = r.bin(Opcode::FAdd, dx2, dy2);
    let r2 = r.bin(Opcode::FAdd, s1, dz2);
    // Lennard-Jones-ish potential: r6inv = 1/r2³; force = r6inv*(r6inv-0.5)/r2
    let one = r.imm(1);
    let r2inv = r.bin(Opcode::FDiv, one, r2);
    let r4 = r.bin(Opcode::FMul, r2inv, r2inv);
    let r6 = r.bin(Opcode::FMul, r4, r2inv);
    let half = r.imm(0);
    let t = r.bin(Opcode::FSub, r6, half);
    let pot = r.bin(Opcode::FMul, r6, t);
    let force = r.bin(Opcode::FMul, pot, r2inv);
    // Per-axis force accumulation over neighbors.
    let fx_c = r.bin(Opcode::FMul, force, dx);
    let fy_c = r.bin(Opcode::FMul, force, dy);
    let fz_c = r.bin(Opcode::FMul, force, dz);
    let ax = r.reduce(Opcode::FAdd, fx_c, j);
    let ay = r.reduce(Opcode::FAdd, fy_c, j);
    let az = r.reduce(Opcode::FAdd, fz_c, j);
    r.store(fx, AffineExpr::var(i), ax);
    r.store(fy, AffineExpr::var(i), ay);
    r.store(fz, AffineExpr::var(i), az);
    k.finish_region(r);
    k.build().expect("md is well-formed")
}

/// spmv-crs — sparse matrix-vector multiply, CRS format (Table I:
/// `464 × 4`): 464 rows averaging 4 nonzeros, inductive inner trip,
/// indirect gather of the dense vector.
#[must_use]
pub fn spmv_crs() -> Kernel {
    let (rows, avg_nnz) = (464u64, 4u64);
    let nnz = rows * avg_nnz;
    let mut k = KernelBuilder::new("spmv-crs");
    let vals = k.array("vals", BitWidth::B64, nnz, MemClass::MainMemory);
    let cols = k.array("cols", BitWidth::B64, nnz, MemClass::MainMemory);
    let x = k.array("x", BitWidth::B64, 512, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B64, rows, MemClass::MainMemory);

    let mut r = k.region("rows", 1.0);
    let i = r.for_loop(TripCount::fixed(rows), false);
    // Row lengths vary; CRS walks `row_ptr[i]..row_ptr[i+1]` — an
    // inductive stream the linear controller generates. Average 4.
    let j = r.for_loop(TripCount::fixed(avg_nnz), false);
    let idx = AffineExpr::var(i)
        .scaled(avg_nnz as i64)
        .plus(&AffineExpr::var(j));
    let v = r.load(vals, idx.clone());
    let xv = r.load_indirect(x, cols, idx);
    let prod = r.bin(Opcode::FMul, v, xv);
    let acc = r.reduce(Opcode::FAdd, prod, j);
    r.store(y, AffineExpr::var(i), acc);
    k.finish_region(r);
    k.build().expect("spmv-crs is well-formed")
}

/// spmv-ellpack — ELLPACK-format SpMV (Table I: `464 × 4`), fixed 4
/// nonzeros per row, vectorizable inner loop with indirect gather.
#[must_use]
pub fn spmv_ellpack() -> Kernel {
    let (rows, width) = (464u64, 4u64);
    let mut k = KernelBuilder::new("spmv-ellpack");
    let vals = k.array("vals", BitWidth::B64, rows * width, MemClass::MainMemory);
    let cols = k.array("cols", BitWidth::B64, rows * width, MemClass::MainMemory);
    let x = k.array("x", BitWidth::B64, 512, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B64, rows, MemClass::MainMemory);

    let mut r = k.region("rows", 1.0);
    let i = r.for_loop(TripCount::fixed(rows), true);
    let j = r.for_loop(TripCount::fixed(width), false);
    let idx = AffineExpr::var(i)
        .scaled(width as i64)
        .plus(&AffineExpr::var(j));
    let v = r.load(vals, idx.clone());
    let xv = r.load_indirect(x, cols, idx);
    let prod = r.bin(Opcode::FMul, v, xv);
    let acc = r.reduce(Opcode::FAdd, prod, j);
    r.store(y, AffineExpr::var(i), acc);
    k.finish_region(r);
    k.build().expect("spmv-ellpack is well-formed")
}

/// mm — dense matrix multiply (Table I: `64³`).
#[must_use]
pub fn mm() -> Kernel {
    gemm_kernel("mm", 64)
}

/// Builds an n³ dense matrix multiply.
#[must_use]
pub fn gemm_kernel(name: &str, n: u64) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let a = k.array("a", BitWidth::B64, n * n, MemClass::MainMemory);
    let b = k.array("b", BitWidth::B64, n * n, MemClass::Scratchpad);
    let c = k.array("c", BitWidth::B64, n * n, MemClass::MainMemory);
    let mut r = k.region("body", 1.0);
    let i = r.for_loop(TripCount::fixed(n), false);
    let j = r.for_loop(TripCount::fixed(n), true);
    let kk = r.for_loop(TripCount::fixed(n), false);
    let va = r.load(
        a,
        AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(kk)),
    );
    let vb = r.load(
        b,
        AffineExpr::var(kk).scaled(n as i64).plus(&AffineExpr::var(j)),
    );
    let prod = r.bin(Opcode::FMul, va, vb);
    let acc = r.reduce(Opcode::FAdd, prod, kk);
    r.store(
        c,
        AffineExpr::var(i).scaled(n as i64).plus(&AffineExpr::var(j)),
        acc,
    );
    k.finish_region(r);
    k.build().expect("gemm is well-formed")
}

/// stencil-2d — 3×3 convolution over a 130×130 grid (Table I:
/// `130² × 3²`), producing a 128×128 interior.
#[must_use]
pub fn stencil2d() -> Kernel {
    let (n, out) = (130i64, 128u64);
    let mut k = KernelBuilder::new("stencil-2d");
    let src = k.array("src", BitWidth::B64, (n * n) as u64, MemClass::Scratchpad);
    let coef = k.array("coef", BitWidth::B64, 9, MemClass::Scratchpad);
    let dst = k.array("dst", BitWidth::B64, out * out, MemClass::MainMemory);

    let mut r = k.region("body", 1.0);
    let row = r.for_loop(TripCount::fixed(out), false);
    let col = r.for_loop(TripCount::fixed(out), true);
    let base = AffineExpr::var(row).scaled(n).plus(&AffineExpr::var(col));
    let mut products = Vec::with_capacity(9);
    for dr in 0..3i64 {
        for dc in 0..3i64 {
            let tap = r.load(src, base.clone().plus_const(dr * n + dc));
            let c = r.load(coef, AffineExpr::constant(dr * 3 + dc));
            products.push(r.bin(Opcode::FMul, tap, c));
        }
    }
    let acc = crate::reduce_tree(&mut r, Opcode::FAdd, products);
    r.store(
        dst,
        AffineExpr::var(row)
            .scaled(out as i64)
            .plus(&AffineExpr::var(col)),
        acc,
    );
    k.finish_region(r);
    k.build().expect("stencil-2d is well-formed")
}

/// stencil-3d — 7-point stencil over a 32×32×16 volume, 2 time iterations
/// (Table I: `32² × 16 × 2`). Many short inner streams ⇒ command-heavy,
/// the §VIII-B worst case for the performance model.
#[must_use]
pub fn stencil3d() -> Kernel {
    let (nx, ny, nz, iters) = (32i64, 32i64, 16u64, 2u64);
    let plane = nx * ny;
    let mut k = KernelBuilder::new("stencil-3d");
    let src = k.array(
        "src",
        BitWidth::B64,
        (plane as u64) * nz + 2 * plane as u64,
        MemClass::Scratchpad,
    );
    let dst = k.array(
        "dst",
        BitWidth::B64,
        (plane as u64) * nz,
        MemClass::MainMemory,
    );

    let mut r = k.region("body", 1.0);
    let _t = r.for_loop(TripCount::fixed(iters), false);
    let z = r.for_loop(TripCount::fixed(nz), false);
    let y = r.for_loop(TripCount::fixed((ny - 2) as u64), false);
    let x = r.for_loop(TripCount::fixed((nx - 2) as u64), true);
    let base = AffineExpr::var(z)
        .scaled(plane)
        .plus(&AffineExpr::var(y).scaled(nx))
        .plus(&AffineExpr::var(x))
        .plus_const(plane); // halo offset
    let center = r.load(src, base.clone());
    let offsets = [1i64, -1, nx, -nx, plane, -plane];
    let mut taps = vec![center];
    for off in offsets {
        taps.push(r.load(src, base.clone().plus_const(off)));
    }
    let acc = crate::reduce_tree(&mut r, Opcode::FAdd, taps);
    let c0 = r.imm(7);
    let scaled = r.bin(Opcode::FMul, acc, c0);
    r.store(dst, base, scaled);
    k.finish_region(r);
    k.build().expect("stencil-3d is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_dfg::KernelIdioms;

    #[test]
    fn all_build_and_validate() {
        for k in [md(), spmv_crs(), spmv_ellpack(), mm(), stencil2d(), stencil3d()] {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn md_uses_indirection() {
        let i = KernelIdioms::analyze(&md());
        assert!(i.has_indirect);
        assert!(i.has_parallel_loop);
    }

    #[test]
    fn spmv_gathers_the_vector() {
        assert!(KernelIdioms::analyze(&spmv_crs()).has_indirect);
        assert!(KernelIdioms::analyze(&spmv_ellpack()).has_indirect);
    }

    #[test]
    fn mm_is_dense_and_regular() {
        let i = KernelIdioms::analyze(&mm());
        assert!(!i.has_indirect);
        assert!(!i.has_join);
        assert!(i.has_parallel_loop);
        // 64³ multiply-accumulate.
        assert_eq!(mm().regions[0].loops.len(), 3);
    }

    #[test]
    fn stencil2d_has_nine_taps() {
        let k = stencil2d();
        let loads = k.regions[0]
            .iter_exprs()
            .filter(|(_, e)| matches!(e, dsagen_dfg::SrcExpr::Load { .. }))
            .count();
        // 9 src taps + 9 coefficient loads.
        assert_eq!(loads, 18);
    }

    #[test]
    fn stencil3d_is_command_heavy() {
        // 4-deep nest ⇒ outer loops become stream re-issues.
        assert_eq!(stencil3d().regions[0].loops.len(), 4);
    }

    #[test]
    fn table1_sizes() {
        // md: 128 atoms × 16 neighbors → neighbor list of 2048 indices.
        assert!(md().arrays.iter().any(|a| a.name == "neigh" && a.len == 128 * 16));
        // mm: 64³ → 64×64 operand matrices.
        assert!(mm().arrays.iter().all(|a| a.len == 64 * 64));
        // spmv: 464 rows × 4 nonzeros.
        assert!(spmv_crs()
            .arrays
            .iter()
            .any(|a| a.name == "vals" && a.len == 464 * 4));
        // stencil-2d: 130² source grid.
        assert!(stencil2d()
            .arrays
            .iter()
            .any(|a| a.name == "src" && a.len == 130 * 130));
    }
}
