//! Neural-network DSE suites (§VIII-B): DenseNN (convolution, pooling,
//! classifier — the DianNao comparison set) and SparseCNN (outer-product
//! multiply + resparsification — the SCNN/SPU comparison workload).

use dsagen_adg::{BitWidth, Opcode};
use dsagen_dfg::{AffineExpr, Kernel, KernelBuilder, MemClass, TripCount};

/// conv — 3×3 convolution over a 28×28 feature map with 8 output channels;
/// regular access and control.
#[must_use]
pub fn conv() -> Kernel {
    let (dim, out_dim, ch) = (28i64, 26u64, 8u64);
    let mut k = KernelBuilder::new("nn-conv");
    let input = k.array("input", BitWidth::B64, (dim * dim) as u64, MemClass::Scratchpad);
    let weights = k.array("weights", BitWidth::B64, ch * 9, MemClass::Scratchpad);
    let output = k.array("output", BitWidth::B64, ch * out_dim * out_dim, MemClass::MainMemory);

    let mut r = k.region("conv", 1.0);
    let oc = r.for_loop(TripCount::fixed(ch), false);
    let row = r.for_loop(TripCount::fixed(out_dim), false);
    let col = r.for_loop(TripCount::fixed(out_dim), true);
    let base = AffineExpr::var(row).scaled(dim).plus(&AffineExpr::var(col));
    let wbase = AffineExpr::var(oc).scaled(9);
    let mut products = Vec::with_capacity(9);
    for dr in 0..3i64 {
        for dc in 0..3i64 {
            let px = r.load(input, base.clone().plus_const(dr * dim + dc));
            let w = r.load(weights, wbase.clone().plus_const(dr * 3 + dc));
            products.push(r.bin(Opcode::FMul, px, w));
        }
    }
    let acc = crate::reduce_tree(&mut r, Opcode::FAdd, products);
    let idx = AffineExpr::var(oc)
        .scaled((out_dim * out_dim) as i64)
        .plus(&AffineExpr::var(row).scaled(out_dim as i64))
        .plus(&AffineExpr::var(col));
    r.store(output, idx, acc);
    k.finish_region(r);
    k.build().expect("conv is well-formed")
}

/// pool — 2×2 max pooling over 8 channels of 26×26 maps.
#[must_use]
pub fn pool() -> Kernel {
    let (dim, out_dim, ch) = (26i64, 13u64, 8u64);
    let mut k = KernelBuilder::new("nn-pool");
    let input = k.array(
        "input",
        BitWidth::B64,
        ch * (dim * dim) as u64,
        MemClass::Scratchpad,
    );
    let output = k.array(
        "output",
        BitWidth::B64,
        ch * out_dim * out_dim,
        MemClass::MainMemory,
    );

    let mut r = k.region("pool", 1.0);
    let c = r.for_loop(TripCount::fixed(ch), false);
    let row = r.for_loop(TripCount::fixed(out_dim), false);
    let col = r.for_loop(TripCount::fixed(out_dim), true);
    let base = AffineExpr::var(c)
        .scaled(dim * dim)
        .plus(&AffineExpr::var(row).scaled(2 * dim))
        .plus(&AffineExpr::var(col).scaled(2));
    let p00 = r.load(input, base.clone());
    let p01 = r.load(input, base.clone().plus_const(1));
    let p10 = r.load(input, base.clone().plus_const(dim));
    let p11 = r.load(input, base.clone().plus_const(dim + 1));
    let m0 = r.bin(Opcode::FMax, p00, p01);
    let m1 = r.bin(Opcode::FMax, p10, p11);
    let m = r.bin(Opcode::FMax, m0, m1);
    let idx = AffineExpr::var(c)
        .scaled((out_dim * out_dim) as i64)
        .plus(&AffineExpr::var(row).scaled(out_dim as i64))
        .plus(&AffineExpr::var(col));
    r.store(output, idx, m);
    k.finish_region(r);
    k.build().expect("pool is well-formed")
}

/// classifier — fully-connected 256→128 layer with sigmoid activation
/// (DianNao's NFU-3 stage).
#[must_use]
pub fn classifier() -> Kernel {
    let (inputs, outputs) = (256u64, 128u64);
    let mut k = KernelBuilder::new("nn-classifier");
    let x = k.array("x", BitWidth::B64, inputs, MemClass::Scratchpad);
    let w = k.array("w", BitWidth::B64, inputs * outputs, MemClass::MainMemory);
    let y = k.array("y", BitWidth::B64, outputs, MemClass::MainMemory);

    let mut r = k.region("fc", 1.0);
    let o = r.for_loop(TripCount::fixed(outputs), true);
    let i = r.for_loop(TripCount::fixed(inputs), false);
    let wv = r.load(
        w,
        AffineExpr::var(o)
            .scaled(inputs as i64)
            .plus(&AffineExpr::var(i)),
    );
    let xv = r.load(x, AffineExpr::var(i));
    let p = r.bin(Opcode::FMul, wv, xv);
    let acc = r.reduce(Opcode::FAdd, p, i);
    let act = r.un(Opcode::Sigmoid, acc);
    r.store(y, AffineExpr::var(o), act);
    k.finish_region(r);
    k.build().expect("classifier is well-formed")
}

/// sparse-cnn — outer-product sparse×sparse multiply with scatter
/// accumulation (region 0) and resparsification (region 1): "regular
/// computation but data-dependent memory access" (§VIII-B). The scatter is
/// an indirect atomic update; resparsification is a predicated compaction.
#[must_use]
pub fn sparse_cnn() -> Kernel {
    let (nnz_a, nnz_b, dense) = (256u64, 256u64, 4096u64);
    let mut k = KernelBuilder::new("sparse-cnn");
    let va = k.array("val_a", BitWidth::B64, nnz_a, MemClass::Scratchpad);
    let ia = k.array("idx_a", BitWidth::B64, nnz_a, MemClass::Scratchpad);
    let vb = k.array("val_b", BitWidth::B64, nnz_b, MemClass::Scratchpad);
    let ib = k.array("idx_b", BitWidth::B64, nnz_b, MemClass::Scratchpad);
    let outm = k.array("out", BitWidth::B64, dense, MemClass::Scratchpad);
    let packed = k.array("packed", BitWidth::B64, dense, MemClass::MainMemory);

    // Region 0: out[flat(idx_a[i], idx_b[j])] += val_a[i] * val_b[j].
    // The scatter index is itself data-dependent; the compiler encodes it
    // through the indirect/atomic controller (ia is the representative
    // index stream; ib contributes the product's column).
    let mut r0 = k.region("outer-product", 1.0);
    let i = r0.for_loop(TripCount::fixed(nnz_a), false);
    let j = r0.for_loop(TripCount::fixed(nnz_b), true);
    let a = r0.load(va, AffineExpr::var(i));
    let b = r0.load(vb, AffineExpr::var(j));
    let bidx = r0.load(ib, AffineExpr::var(j));
    let prod = r0.bin(Opcode::FMul, a, b);
    let _ = bidx;
    r0.update_indirect(outm, ia, AffineExpr::var(j), Opcode::FAdd, prod);
    k.finish_region(r0);

    // Region 1: resparsification — keep |out[p]| above threshold, zero the
    // rest (predicated select; compaction handled by the write stream).
    let mut r1 = k.region("resparsify", 1.0);
    let p = r1.for_loop(TripCount::fixed(dense), true);
    let v = r1.load(outm, AffineExpr::var(p));
    let thr = r1.imm(1);
    let zero = r1.imm(0);
    let keep = r1.bin(Opcode::FCmpLt, thr, v);
    let sel = r1.mux(keep, v, zero);
    r1.store(packed, AffineExpr::var(p), sel);
    k.finish_region(r1);
    k.build().expect("sparse-cnn is well-formed")
}

/// The DenseNN DSE suite.
#[must_use]
pub fn dense_suite() -> Vec<Kernel> {
    vec![conv(), pool(), classifier()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_dfg::KernelIdioms;

    #[test]
    fn all_build() {
        for k in [conv(), pool(), classifier(), sparse_cnn()] {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn dense_suite_is_regular() {
        for k in dense_suite() {
            let i = KernelIdioms::analyze(&k);
            assert!(!i.has_indirect, "{}", k.name);
            assert!(!i.has_join, "{}", k.name);
            assert!(i.has_parallel_loop, "{}", k.name);
        }
    }

    #[test]
    fn sparse_cnn_scatters() {
        let i = KernelIdioms::analyze(&sparse_cnn());
        assert!(i.has_indirect);
        assert!(i.has_indirect_update);
    }

    #[test]
    fn pool_uses_max_not_mul() {
        let k = pool();
        let has_max = k.regions[0].iter_exprs().any(|(_, e)| {
            matches!(e, dsagen_dfg::SrcExpr::Bin { op: Opcode::FMax, .. })
        });
        assert!(has_max);
        assert_eq!(k.regions[0].compute_op_count(), 3);
    }

    #[test]
    fn classifier_has_sigmoid_at_outer_rate() {
        let k = classifier();
        let region = &k.regions[0];
        let sig = region
            .iter_exprs()
            .find_map(|(id, e)| match e {
                dsagen_dfg::SrcExpr::Un { op: Opcode::Sigmoid, .. } => Some(id),
                _ => None,
            })
            .unwrap();
        assert_eq!(region.rate_level(sig), Some(dsagen_dfg::LoopVar(0)));
    }
}
