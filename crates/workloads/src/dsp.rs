//! REVEL DSP workloads (§VII, Table I): qr, cholesky, fft, plus centro-fir.
//! These feature triangular (inductive) iteration spaces and outer-loop
//! low-rate computation — the workloads that "heavily benefit from shared
//! PEs for their outer-loop computations" (§VIII-A).

use dsagen_adg::{BitWidth, Opcode};
use dsagen_dfg::{AffineExpr, Kernel, KernelBuilder, MemClass, TripCount};

/// qr — Householder-style QR factorization of a 32×32 matrix (Table I:
/// `32²`): per pivot column, a norm reduction (yielded) feeds a triangular
/// update — the producer-consumer idiom of Fig 7a on an inductive space.
#[must_use]
pub fn qr() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("qr");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::Scratchpad);
    let rmat = k.array("r", BitWidth::B64, n * n, MemClass::MainMemory);

    // Region 0: per pivot k, compute the column norm (inductive length
    // n − k) and yield 1/norm. The sum is associative, so the inner loop is
    // vectorizable with parallel partial accumulators.
    let mut r0 = k.region("norm", 1.0);
    let kv = r0.for_loop(TripCount::fixed(n), false);
    let i = r0.for_loop(TripCount::inductive(n as i64, -1), true);
    let col = AffineExpr::var(i)
        .scaled(n as i64)
        .plus(&AffineExpr::var(kv));
    let v = r0.load(a, col);
    let sq = r0.bin(Opcode::FMul, v, v);
    let ss = r0.reduce(Opcode::FAdd, sq, i);
    let norm = r0.un(Opcode::FSqrt, ss); // outer-rate op → shared PE fodder
    let one = r0.imm(1);
    let inv = r0.bin(Opcode::FDiv, one, norm);
    r0.yield_value(inv);
    let r0i = k.finish_region(r0);

    // Region 1: triangular trailing update a[i][j] -= v_i * v_j * inv.
    let mut r1 = k.region("update", 1.0);
    let kv1 = r1.for_loop(TripCount::fixed(n), false);
    let j = r1.for_loop(TripCount::inductive(n as i64, -1), true);
    let inv = r1.consume(r0i, 0);
    let aij = r1.load(
        a,
        AffineExpr::var(kv1)
            .scaled(n as i64)
            .plus(&AffineExpr::var(j)),
    );
    let vk = r1.load(a, AffineExpr::var(kv1).scaled((n + 1) as i64));
    let t = r1.bin(Opcode::FMul, vk, inv);
    let upd = r1.bin(Opcode::FMul, aij, t);
    let nw = r1.bin(Opcode::FSub, aij, upd);
    r1.store(
        rmat,
        AffineExpr::var(kv1)
            .scaled(n as i64)
            .plus(&AffineExpr::var(j)),
        nw,
    );
    k.finish_region(r1);
    k.build().expect("qr is well-formed")
}

/// cholesky — in-place Cholesky factorization of a 32×32 SPD matrix
/// (Table I: `32²`): sqrt/divide at the pivot (outer rate), triangular
/// column updates.
#[must_use]
pub fn cholesky() -> Kernel {
    let n = 32u64;
    let mut k = KernelBuilder::new("cholesky");
    let a = k.array("a", BitWidth::B64, n * n, MemClass::Scratchpad);
    let l = k.array("l", BitWidth::B64, n * n, MemClass::MainMemory);

    // Region 0: pivot: yield 1/sqrt(a[k][k]).
    let mut r0 = k.region("pivot", 1.0);
    let kv = r0.for_loop(TripCount::fixed(n), false);
    let akk = r0.load(a, AffineExpr::var(kv).scaled((n + 1) as i64));
    let s = r0.un(Opcode::FSqrt, akk);
    let one = r0.imm(1);
    let inv = r0.bin(Opcode::FDiv, one, s);
    r0.yield_value(inv);
    let r0i = k.finish_region(r0);

    // Region 1: scale the column below the pivot and update the trailing
    // submatrix row-by-row (triangular inner trip).
    let mut r1 = k.region("update", 1.0);
    let kv1 = r1.for_loop(TripCount::fixed(n), false);
    let i = r1.for_loop(TripCount::inductive(n as i64 - 1, -1), true);
    let inv = r1.consume(r0i, 0);
    let aik = r1.load(
        a,
        AffineExpr::var(i)
            .scaled(n as i64)
            .plus(&AffineExpr::var(kv1))
            .plus_const(n as i64),
    );
    let lik = r1.bin(Opcode::FMul, aik, inv);
    let sq = r1.bin(Opcode::FMul, lik, lik);
    let aii = r1.load(
        a,
        AffineExpr::var(i)
            .scaled((n + 1) as i64)
            .plus_const((n + 1) as i64),
    );
    let nw = r1.bin(Opcode::FSub, aii, sq);
    let _ = nw;
    r1.store(
        l,
        AffineExpr::var(i)
            .scaled(n as i64)
            .plus(&AffineExpr::var(kv1))
            .plus_const(n as i64),
        lik,
    );
    k.finish_region(r1);
    k.build().expect("cholesky is well-formed")
}

/// fft — radix-2 1024-point FFT (Table I: `2¹⁰`): 10 butterfly stages over
/// scratchpad data. The non-unit stride between butterfly operands makes
/// late stages generate many small scratchpad requests — the §VIII-A
/// outlier where manually peeled code wins 2×.
#[must_use]
pub fn fft() -> Kernel {
    let n = 1u64 << 10;
    let stages = 10u64;
    let half = n / 2;
    let mut k = KernelBuilder::new("fft");
    let re = k.array("re", BitWidth::B64, n, MemClass::Scratchpad);
    let im = k.array("im", BitWidth::B64, n, MemClass::Scratchpad);
    let tw_re = k.array("tw_re", BitWidth::B64, half, MemClass::Scratchpad);
    let tw_im = k.array("tw_im", BitWidth::B64, half, MemClass::Scratchpad);

    let mut r = k.region("stages", 1.0);
    let _s = r.for_loop(TripCount::fixed(stages), false);
    let b = r.for_loop(TripCount::fixed(half), true);
    // Butterfly operand pair: stride-2 access pattern (representative of
    // the small-stride late stages).
    let even = AffineExpr::var(b).scaled(2);
    let odd = AffineExpr::var(b).scaled(2).plus_const(1);
    let ar = r.load(re, even.clone());
    let ai = r.load(im, even.clone());
    let br = r.load(re, odd.clone());
    let bi = r.load(im, odd.clone());
    let wr = r.load(tw_re, AffineExpr::var(b));
    let wi = r.load(tw_im, AffineExpr::var(b));
    // t = w * b (complex)
    let t1 = r.bin(Opcode::FMul, br, wr);
    let t2 = r.bin(Opcode::FMul, bi, wi);
    let t3 = r.bin(Opcode::FMul, br, wi);
    let t4 = r.bin(Opcode::FMul, bi, wr);
    let tr = r.bin(Opcode::FSub, t1, t2);
    let ti = r.bin(Opcode::FAdd, t3, t4);
    // out_even = a + t; out_odd = a − t
    let oer = r.bin(Opcode::FAdd, ar, tr);
    let oei = r.bin(Opcode::FAdd, ai, ti);
    let oor = r.bin(Opcode::FSub, ar, tr);
    let ooi = r.bin(Opcode::FSub, ai, ti);
    r.store(re, even.clone(), oer);
    r.store(im, even, oei);
    r.store(re, odd.clone(), oor);
    r.store(im, odd, ooi);
    k.finish_region(r);
    k.build().expect("fft is well-formed")
}

/// centro-fir — centro-symmetric FIR filter (REVEL's fourth DSP kernel):
/// 2048 samples × 32 symmetric taps, with the tap-pair pre-add done at the
/// inner rate and coefficient loads repeating per output.
#[must_use]
pub fn centro_fir() -> Kernel {
    let (n, taps) = (2048u64, 32u64);
    let mut k = KernelBuilder::new("centro-fir");
    let x = k.array("x", BitWidth::B64, n + taps, MemClass::Scratchpad);
    let c = k.array("coef", BitWidth::B64, taps / 2, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B64, n, MemClass::MainMemory);

    let mut r = k.region("body", 1.0);
    let i = r.for_loop(TripCount::fixed(n), true);
    let j = r.for_loop(TripCount::fixed(taps / 2), false);
    // Symmetric pair: x[i+j] + x[i+taps−1−j]
    let lo = r.load(x, AffineExpr::var(i).plus(&AffineExpr::var(j)));
    let hi = r.load(
        x,
        AffineExpr::var(i)
            .plus(&AffineExpr::var(j).scaled(-1))
            .plus_const(taps as i64 - 1),
    );
    let pair = r.bin(Opcode::FAdd, lo, hi);
    let coef = r.load(c, AffineExpr::var(j));
    let prod = r.bin(Opcode::FMul, pair, coef);
    let acc = r.reduce(Opcode::FAdd, prod, j);
    r.store(y, AffineExpr::var(i), acc);
    k.finish_region(r);
    k.build().expect("centro-fir is well-formed")
}

/// fir16 — the centro-symmetric FIR on 16-bit fixed-point data: every
/// array element is narrow, so the compiler's sub-word packing
/// transformation can drive decomposable FUs four lanes at a time
/// (§III-A "decomposable FUs"). Not part of Table I; used by the
/// decomposability tests and ablations.
#[must_use]
pub fn fir16() -> Kernel {
    let (n, taps) = (2048u64, 32u64);
    let mut k = KernelBuilder::new("fir16");
    let x = k.array("x", BitWidth::B16, n + taps, MemClass::Scratchpad);
    let c = k.array("coef", BitWidth::B16, taps / 2, MemClass::Scratchpad);
    let y = k.array("y", BitWidth::B16, n, MemClass::MainMemory);

    let mut r = k.region("body", 1.0);
    let i = r.for_loop(TripCount::fixed(n), true);
    let j = r.for_loop(TripCount::fixed(taps / 2), false);
    let lo = r.load(x, AffineExpr::var(i).plus(&AffineExpr::var(j)));
    let hi = r.load(
        x,
        AffineExpr::var(i)
            .plus(&AffineExpr::var(j).scaled(-1))
            .plus_const(taps as i64 - 1),
    );
    let pair = r.bin(Opcode::Add, lo, hi);
    let coef = r.load(c, AffineExpr::var(j));
    let prod = r.bin(Opcode::Mul, pair, coef);
    let acc = r.reduce(Opcode::Add, prod, j);
    r.store(y, AffineExpr::var(i), acc);
    k.finish_region(r);
    k.build().expect("fir16 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_dfg::{KernelIdioms, LoopKind, SrcExpr};

    #[test]
    fn all_build() {
        for k in [qr(), cholesky(), fft(), centro_fir(), fir16()] {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn fir16_is_narrow_data() {
        let i = KernelIdioms::analyze(&fir16());
        assert!(i.narrow_data);
        assert!(!KernelIdioms::analyze(&centro_fir()).narrow_data);
    }

    #[test]
    fn qr_and_cholesky_are_producer_consumer() {
        for k in [qr(), cholesky()] {
            assert_eq!(k.regions.len(), 2, "{}", k.name);
            assert!(k.regions[1]
                .iter_exprs()
                .any(|(_, e)| matches!(e, SrcExpr::Consume { region: 0, .. })));
            assert!(KernelIdioms::analyze(&k).has_forwarding);
        }
    }

    #[test]
    fn triangular_loops_are_inductive() {
        let k = qr();
        let inductive = k.regions.iter().any(|r| {
            r.loops.iter().any(|l| {
                matches!(l.kind, LoopKind::For { trip } if trip.is_inductive())
            })
        });
        assert!(inductive);
    }

    #[test]
    fn qr_has_outer_rate_ops() {
        // FSqrt/FDiv fire once per pivot — outer-loop rate.
        let k = qr();
        let region = &k.regions[0];
        let sqrt = region
            .iter_exprs()
            .find_map(|(id, e)| match e {
                SrcExpr::Un { op: Opcode::FSqrt, .. } => Some(id),
                _ => None,
            })
            .expect("qr has a square root");
        assert_eq!(region.rate_level(sqrt), Some(dsagen_dfg::LoopVar(0)));
    }

    #[test]
    fn fft_has_nonunit_stride() {
        let k = fft();
        let strided = k.regions[0].iter_exprs().any(|(_, e)| match e {
            SrcExpr::Load { index, .. } => {
                index.driving_expr().stride_of(dsagen_dfg::LoopVar(1)) == 2
            }
            _ => false,
        });
        assert!(strided, "butterfly loads must stride by 2");
    }

    #[test]
    fn table1_sizes() {
        assert!(qr().arrays.iter().any(|a| a.name == "a" && a.len == 32 * 32));
        assert!(cholesky().arrays.iter().any(|a| a.len == 32 * 32));
        assert!(fft().arrays.iter().any(|a| a.name == "re" && a.len == 1 << 10));
    }
}
