//! Evaluation workloads for DSAGEN (§VII, Table I).
//!
//! Every kernel the paper evaluates, expressed in the `dsagen-dfg` source
//! IR with the paper's data sizes: six MachSuite kernels, the two SPU
//! sparse microbenchmarks, four REVEL DSP kernels, five PolyBench kernels,
//! plus the DenseNN and SparseCNN suites used for design-space exploration
//! (§VIII-B). [`data`] provides seeded input generators.
//!
//! # Example
//!
//! ```
//! use dsagen_workloads::{all, Suite};
//!
//! let workloads = all();
//! assert!(workloads.len() >= 16);
//! assert!(workloads.iter().any(|w| w.suite == Suite::MachSuite));
//! for w in &workloads {
//!     w.kernel.validate()?;
//! }
//! # Ok::<(), dsagen_dfg::DfgError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod dsp;
pub mod machsuite;
pub mod nn;
pub mod polybench;
pub mod sparse;

use dsagen_dfg::{ExprId, Kernel, RegionBuilder};

/// Combines `vals` with a balanced tree of `op` nodes (compiler
/// reassociation): log-depth instead of a linear chain, which both
/// shortens the critical path and localizes routing pressure.
///
/// # Panics
///
/// Panics if `vals` is empty.
pub fn reduce_tree(r: &mut RegionBuilder, op: dsagen_adg::Opcode, vals: Vec<ExprId>) -> ExprId {
    assert!(!vals.is_empty(), "reduce_tree needs at least one value");
    let mut frontier = vals;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            if pair.len() == 2 {
                next.push(r.bin(op, pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
    }
    frontier[0]
}

/// The benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MachSuite accelerator benchmarks.
    MachSuite,
    /// SPU sparse microbenchmarks.
    Sparse,
    /// REVEL DSP kernels.
    Dsp,
    /// PolyBench dense linear algebra.
    PolyBench,
    /// Dense neural-network suite (DianNao comparison).
    DenseNN,
    /// Sparse CNN workload (SCNN/SPU comparison).
    SparseCNN,
}

impl Suite {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::MachSuite => "MachSuite",
            Suite::Sparse => "Sparse",
            Suite::Dsp => "Dsp",
            Suite::PolyBench => "PolyBench",
            Suite::DenseNN => "DenseNN",
            Suite::SparseCNN => "SparseCNN",
        }
    }
}

/// One evaluation workload: a named kernel with its Table I data-size
/// string.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Table I data-size label.
    pub data_size: &'static str,
    /// The kernel.
    pub kernel: Kernel,
}

/// All Table I workloads plus the NN DSE suites.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = suite(Suite::MachSuite);
    v.extend(suite(Suite::Sparse));
    v.extend(suite(Suite::Dsp));
    v.extend(suite(Suite::PolyBench));
    v.extend(suite(Suite::DenseNN));
    v.extend(suite(Suite::SparseCNN));
    v
}

/// The workloads of one suite.
#[must_use]
pub fn suite(s: Suite) -> Vec<Workload> {
    match s {
        Suite::MachSuite => vec![
            Workload {
                name: "md",
                suite: s,
                data_size: "128 x 16",
                kernel: machsuite::md(),
            },
            Workload {
                name: "spmv-crs",
                suite: s,
                data_size: "464 x 4",
                kernel: machsuite::spmv_crs(),
            },
            Workload {
                name: "spmv-ellpack",
                suite: s,
                data_size: "464 x 4",
                kernel: machsuite::spmv_ellpack(),
            },
            Workload {
                name: "mm",
                suite: s,
                data_size: "64^3",
                kernel: machsuite::mm(),
            },
            Workload {
                name: "stencil-2d",
                suite: s,
                data_size: "130^2 x 3^2",
                kernel: machsuite::stencil2d(),
            },
            Workload {
                name: "stencil-3d",
                suite: s,
                data_size: "32^2 x 16 x 2",
                kernel: machsuite::stencil3d(),
            },
        ],
        Suite::Sparse => vec![
            Workload {
                name: "histogram",
                suite: s,
                data_size: "2^10 x 2^16",
                kernel: sparse::histogram(),
            },
            Workload {
                name: "join",
                suite: s,
                data_size: "768 x 2",
                kernel: sparse::join(),
            },
        ],
        Suite::Dsp => vec![
            Workload {
                name: "qr",
                suite: s,
                data_size: "32^2",
                kernel: dsp::qr(),
            },
            Workload {
                name: "chol",
                suite: s,
                data_size: "32^2",
                kernel: dsp::cholesky(),
            },
            Workload {
                name: "fft",
                suite: s,
                data_size: "2^10",
                kernel: dsp::fft(),
            },
            Workload {
                name: "centro-fir",
                suite: s,
                data_size: "2^11 x 32",
                kernel: dsp::centro_fir(),
            },
        ],
        Suite::PolyBench => vec![
            Workload {
                name: "mm",
                suite: s,
                data_size: "32^3",
                kernel: polybench::mm(),
            },
            Workload {
                name: "2mm",
                suite: s,
                data_size: "32^3",
                kernel: polybench::mm2(),
            },
            Workload {
                name: "3mm",
                suite: s,
                data_size: "32^2",
                kernel: polybench::mm3(),
            },
            Workload {
                name: "atax",
                suite: s,
                data_size: "32^2",
                kernel: polybench::atax(),
            },
            Workload {
                name: "mvt",
                suite: s,
                data_size: "32^2",
                kernel: polybench::mvt(),
            },
        ],
        Suite::DenseNN => vec![
            Workload {
                name: "conv",
                suite: s,
                data_size: "28^2 x 8",
                kernel: nn::conv(),
            },
            Workload {
                name: "pool",
                suite: s,
                data_size: "26^2 x 8",
                kernel: nn::pool(),
            },
            Workload {
                name: "classifier",
                suite: s,
                data_size: "256 x 128",
                kernel: nn::classifier(),
            },
        ],
        Suite::SparseCNN => vec![Workload {
            name: "sparse-cnn",
            suite: s,
            data_size: "256 x 256",
            kernel: nn::sparse_cnn(),
        }],
    }
}

/// Just the kernels of a suite (convenience for the DSE harness).
#[must_use]
pub fn suite_kernels(s: Suite) -> Vec<Kernel> {
    suite(s).into_iter().map(|w| w.kernel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        assert_eq!(suite(Suite::MachSuite).len(), 6);
        assert_eq!(suite(Suite::Sparse).len(), 2);
        assert_eq!(suite(Suite::Dsp).len(), 4);
        assert_eq!(suite(Suite::PolyBench).len(), 5);
        assert_eq!(suite(Suite::DenseNN).len(), 3);
        assert_eq!(suite(Suite::SparseCNN).len(), 1);
        assert_eq!(all().len(), 21);
    }

    #[test]
    fn every_workload_validates() {
        for w in all() {
            w.kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn names_are_unique_within_suite() {
        for s in [
            Suite::MachSuite,
            Suite::Sparse,
            Suite::Dsp,
            Suite::PolyBench,
            Suite::DenseNN,
        ] {
            let names: Vec<_> = suite(s).iter().map(|w| w.name).collect();
            let mut dedup = names.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(names.len(), dedup.len(), "{s:?}");
        }
    }

    #[test]
    fn every_kernel_compiles_in_fallback_mode() {
        use dsagen_adg::presets;
        use dsagen_dfg::{compile_kernel, TransformConfig};
        let feats = presets::dse_initial().features();
        for w in all() {
            let ck = compile_kernel(&w.kernel, &TransformConfig::fallback(), &feats)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(!ck.regions.is_empty());
            assert!(ck.regions.iter().all(|r| r.instances >= 1.0));
        }
    }
}
