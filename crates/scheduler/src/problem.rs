//! Flattening a compiled kernel into placeable entities and routable
//! virtual edges.

use dsagen_adg::{Adg, NodeId, NodeKind, Opcode};
use dsagen_dfg::{CompiledKernel, DfgOp, OpId, StreamSource};

/// What one placeable entity is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A compute node (one PE instruction).
    Op {
        /// Region index within the kernel.
        region: usize,
        /// Node within that region's DFG.
        op: OpId,
    },
    /// An input vector port (one in-stream's sync element). All
    /// `DfgOp::Input` nodes with this port share the placement.
    InPort {
        /// Region index.
        region: usize,
        /// Port index into `in_streams`.
        port: usize,
    },
    /// An output vector port.
    OutPort {
        /// Region index.
        region: usize,
        /// Port index into `out_streams`.
        port: usize,
    },
}

/// A placeable entity plus its placement constraints.
#[derive(Debug, Clone)]
pub struct Entity {
    /// What this entity is.
    pub kind: EntityKind,
    /// For ops: the opcode a hosting PE must support.
    pub opcode: Option<Opcode>,
    /// For ops: whether the hosting PE must support stream-join.
    pub needs_stream_join: bool,
    /// Result width in bits (ops) or element width (ports).
    pub width_bits: u16,
    /// Firing rate relative to the region's instance rate (1.0 = fires
    /// every instance; outer-loop work fires less often and prefers shared
    /// PEs, §IV-C).
    pub rate: f64,
    /// For ports: required vector lanes.
    pub lanes: u16,
    /// For ports: whether the stream needs a memory neighbor (false for
    /// forwarded / control-core streams).
    pub needs_memory: bool,
    /// For ports: whether the paired stream needs an indirect controller.
    pub needs_indirect: bool,
    /// For ports: whether the paired stream needs atomic update.
    pub needs_atomic: bool,
    /// For ports: memory class required, if memory-sourced.
    pub mem_class: Option<dsagen_dfg::MemClass>,
}

impl Entity {
    /// The kernel region this entity belongs to.
    #[must_use]
    pub fn region(&self) -> usize {
        match self.kind {
            EntityKind::Op { region, .. }
            | EntityKind::InPort { region, .. }
            | EntityKind::OutPort { region, .. } => region,
        }
    }
}

/// A dependence between two entities that must be routed on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtEdge {
    /// Producing entity index.
    pub src: usize,
    /// Consuming entity index.
    pub dst: usize,
    /// Operand position at the consumer (for diagnostics).
    pub operand: usize,
}

/// The flattened scheduling problem.
#[derive(Debug)]
pub struct Problem<'a> {
    /// Target hardware.
    pub adg: &'a Adg,
    /// Program to place.
    pub kernel: &'a CompiledKernel,
    /// Placeable entities.
    pub entities: Vec<Entity>,
    /// Value dependences to route.
    pub edges: Vec<VirtEdge>,
    /// For every (region, dfg op) → entity index (ops and ports; consts map
    /// to `usize::MAX`).
    pub op_entity: Vec<Vec<usize>>,
}

impl<'a> Problem<'a> {
    /// Builds the problem for `kernel` on `adg`.
    #[must_use]
    pub fn new(adg: &'a Adg, kernel: &'a CompiledKernel) -> Self {
        let mut entities: Vec<Entity> = Vec::new();
        let mut edges = Vec::new();
        let mut op_entity: Vec<Vec<usize>> = Vec::new();
        // (region, in-port) → entity, (region, out-port) → entity
        let mut in_port_entity: Vec<Vec<usize>> = Vec::new();
        let mut out_port_entity: Vec<Vec<usize>> = Vec::new();

        for (ri, region) in kernel.regions.iter().enumerate() {
            let rates = op_rates(region);
            // Port entities first.
            let mut in_map = vec![usize::MAX; region.in_streams.len()];
            for s in &region.in_streams {
                if !s.to_fabric {
                    continue; // index streams bind to the data stream's memory
                }
                let (needs_memory, mem_class) = match s.source {
                    StreamSource::Memory(mc) => (true, Some(mc)),
                    StreamSource::Forward { .. } | StreamSource::ControlCore => (false, None),
                };
                in_map[s.port] = entities.len();
                entities.push(Entity {
                    kind: EntityKind::InPort {
                        region: ri,
                        port: s.port,
                    },
                    opcode: None,
                    needs_stream_join: false,
                    width_bits: (s.elem_bytes * 8).min(4096) as u16,
                    rate: 1.0,
                    lanes: s.lanes,
                    needs_memory,
                    needs_indirect: s.pattern.indirect && needs_memory,
                    needs_atomic: false,
                    mem_class,
                });
            }
            let mut out_map = vec![usize::MAX; region.out_streams.len()];
            for s in &region.out_streams {
                let (needs_memory, mem_class) = match s.source {
                    StreamSource::Memory(mc) => (true, Some(mc)),
                    StreamSource::Forward { .. } | StreamSource::ControlCore => (false, None),
                };
                out_map[s.port] = entities.len();
                entities.push(Entity {
                    kind: EntityKind::OutPort {
                        region: ri,
                        port: s.port,
                    },
                    opcode: None,
                    needs_stream_join: false,
                    width_bits: (s.elem_bytes * 8).min(4096) as u16,
                    rate: 1.0,
                    lanes: s.lanes,
                    needs_memory,
                    needs_indirect: s.pattern.indirect && needs_memory,
                    needs_atomic: s.dir == dsagen_dfg::StreamDir::AtomicUpdate,
                    mem_class,
                });
            }

            // Op entities.
            let mut map = vec![usize::MAX; region.dfg.len()];
            for (oid, op) in region.dfg.iter() {
                match op {
                    DfgOp::Input { port } => {
                        map[oid.index()] = in_map[*port];
                    }
                    DfgOp::Output { port, .. } => {
                        map[oid.index()] = out_map[*port];
                    }
                    DfgOp::Const(_) => {}
                    _ => {
                        map[oid.index()] = entities.len();
                        entities.push(Entity {
                            kind: EntityKind::Op { region: ri, op: oid },
                            opcode: op.required_opcode(),
                            needs_stream_join: matches!(op, DfgOp::StreamJoin { .. }),
                            width_bits: region.dfg.width(oid).bits(),
                            rate: rates[oid.index()],
                            lanes: 1,
                            needs_memory: false,
                            needs_indirect: false,
                            needs_atomic: false,
                            mem_class: None,
                        });
                    }
                }
            }
            // Value edges (skip constants — they are encoded in PE config).
            for (oid, op) in region.dfg.iter() {
                let dst_entity = map[oid.index()];
                if dst_entity == usize::MAX {
                    continue;
                }
                for (k, operand) in op.operands().iter().enumerate() {
                    let src_entity = map[operand.index()];
                    if src_entity == usize::MAX {
                        continue; // constant operand
                    }
                    edges.push(VirtEdge {
                        src: src_entity,
                        dst: dst_entity,
                        operand: k,
                    });
                }
            }
            op_entity.push(map);
            in_port_entity.push(in_map);
            out_port_entity.push(out_map);
        }

        // Forwarded streams (producer-consumer, repetitive update) travel
        // port-to-port through the stream dispatcher — "the compiler will
        // generate control code that directly forwards the produced value
        // to the consumer" (§IV-D) — so they are *not* routed on the
        // spatial network and add no virtual edges here.
        let _ = (&in_port_entity, &out_port_entity);

        Problem {
            adg,
            kernel,
            entities,
            edges,
            op_entity,
        }
    }

    /// ADG nodes compatible with entity `e` (hard constraints only: node
    /// kind, opcode support, stream-join, width). Soft constraints (slots,
    /// lanes, memory adjacency) are priced by the objective instead, so the
    /// search can pass through infeasible intermediate states (§IV-C "the
    /// routing and PE resources are allowed to be overutilized").
    #[must_use]
    pub fn candidates(&self, e: &Entity) -> Vec<NodeId> {
        match &e.kind {
            EntityKind::Op { .. } => self
                .adg
                .nodes()
                .filter(|n| match &n.kind {
                    NodeKind::Pe(pe) => {
                        let op_ok = e.opcode.is_none_or(|oc| pe.ops.contains(oc));
                        let join_ok = !e.needs_stream_join || pe.supports_stream_join();
                        let width_ok = pe.bitwidth.bits() >= e.width_bits.min(64);
                        op_ok && join_ok && width_ok
                    }
                    _ => false,
                })
                .map(|n| n.id())
                .collect(),
            EntityKind::InPort { .. } => self
                .adg
                .syncs()
                .filter(|&sy| {
                    if !e.needs_memory {
                        return true;
                    }
                    self.adg.in_edges(sy).any(|edge| {
                        matches!(self.adg.kind(edge.src), Ok(NodeKind::Memory(m))
                            if mem_matches(m, e))
                    })
                })
                .collect(),
            EntityKind::OutPort { .. } => self
                .adg
                .syncs()
                .filter(|&sy| {
                    if !e.needs_memory {
                        return true;
                    }
                    self.adg.out_edges(sy).any(|edge| {
                        matches!(self.adg.kind(edge.dst), Ok(NodeKind::Memory(m))
                            if mem_matches(m, e))
                    })
                })
                .collect(),
        }
    }
}

fn mem_matches(m: &dsagen_adg::MemSpec, e: &Entity) -> bool {
    use dsagen_adg::MemKind;
    let class_ok = match e.mem_class {
        Some(dsagen_dfg::MemClass::MainMemory) => m.kind == MemKind::MainMemory,
        Some(dsagen_dfg::MemClass::Scratchpad) => m.kind == MemKind::Scratchpad,
        None => true,
    };
    let ind_ok = !e.needs_indirect || m.controllers.indirect;
    let at_ok = !e.needs_atomic || m.controllers.atomic_update;
    class_ok && ind_ok && at_ok
}

/// Firing rate of every DFG node relative to the region instance rate.
///
/// Inputs fire at the ratio of stream elements to region instances;
/// consumers of an accumulator fire once per `reset_every`; everything else
/// fires at the fastest of its operands. Low-rate nodes prefer shared PEs.
#[must_use]
pub fn op_rates(region: &dsagen_dfg::CompiledRegion) -> Vec<f64> {
    let mut rates = vec![1.0f64; region.dfg.len()];
    for (oid, op) in region.dfg.iter() {
        let r = match op {
            DfgOp::Input { port } => region
                .in_streams
                .iter()
                .find(|s| s.port == *port && s.to_fabric)
                .map_or(1.0, |s| {
                    let per_instance =
                        s.pattern.total_elems() / f64::from(s.lanes.max(1)) / region.instances;
                    per_instance.clamp(0.0, 1.0)
                }),
            DfgOp::Const(_) => 0.0,
            DfgOp::StreamJoin { .. } => 1.0,
            DfgOp::Compute { ins, .. } => ins
                .iter()
                .map(|o| consumed_rate(region, *o, &rates))
                .fold(0.0, f64::max),
            DfgOp::Accum { input, .. } => consumed_rate(region, *input, &rates),
            DfgOp::Output { input, .. } => consumed_rate(region, *input, &rates),
        };
        rates[oid.index()] = r;
    }
    rates
}

/// The rate at which a *consumer* of `src` fires: accumulator outputs are
/// only released at reset boundaries.
fn consumed_rate(region: &dsagen_dfg::CompiledRegion, src: OpId, rates: &[f64]) -> f64 {
    match region.dfg.op(src) {
        DfgOp::Accum { reset_every, .. } => rates[src.index()] / (*reset_every as f64).max(1.0),
        _ => rates[src.index()],
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };

    use super::*;

    fn dot_compiled(unroll: u16) -> dsagen_dfg::CompiledKernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 1024, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 1024, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(1024), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let feats = presets::softbrain().features();
        compile_kernel(
            &kernel,
            &TransformConfig {
                unroll,
                ..TransformConfig::fallback()
            },
            &feats,
        )
        .unwrap()
    }

    #[test]
    fn flattening_counts() {
        let adg = presets::softbrain();
        let ck = dot_compiled(1);
        let p = Problem::new(&adg, &ck);
        // 2 in-ports + 1 out-port + mul + accum
        assert_eq!(p.entities.len(), 5);
        // a→mul, b→mul, mul→accum, accum→out
        assert_eq!(p.edges.len(), 4);
    }

    #[test]
    fn op_candidates_are_pes() {
        let adg = presets::softbrain();
        let ck = dot_compiled(1);
        let p = Problem::new(&adg, &ck);
        for e in &p.entities {
            let c = p.candidates(e);
            assert!(!c.is_empty(), "{:?} has no candidates", e.kind);
            match e.kind {
                EntityKind::Op { .. } => {
                    assert!(c
                        .iter()
                        .all(|id| matches!(adg.kind(*id), Ok(NodeKind::Pe(_)))));
                }
                _ => {
                    assert!(c
                        .iter()
                        .all(|id| matches!(adg.kind(*id), Ok(NodeKind::Sync(_)))));
                }
            }
        }
    }

    #[test]
    fn stream_join_requires_capable_pe() {
        // Build a join kernel and check candidates only exist on SPU.
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 768, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 768, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("j", 1.0);
        let j = r.join_loop(
            dsagen_dfg::JoinSide {
                key: k0,
                payloads: vec![],
                len: 768,
            },
            dsagen_dfg::JoinSide {
                key: k1,
                payloads: vec![],
                len: 768,
            },
            0.5,
        );
        let a = r.load(k0, AffineExpr::var(j));
        let b = r.load(k1, AffineExpr::var(j));
        let p = r.bin(Opcode::Mul, a, b);
        let acc = r.reduce(Opcode::Add, p, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let spu = presets::spu();
        let ck = compile_kernel(
            &kernel,
            &TransformConfig {
                stream_join: true,
                ..TransformConfig::fallback()
            },
            &spu.features(),
        )
        .unwrap();
        let prob_spu = Problem::new(&spu, &ck);
        let join_entity = prob_spu
            .entities
            .iter()
            .find(|e| e.needs_stream_join)
            .unwrap();
        assert!(!prob_spu.candidates(join_entity).is_empty());

        let soft = presets::softbrain();
        let prob_soft = Problem::new(&soft, &ck);
        let join_entity = prob_soft
            .entities
            .iter()
            .find(|e| e.needs_stream_join)
            .unwrap();
        assert!(prob_soft.candidates(join_entity).is_empty());
    }

    #[test]
    fn rates_accumulator_consumers_are_low_rate() {
        let ck = dot_compiled(1);
        let region = &ck.regions[0];
        let rates = op_rates(region);
        // Output node consumes the accumulator → rate 1/1024.
        let out_rate = region
            .dfg
            .iter()
            .find_map(|(oid, op)| {
                matches!(op, DfgOp::Output { .. }).then(|| rates[oid.index()])
            })
            .unwrap();
        assert!(out_rate < 0.01, "out rate {out_rate}");
        // Mul fires every instance.
        let mul_rate = region
            .dfg
            .iter()
            .find_map(|(oid, op)| match op {
                DfgOp::Compute { op: Opcode::Mul, .. } => Some(rates[oid.index()]),
                _ => None,
            })
            .unwrap();
        assert_eq!(mul_rate, 1.0);
    }

    #[test]
    fn unrolled_problem_has_more_entities() {
        let adg = presets::softbrain();
        let ck1 = dot_compiled(1);
        let ck4 = dot_compiled(4);
        let p1 = Problem::new(&adg, &ck1);
        let p4 = Problem::new(&adg, &ck4);
        assert!(p4.entities.len() > p1.entities.len());
        assert!(p4.edges.len() > p1.edges.len());
    }
}
