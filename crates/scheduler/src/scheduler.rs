//! The stochastic scheduling loop (§IV-C Algorithm 1) and schedule repair
//! (§V-A).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dsagen_adg::Adg;
use dsagen_dfg::CompiledKernel;
use dsagen_telemetry::Telemetry;

use crate::{evaluate, route, Evaluation, Problem, Schedule, Weights};

/// Tunables for the stochastic scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum improvement iterations (the paper's DSE uses up to 200 per
    /// hardware change, §VIII-B).
    pub max_iters: u32,
    /// Candidate placements sampled per unmapped entity.
    pub candidates: usize,
    /// Iterations without improvement before a feasible schedule is
    /// declared converged.
    pub patience: u32,
    /// RNG seed (every run is deterministic given the seed).
    pub seed: u64,
    /// Congestion weight used during routing.
    pub congestion: f64,
    /// Objective weights.
    pub weights: Weights,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_iters: 200,
            candidates: 6,
            patience: 30,
            seed: 0xD5A6E4,
            // Sharing a link is priced far above any detour the router
            // could take (MAX_HOPS-bounded), so congestion is only accepted
            // when no alternative path exists at all.
            congestion: 100.0,
            weights: Weights::default(),
        }
    }
}

/// How a scheduling run related to the previous schedule it started from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Scheduled from scratch — no previous schedule.
    Fresh,
    /// Repaired with every previous placement and route intact.
    Clean,
    /// The hardware changed underneath the previous schedule: some of it
    /// had to be dropped and redone.
    Degraded {
        /// Entity placements invalidated (deleted or incompatible nodes).
        dropped: usize,
        /// Routes invalidated (severed edges, endpoints dropped, or turns
        /// forbidden by a changed routing matrix) that had to be rerouted.
        rerouted: usize,
    },
}

impl RepairOutcome {
    /// Whether anything from the previous schedule was lost.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, RepairOutcome::Degraded { .. })
    }
}

/// The outcome of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its evaluation.
    pub eval: Evaluation,
    /// Iterations actually executed.
    pub iterations: u32,
    /// Relation to the previous schedule (repair runs only).
    pub outcome: RepairOutcome,
}

impl ScheduleResult {
    /// Whether the schedule is complete and violation-free.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.eval.feasible
    }
}

/// Schedules `kernel` onto `adg` from scratch.
///
/// # Example
///
/// ```
/// use dsagen_adg::{presets, BitWidth, Opcode};
/// use dsagen_dfg::*;
/// use dsagen_scheduler::{schedule, SchedulerConfig};
///
/// let adg = presets::softbrain();
/// let mut k = KernelBuilder::new("scale");
/// let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
/// let mut r = k.region("body", 1.0);
/// let i = r.for_loop(TripCount::fixed(64), true);
/// let v = r.load(a, AffineExpr::var(i));
/// let two = r.imm(2);
/// let w = r.bin(Opcode::Mul, v, two);
/// r.store(a, AffineExpr::var(i), w);
/// k.finish_region(r);
/// let kernel = k.build()?;
/// let ck = compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features())?;
/// let result = schedule(&adg, &ck, &SchedulerConfig::default());
/// assert!(result.is_legal());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn schedule(adg: &Adg, kernel: &CompiledKernel, cfg: &SchedulerConfig) -> ScheduleResult {
    schedule_instrumented(adg, kernel, cfg, &Telemetry::disabled())
}

/// [`schedule`] with observability: the path search emits a
/// `sched/path_search` span and `scheduler.path_search.*` metrics
/// (invocations, iterations, victims, candidate expansions) into `tel`.
/// With a disabled handle this is byte-for-byte the same search as
/// [`schedule`] — instrumentation is a handful of `Option` branches and
/// never touches the RNG.
#[must_use]
pub fn schedule_instrumented(
    adg: &Adg,
    kernel: &CompiledKernel,
    cfg: &SchedulerConfig,
    tel: &Telemetry,
) -> ScheduleResult {
    let problem = Problem::new(adg, kernel);
    let initial = Schedule::empty(&problem);
    run(&problem, initial, cfg, tel)
}

/// Repairs a previous schedule against a (possibly mutated or
/// fault-degraded) ADG, then continues iterating — the §V-A repairing
/// scheduler. Placements on deleted or incompatible hardware are dropped,
/// routes through severed links or newly-forbidden switch turns are
/// rerouted, and everything else is reused. The result's
/// [`ScheduleResult::outcome`] records what was lost.
#[must_use]
pub fn repair(
    adg: &Adg,
    kernel: &CompiledKernel,
    previous: Schedule,
    cfg: &SchedulerConfig,
) -> ScheduleResult {
    repair_instrumented(adg, kernel, previous, cfg, &Telemetry::disabled())
}

/// [`repair`] with observability (see [`schedule_instrumented`]).
#[must_use]
pub fn repair_instrumented(
    adg: &Adg,
    kernel: &CompiledKernel,
    mut previous: Schedule,
    cfg: &SchedulerConfig,
    tel: &Telemetry,
) -> ScheduleResult {
    let problem = Problem::new(adg, kernel);
    let routes_before = previous.routes.len();
    let dropped = previous.invalidate_removed(&problem);
    // `invalidate_removed` checks route *structure* (edges still chain);
    // faults like a stuck switch keep every edge alive but forbid turns,
    // so re-check route *semantics* too.
    let placement = previous.placement.clone();
    previous.routes.retain(|idx, path| {
        problem
            .edges
            .get(*idx)
            .and_then(|vedge| placement.get(vedge.src).copied().flatten())
            .is_some_and(|src| crate::route::path_legal(adg, src, path))
    });
    let rerouted = routes_before.saturating_sub(previous.routes.len());
    let outcome = if dropped == 0 && rerouted == 0 {
        RepairOutcome::Clean
    } else {
        RepairOutcome::Degraded { dropped, rerouted }
    };
    let mut result = run(&problem, previous, cfg, tel);
    result.outcome = outcome;
    result
}

/// [`repair`] with bounded retry-with-escalation: if the repaired schedule
/// is still illegal, the iteration budget is doubled (and the seed
/// perturbed) and the repair re-run from the same previous schedule, up to
/// `max_attempts` total attempts or an absolute per-attempt budget of
/// 4096 iterations. Returns the first legal result, or the best illegal
/// one (lowest objective) if every attempt fails — never panics.
#[must_use]
pub fn repair_with_escalation(
    adg: &Adg,
    kernel: &CompiledKernel,
    previous: &Schedule,
    cfg: &SchedulerConfig,
    max_attempts: u32,
) -> ScheduleResult {
    repair_with_escalation_instrumented(adg, kernel, previous, cfg, max_attempts, &Telemetry::disabled())
}

/// [`repair_with_escalation`] with observability (see
/// [`schedule_instrumented`]).
#[must_use]
pub fn repair_with_escalation_instrumented(
    adg: &Adg,
    kernel: &CompiledKernel,
    previous: &Schedule,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    tel: &Telemetry,
) -> ScheduleResult {
    const ITER_CAP: u32 = 4096;
    let mut best: Option<ScheduleResult> = None;
    let mut iters = cfg.max_iters.max(1);
    for attempt in 0..max_attempts.max(1) {
        let attempt_cfg = SchedulerConfig {
            max_iters: iters.min(ITER_CAP),
            seed: cfg.seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..*cfg
        };
        let result = repair_instrumented(adg, kernel, previous.clone(), &attempt_cfg, tel);
        let legal = result.is_legal();
        let better = best
            .as_ref()
            .is_none_or(|b| result.eval.objective < b.eval.objective);
        if legal || better {
            best = Some(result);
        }
        if best.as_ref().is_some_and(ScheduleResult::is_legal) {
            break;
        }
        if iters >= ITER_CAP {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // The loop above always runs at least once, so `best` is set; the
    // fallback keeps this function panic-free even if that invariant is
    // ever broken by a refactor.
    best.unwrap_or_else(|| repair_instrumented(adg, kernel, previous.clone(), cfg, tel))
}

/// Repairs `previous` against a (possibly masked) `adg` while touching
/// **only** the entities of `regions` — every placement and route outside
/// those regions is pinned bit-identically. This is the scheduling half of
/// the partial re-placement recovery rung: the afflicted fault-isolation
/// domain is re-placed while untouched domains keep their assignments (and
/// therefore their timing).
///
/// With `from_scratch` the afflicted regions' placements and routes are
/// dropped entirely before the search runs, giving the packer maximum
/// freedom inside the domain; without it the repair is incremental (only
/// hardware invalidated by `adg` is re-done).
///
/// Returns `None` when the fabric invalidates something *pinned* — the
/// caller's mask took out hardware a non-afflicted domain depends on, so
/// this rung is structurally infeasible and the ladder must escalate.
#[must_use]
pub fn repair_regions(
    adg: &Adg,
    kernel: &CompiledKernel,
    previous: &Schedule,
    regions: &std::collections::BTreeSet<usize>,
    from_scratch: bool,
    cfg: &SchedulerConfig,
) -> Option<ScheduleResult> {
    let problem = Problem::new(adg, kernel);
    if previous.placement.len() != problem.entities.len() {
        return None; // shape mismatch: nothing can be pinned meaningfully
    }
    let mut sched = previous.clone();
    let routes_before = sched.routes.len();
    let dropped = sched.invalidate_removed(&problem);
    // Route semantics (stuck turns) re-checked exactly as `repair` does.
    let placement = sched.placement.clone();
    sched.routes.retain(|idx, path| {
        problem
            .edges
            .get(*idx)
            .and_then(|vedge| placement.get(vedge.src).copied().flatten())
            .is_some_and(|src| crate::route::path_legal(adg, src, path))
    });
    let rerouted = routes_before.saturating_sub(sched.routes.len());
    // The pins must have survived the fabric: if invalidation touched
    // anything outside the afflicted regions, scoped repair cannot hold
    // its contract.
    if !sched.agrees_outside(&problem, previous, regions) {
        return None;
    }
    let allowed: Vec<bool> = problem
        .entities
        .iter()
        .map(|e| regions.contains(&e.region()))
        .collect();
    if from_scratch {
        for (i, &movable) in allowed.iter().enumerate() {
            if movable {
                sched.unplace(&problem, i);
            }
        }
    }
    let outcome = if dropped == 0 && rerouted == 0 && !from_scratch {
        RepairOutcome::Clean
    } else {
        RepairOutcome::Degraded { dropped, rerouted }
    };
    let mut result = run_scoped(&problem, sched, cfg, &allowed, &Telemetry::disabled());
    result.outcome = outcome;
    Some(result)
}

/// [`repair_regions`] with the same bounded retry-with-escalation as
/// [`repair_with_escalation`]: budget doubled and seed perturbed per
/// attempt, first legal result wins, best illegal one returned when every
/// attempt fails. `None` exactly when [`repair_regions`] pins cannot hold.
#[must_use]
pub fn repair_regions_with_escalation(
    adg: &Adg,
    kernel: &CompiledKernel,
    previous: &Schedule,
    regions: &std::collections::BTreeSet<usize>,
    from_scratch: bool,
    cfg: &SchedulerConfig,
    max_attempts: u32,
) -> Option<ScheduleResult> {
    const ITER_CAP: u32 = 4096;
    let mut best: Option<ScheduleResult> = None;
    let mut iters = cfg.max_iters.max(1);
    for attempt in 0..max_attempts.max(1) {
        let attempt_cfg = SchedulerConfig {
            max_iters: iters.min(ITER_CAP),
            seed: cfg.seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..*cfg
        };
        let result = repair_regions(adg, kernel, previous, regions, from_scratch, &attempt_cfg)?;
        let legal = result.is_legal();
        let better = best
            .as_ref()
            .is_none_or(|b| result.eval.objective < b.eval.objective);
        if legal || better {
            best = Some(result);
        }
        if best.as_ref().is_some_and(ScheduleResult::is_legal) {
            break;
        }
        if iters >= ITER_CAP {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    best
}

/// The improvement loop restricted to `allowed` entities: victims,
/// re-placement, and rip-up only ever touch allowed entities and their
/// (intra-region) routes, so everything else stays bit-identical to the
/// starting schedule. With all entities allowed this degenerates to the
/// same search as [`run`] (modulo RNG draw order).
///
/// Unlike [`run`], the incumbent here is tracked *feasibility-first*: a
/// feasible schedule always beats an infeasible one, and the objective
/// only breaks ties within the same feasibility class. Recovery rungs
/// call this under full-fidelity weights, where a feasible-but-high-II
/// mapping can cost more than an infeasible low-II one — pure
/// cost-tracking would throw away the only mapping the rung is allowed
/// to return.
fn run_scoped(
    problem: &Problem<'_>,
    mut sched: Schedule,
    cfg: &SchedulerConfig,
    allowed: &[bool],
    tel: &Telemetry,
) -> ScheduleResult {
    let mut span = tel.span("sched", "path_search_scoped");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut expansions: u64 = 0;
    let mut victims_total: u64 = 0;
    let allowed_idx: Vec<usize> = (0..problem.entities.len())
        .filter(|i| allowed[*i])
        .collect();

    // Initial completion: place every unplaced allowed entity greedily.
    let unplaced: Vec<usize> = allowed_idx
        .iter()
        .copied()
        .filter(|i| sched.placement[*i].is_none())
        .collect();
    for v in unplaced {
        expansions += place_best(problem, &mut sched, v, cfg, &mut rng);
    }
    route_missing_scoped(problem, &mut sched, cfg, allowed);

    let mut best_eval = evaluate(problem, &sched, &cfg.weights);
    let mut best = sched.clone();
    let mut stale = 0u32;
    let mut iterations = 0u32;

    if allowed_idx.is_empty() {
        span.end();
        return ScheduleResult {
            schedule: best,
            eval: best_eval,
            iterations,
            outcome: RepairOutcome::Fresh,
        };
    }

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let victims = pick_victims_scoped(problem, &sched, &mut rng, allowed, &allowed_idx);
        victims_total += victims.len() as u64;
        for v in &victims {
            sched.unplace(problem, *v);
        }
        for v in victims {
            expansions += place_best(problem, &mut sched, v, cfg, &mut rng);
        }
        ripup_congested_scoped(problem, &mut sched, &mut rng, allowed);
        route_missing_scoped(problem, &mut sched, cfg, allowed);

        let eval = evaluate(problem, &sched, &cfg.weights);
        let better = (eval.feasible && !best_eval.feasible)
            || (eval.feasible == best_eval.feasible && eval.objective < best_eval.objective);
        if better {
            best_eval = eval;
            best = sched.clone();
            stale = 0;
        } else {
            stale += 1;
            if stale.is_multiple_of(10) {
                sched = best.clone();
            }
        }
        if best_eval.feasible && stale >= cfg.patience {
            break;
        }
    }

    flush_search_metrics(tel, iterations, victims_total, expansions, best_eval.feasible);
    span.arg("iterations", iterations);
    span.arg("expansions", expansions);
    span.arg("feasible", best_eval.feasible);
    span.end();
    ScheduleResult {
        schedule: best,
        eval: best_eval,
        iterations,
        outcome: RepairOutcome::Fresh,
    }
}

/// [`route_missing`] restricted to routes whose virtual edge belongs to an
/// allowed entity (virtual edges never cross regions, so `src` decides).
fn route_missing_scoped(
    problem: &Problem<'_>,
    sched: &mut Schedule,
    cfg: &SchedulerConfig,
    allowed: &[bool],
) {
    for (i, e) in problem.edges.iter().enumerate() {
        if !allowed[e.src] || sched.routes.contains_key(&i) {
            continue;
        }
        let (Some(src), Some(dst)) = (sched.placement[e.src], sched.placement[e.dst]) else {
            continue;
        };
        let values = sched.edge_values(problem);
        let src_entity = e.src;
        if let Some(path) = route(
            problem.adg,
            src,
            dst,
            |eid| {
                values.get(&eid).map_or(0, |vals| {
                    vals.iter().filter(|v| **v != src_entity).count() as u32
                })
            },
            cfg.congestion,
        ) {
            sched.routes.insert(i, path);
        }
    }
}

/// [`ripup_congested`] restricted to allowed routes: congestion caused by
/// pinned traffic can only be negotiated by moving the afflicted domain's
/// own routes.
fn ripup_congested_scoped(
    problem: &Problem<'_>,
    sched: &mut Schedule,
    rng: &mut StdRng,
    allowed: &[bool],
) {
    let values = sched.edge_values(problem);
    let congested: std::collections::BTreeSet<_> = values
        .iter()
        .filter(|(_, vals)| vals.len() > 1)
        .map(|(eid, _)| *eid)
        .collect();
    if congested.is_empty() {
        return;
    }
    let mut crossing: Vec<usize> = sched
        .routes
        .iter()
        .filter(|(i, path)| {
            problem
                .edges
                .get(**i)
                .is_some_and(|e| allowed[e.src])
                && path.iter().any(|eid| congested.contains(eid))
        })
        .map(|(i, _)| *i)
        .collect();
    crossing.sort_unstable();
    for i in crossing {
        if rng.gen_bool(0.5) {
            sched.routes.remove(&i);
        }
    }
}

/// [`pick_victims`] restricted to allowed entities.
fn pick_victims_scoped(
    problem: &Problem<'_>,
    sched: &Schedule,
    rng: &mut StdRng,
    allowed: &[bool],
    allowed_idx: &[usize],
) -> Vec<usize> {
    if allowed_idx.is_empty() {
        return Vec::new();
    }
    let mut pool: Vec<usize> = Vec::new();
    // Allowed entities on overused PEs (pinned co-tenants cannot move, so
    // only the domain's own entities are candidates).
    let mut pe_counts: std::collections::BTreeMap<_, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, p) in sched.placement.iter().enumerate() {
        if let Some(node) = p {
            pe_counts.entry(*node).or_default().push(i);
        }
    }
    for (node, ents) in &pe_counts {
        let slots = match problem.adg.kind(*node) {
            Ok(dsagen_adg::NodeKind::Pe(pe)) => pe.sharing.instruction_slots() as usize,
            Ok(dsagen_adg::NodeKind::Sync(_)) => 1,
            _ => usize::MAX,
        };
        if ents.len() > slots {
            pool.extend(ents.iter().copied().filter(|i| allowed[*i]));
        }
    }
    // Allowed entities with unrouted edges.
    for (i, e) in problem.edges.iter().enumerate() {
        if allowed[e.src]
            && !sched.routes.contains_key(&i)
            && sched.placement[e.src].is_some()
            && sched.placement[e.dst].is_some()
        {
            pool.push(e.src);
            pool.push(e.dst);
        }
    }
    // Allowed routes crossing congested links.
    let values = sched.edge_values(problem);
    let congested: std::collections::BTreeSet<_> = values
        .iter()
        .filter(|(_, vals)| vals.len() > 1)
        .map(|(eid, _)| *eid)
        .collect();
    if !congested.is_empty() {
        for (i, path) in &sched.routes {
            if path.iter().any(|eid| congested.contains(eid)) {
                if let Some(e) = problem.edges.get(*i) {
                    if allowed[e.src] {
                        pool.push(e.src);
                        pool.push(e.dst);
                    }
                }
            }
        }
    }
    // Unplaced allowed entities always need attention.
    pool.extend(allowed_idx.iter().copied().filter(|i| sched.placement[*i].is_none()));
    pool.sort_unstable();

    let count = rng.gen_range(1..=3usize.min(allowed_idx.len()));
    let mut victims = Vec::with_capacity(count);
    for _ in 0..count {
        let v = if !pool.is_empty() && rng.gen_bool(0.8) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            allowed_idx[rng.gen_range(0..allowed_idx.len())]
        };
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    victims
}

fn run(
    problem: &Problem<'_>,
    mut sched: Schedule,
    cfg: &SchedulerConfig,
    tel: &Telemetry,
) -> ScheduleResult {
    let mut span = tel.span("sched", "path_search");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut expansions: u64 = 0;
    let mut victims_total: u64 = 0;

    // Initial completion: place every unplaced entity greedily.
    {
        let _init = tel.span("sched", "initial_place");
        expansions += complete(problem, &mut sched, cfg, &mut rng);
    }
    let mut best_eval = evaluate(problem, &sched, &cfg.weights);
    let mut best = sched.clone();
    let mut stale = 0u32;
    let mut iterations = 0u32;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // "Unmap one or more mapped instructions (or streams)" — victims
        // biased toward entities involved in violations.
        let victims = pick_victims(problem, &sched, &mut rng);
        victims_total += victims.len() as u64;
        for v in &victims {
            sched.unplace(problem, *v);
        }
        for v in victims {
            expansions += place_best(problem, &mut sched, v, cfg, &mut rng);
        }
        // Rip-up-and-reroute: drop routes crossing congested links so the
        // congestion-aware router can find detours (PathFinder-style
        // negotiation, [51]).
        ripup_congested(problem, &mut sched, &mut rng);
        // Re-route anything whose route got dropped.
        route_missing(problem, &mut sched, cfg);

        let eval = evaluate(problem, &sched, &cfg.weights);
        if eval.objective < best_eval.objective {
            best_eval = eval;
            best = sched.clone();
            stale = 0;
        } else {
            stale += 1;
            // Restart from the best known schedule after a bad streak.
            if stale.is_multiple_of(10) {
                sched = best.clone();
            }
        }
        // "Stop if the objective converges": legal and stable.
        if best_eval.feasible && stale >= cfg.patience {
            break;
        }
    }

    flush_search_metrics(tel, iterations, victims_total, expansions, best_eval.feasible);
    span.arg("iterations", iterations);
    span.arg("expansions", expansions);
    span.arg("feasible", best_eval.feasible);
    span.end();
    ScheduleResult {
        schedule: best,
        eval: best_eval,
        iterations,
        outcome: RepairOutcome::Fresh,
    }
}

/// Flushes one search run's locally accumulated counters into the metrics
/// registry under the `scheduler.path_search.*` name space. A single call
/// per run (not per iteration), so the hot loop pays only plain `u64`
/// increments.
fn flush_search_metrics(
    tel: &Telemetry,
    iterations: u32,
    victims: u64,
    expansions: u64,
    feasible: bool,
) {
    let m = tel.metrics();
    if !m.is_enabled() {
        return;
    }
    m.add("scheduler.path_search.invocations", 1);
    m.add("scheduler.path_search.iterations", u64::from(iterations));
    m.add("scheduler.path_search.victims", victims);
    m.add("scheduler.path_search.expansions", expansions);
    m.observe("scheduler.path_search.iterations_per_run", u64::from(iterations));
    if feasible {
        m.add("scheduler.path_search.converged", 1);
    }
}

/// Places every unplaced entity (ports first, then ops in index order,
/// which is topological within each region) and routes everything.
/// Returns the number of candidate placements evaluated.
fn complete(
    problem: &Problem<'_>,
    sched: &mut Schedule,
    cfg: &SchedulerConfig,
    rng: &mut StdRng,
) -> u64 {
    let mut expansions = 0u64;
    let unplaced: Vec<usize> = (0..problem.entities.len())
        .filter(|i| sched.placement[*i].is_none())
        .collect();
    for v in unplaced {
        expansions += place_best(problem, sched, v, cfg, rng);
    }
    route_missing(problem, sched, cfg);
    expansions
}

/// "For each compatible PE (or memory): route this instruction's operands
/// and dependences …; compute the objective …; commit to the PE which
/// yields the highest objective."
///
/// Returns the number of candidate placements expanded (evaluated), the
/// unit the `scheduler.path_search.expansions` metric counts in.
fn place_best(
    problem: &Problem<'_>,
    sched: &mut Schedule,
    v: usize,
    cfg: &SchedulerConfig,
    rng: &mut StdRng,
) -> u64 {
    let mut candidates = problem.candidates(&problem.entities[v]);
    if candidates.is_empty() {
        return 0; // stays unplaced; priced by the objective
    }
    candidates.shuffle(rng);
    candidates.truncate(cfg.candidates.max(1));
    let expanded = candidates.len() as u64;

    let mut best_node = None;
    let mut best_obj = f64::INFINITY;
    for node in candidates {
        sched.placement[v] = Some(node);
        route_incident(problem, sched, v, cfg);
        let eval = evaluate(problem, sched, &cfg.weights);
        if eval.objective < best_obj {
            best_obj = eval.objective;
            best_node = Some(node);
        }
        // Drop this candidate's routes before trying the next.
        drop_incident_routes(problem, sched, v);
        sched.placement[v] = None;
    }
    if let Some(node) = best_node {
        sched.placement[v] = Some(node);
        route_incident(problem, sched, v, cfg);
    }
    expanded
}

/// Routes every virtual edge incident to `v` whose other endpoint is
/// placed.
fn route_incident(problem: &Problem<'_>, sched: &mut Schedule, v: usize, cfg: &SchedulerConfig) {
    for (i, e) in problem.edges.iter().enumerate() {
        if e.src != v && e.dst != v {
            continue;
        }
        let (Some(src), Some(dst)) = (sched.placement[e.src], sched.placement[e.dst]) else {
            continue;
        };
        if sched.routes.contains_key(&i) {
            continue;
        }
        let values = sched.edge_values(problem);
        let src_entity = e.src;
        if let Some(path) = route(
            problem.adg,
            src,
            dst,
            |eid| {
                values.get(&eid).map_or(0, |vals| {
                    // Re-using a link that already carries this very value
                    // is free (broadcast); other values congest.
                    vals.iter().filter(|v| **v != src_entity).count() as u32
                })
            },
            cfg.congestion,
        ) {
            sched.routes.insert(i, path);
        }
    }
}

fn drop_incident_routes(problem: &Problem<'_>, sched: &mut Schedule, v: usize) {
    for (i, e) in problem.edges.iter().enumerate() {
        if e.src == v || e.dst == v {
            sched.routes.remove(&i);
        }
    }
}

/// Drops a random subset of the routes that cross links carrying more than
/// one distinct value, so they can be re-routed around the congestion.
fn ripup_congested(problem: &Problem<'_>, sched: &mut Schedule, rng: &mut StdRng) {
    let values = sched.edge_values(problem);
    let congested: std::collections::BTreeSet<_> = values
        .iter()
        .filter(|(_, vals)| vals.len() > 1)
        .map(|(eid, _)| *eid)
        .collect();
    if congested.is_empty() {
        return;
    }
    // Deterministic order: HashMap iteration order must not leak into the
    // RNG-coupled selection.
    let mut crossing: Vec<usize> = sched
        .routes
        .iter()
        .filter(|(_, path)| path.iter().any(|eid| congested.contains(eid)))
        .map(|(i, _)| *i)
        .collect();
    crossing.sort_unstable();
    for i in crossing {
        if rng.gen_bool(0.5) {
            sched.routes.remove(&i);
        }
    }
}

/// Routes every edge whose endpoints are placed but which has no route yet.
fn route_missing(problem: &Problem<'_>, sched: &mut Schedule, cfg: &SchedulerConfig) {
    for (i, e) in problem.edges.iter().enumerate() {
        if sched.routes.contains_key(&i) {
            continue;
        }
        let (Some(src), Some(dst)) = (sched.placement[e.src], sched.placement[e.dst]) else {
            continue;
        };
        let values = sched.edge_values(problem);
        let src_entity = e.src;
        if let Some(path) = route(
            problem.adg,
            src,
            dst,
            |eid| {
                values.get(&eid).map_or(0, |vals| {
                    vals.iter().filter(|v| **v != src_entity).count() as u32
                })
            },
            cfg.congestion,
        ) {
            sched.routes.insert(i, path);
        }
    }
}

/// Chooses 1–3 victims, preferring entities implicated in violations:
/// unrouted edges, overused PEs, or unplaced neighbors.
fn pick_victims(problem: &Problem<'_>, sched: &Schedule, rng: &mut StdRng) -> Vec<usize> {
    let n = problem.entities.len();
    if n == 0 {
        return Vec::new();
    }
    let mut pool: Vec<usize> = Vec::new();
    // Entities on overused PEs.
    let mut pe_counts: std::collections::BTreeMap<_, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, p) in sched.placement.iter().enumerate() {
        if let Some(node) = p {
            pe_counts.entry(*node).or_default().push(i);
        }
    }
    for (node, ents) in &pe_counts {
        let slots = match problem.adg.kind(*node) {
            Ok(dsagen_adg::NodeKind::Pe(pe)) => pe.sharing.instruction_slots() as usize,
            Ok(dsagen_adg::NodeKind::Sync(_)) => 1,
            _ => usize::MAX,
        };
        if ents.len() > slots {
            pool.extend_from_slice(ents);
        }
    }
    // Entities with unrouted edges.
    for (i, e) in problem.edges.iter().enumerate() {
        if !sched.routes.contains_key(&i)
            && sched.placement[e.src].is_some()
            && sched.placement[e.dst].is_some()
        {
            pool.push(e.src);
            pool.push(e.dst);
        }
    }
    // Entities whose routes cross congested links (more than one distinct
    // value on a physical link).
    let values = sched.edge_values(problem);
    let congested: std::collections::BTreeSet<_> = values
        .iter()
        .filter(|(_, vals)| vals.len() > 1)
        .map(|(eid, _)| *eid)
        .collect();
    if !congested.is_empty() {
        for (i, path) in &sched.routes {
            if path.iter().any(|eid| congested.contains(eid)) {
                if let Some(e) = problem.edges.get(*i) {
                    pool.push(e.src);
                    pool.push(e.dst);
                }
            }
        }
    }
    // Unplaced entities always need attention.
    pool.extend((0..n).filter(|i| sched.placement[*i].is_none()));
    // HashMap-sourced segments above make pool order run-dependent; sort so
    // the seeded RNG yields reproducible schedules.
    pool.sort_unstable();

    let count = rng.gen_range(1..=3usize.min(n));
    let mut victims = Vec::with_capacity(count);
    for _ in 0..count {
        let v = if !pool.is_empty() && rng.gen_bool(0.8) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            rng.gen_range(0..n)
        };
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    victims
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };

    use super::*;
    use crate::EntityKind;

    fn dot_kernel(n: u64) -> dsagen_dfg::Kernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, n, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, n, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(n), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        k.build().unwrap()
    }

    #[test]
    fn dot_schedules_legally_on_softbrain() {
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(1024),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap();
        let result = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(result.is_legal(), "eval: {:?}", result.eval);
        assert!(result.eval.hops > 0);
    }

    #[test]
    fn unrolled_dot_schedules_on_softbrain() {
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(1024),
            &TransformConfig {
                unroll: 4,
                ..TransformConfig::fallback()
            },
            &adg.features(),
        )
        .unwrap();
        let result = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(result.is_legal(), "eval: {:?}", result.eval);
    }

    #[test]
    fn deterministic_given_seed() {
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(256),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap();
        let cfg = SchedulerConfig::default();
        let a = schedule(&adg, &ck, &cfg);
        let b = schedule(&adg, &ck, &cfg);
        assert_eq!(a.schedule.placement, b.schedule.placement);
        assert_eq!(a.eval.objective, b.eval.objective);
    }

    #[test]
    fn repair_reuses_surviving_placements() {
        let mut adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(256),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap();
        let cfg = SchedulerConfig::default();
        let first = schedule(&adg, &ck, &cfg);
        assert!(first.is_legal());

        // Delete one PE that hosts an instruction.
        let problem = Problem::new(&adg, &ck);
        let victim = problem
            .entities
            .iter()
            .enumerate()
            .find_map(|(i, e)| match e.kind {
                EntityKind::Op { .. } => first.schedule.placement[i],
                _ => None,
            })
            .expect("some op is placed");
        adg.remove_node(victim).unwrap();

        let repaired = repair(&adg, &ck, first.schedule.clone(), &cfg);
        assert!(repaired.is_legal(), "eval: {:?}", repaired.eval);
        // Nothing is placed on the deleted node.
        assert!(repaired
            .schedule
            .placement
            .iter()
            .all(|p| *p != Some(victim)));
    }

    #[test]
    fn repair_of_unchanged_adg_is_cheap() {
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(256),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap();
        let cfg = SchedulerConfig::default();
        let first = schedule(&adg, &ck, &cfg);
        let repaired = repair(&adg, &ck, first.schedule.clone(), &cfg);
        assert!(repaired.is_legal());
        assert!(repaired.eval.objective <= first.eval.objective + 1e-9);
    }

    /// Schedules the dot kernel on softbrain and returns everything needed
    /// by the fault-repair tests.
    fn scheduled_softbrain() -> (dsagen_adg::Adg, dsagen_dfg::CompiledKernel, ScheduleResult) {
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &dot_kernel(256),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap();
        let first = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(first.is_legal());
        (adg, ck, first)
    }

    /// How many placements two schedules share (same entity on same node).
    fn shared_placements(a: &Schedule, b: &Schedule) -> usize {
        a.placement
            .iter()
            .zip(&b.placement)
            .filter(|(x, y)| x.is_some() && x == y)
            .count()
    }

    #[test]
    fn repair_reroutes_around_severed_link() {
        use dsagen_faults::{inject, FaultKind, FaultPlan};
        let (adg, ck, first) = scheduled_softbrain();
        // Find a fault seed that severs a link the schedule actually uses.
        let (degraded, severed) = (0..256)
            .find_map(|seed| {
                let (d, report) = inject(&adg, &FaultPlan::new(seed).with(FaultKind::SeveredLink));
                let hit = report.faulted_edges().first().copied()?;
                first
                    .schedule
                    .routes
                    .values()
                    .any(|path| path.contains(&hit))
                    .then_some((d, hit))
            })
            .expect("some seed severs a used link");

        // Repair runs with a repair-sized budget (§V-A: far cheaper than
        // re-mapping from scratch); a long improvement run would
        // legitimately migrate placements for a better objective.
        let cfg = SchedulerConfig {
            max_iters: 20,
            patience: 5,
            ..SchedulerConfig::default()
        };
        let repaired = repair(&degraded, &ck, first.schedule.clone(), &cfg);
        assert!(repaired.is_legal(), "eval: {:?}", repaired.eval);
        let RepairOutcome::Degraded { dropped, rerouted } = repaired.outcome else {
            panic!("severing a used link must degrade: {:?}", repaired.outcome);
        };
        assert_eq!(dropped, 0, "a severed link drops no placements");
        assert!(rerouted >= 1);
        // No surviving route references the severed edge.
        assert!(repaired
            .schedule
            .routes
            .values()
            .all(|path| !path.contains(&severed)));
        // At least half the surviving placements are reused untouched
        // (§V-A: repair preserves the unaffected part of the schedule; the
        // improvement loop may legitimately move a few for a better
        // objective). A severed link drops no placements, so every
        // original placement survives the fault.
        let surviving = first.schedule.placement.iter().flatten().count();
        let kept = shared_placements(&first.schedule, &repaired.schedule);
        assert!(
            kept * 2 >= surviving,
            "kept {kept} of {surviving} surviving placements"
        );
        // Same fault seed → identical degraded hardware → identical
        // scheduler outcome (end-to-end determinism of the fault pipeline).
        let again = repair(&degraded, &ck, first.schedule.clone(), &cfg);
        assert_eq!(repaired.schedule.placement, again.schedule.placement);
        assert_eq!(repaired.eval.objective, again.eval.objective);
        assert_eq!(repaired.outcome, again.outcome);
    }

    #[test]
    fn repair_after_dead_pe_fault_reuses_surviving_placements() {
        use dsagen_faults::{inject, FaultKind, FaultPlan};
        let (adg, ck, first) = scheduled_softbrain();
        // Find a fault seed that kills a PE the schedule actually uses.
        let (degraded, dead) = (0..256)
            .find_map(|seed| {
                let (d, report) = inject(&adg, &FaultPlan::new(seed).with(FaultKind::DeadPe));
                let hit = report.faulted_nodes().first().copied()?;
                first
                    .schedule
                    .placement
                    .contains(&Some(hit))
                    .then_some((d, hit))
            })
            .expect("some seed kills a used PE");

        let cfg = SchedulerConfig {
            max_iters: 20,
            patience: 5,
            ..SchedulerConfig::default()
        };
        let repaired = repair(&degraded, &ck, first.schedule.clone(), &cfg);
        assert!(repaired.is_legal(), "eval: {:?}", repaired.eval);
        assert!(repaired.outcome.is_degraded());
        assert!(repaired.schedule.placement.iter().all(|p| *p != Some(dead)));
        // ≥ half the placements that survived the fault are reused.
        let placed = first.schedule.placement.iter().flatten().count();
        let on_dead = first
            .schedule
            .placement
            .iter()
            .filter(|p| **p == Some(dead))
            .count();
        let surviving = placed - on_dead;
        let kept = shared_placements(&first.schedule, &repaired.schedule);
        assert!(
            kept * 2 >= surviving,
            "kept {kept} of {surviving} surviving placements"
        );
    }

    #[test]
    fn repair_drops_routes_forbidden_by_stuck_switch() {
        use dsagen_faults::{inject, FaultKind, FaultPlan};
        let (adg, ck, first) = scheduled_softbrain();
        for seed in 0..8 {
            let (degraded, report) =
                inject(&adg, &FaultPlan::new(seed).with(FaultKind::StuckSwitch));
            if !report.any_applied() {
                continue;
            }
            let repaired =
                repair(&degraded, &ck, first.schedule.clone(), &SchedulerConfig::default());
            // Whatever the outcome, every surviving route must be legal
            // under the stuck routing matrix.
            for (idx, path) in &repaired.schedule.routes {
                let src = repaired.schedule.placement
                    [Problem::new(&degraded, &ck).edges[*idx].src]
                    .expect("routed edges have placed endpoints");
                assert!(
                    crate::route::path_legal(&degraded, src, path),
                    "seed {seed}: route {idx} takes a forbidden turn"
                );
            }
        }
    }

    #[test]
    fn escalation_recovers_when_base_budget_is_tiny() {
        use dsagen_faults::{inject, FaultKind, FaultPlan};
        let (adg, ck, first) = scheduled_softbrain();
        let (degraded, _) = inject(&adg, &FaultPlan::new(1).with(FaultKind::DeadPe));
        let tiny = SchedulerConfig {
            max_iters: 2,
            patience: 1,
            ..SchedulerConfig::default()
        };
        let result = repair_with_escalation(&degraded, &ck, &first.schedule, &tiny, 6);
        assert!(result.is_legal(), "eval: {:?}", result.eval);
    }

    #[test]
    fn escalation_never_panics_and_returns_best_on_hopeless_problems() {
        // Kill every PE's ability to host the kernel by using an ADG with
        // no PEs left that we can reach legally: escalation must return an
        // illegal-but-evaluated result instead of panicking.
        let (adg, ck, first) = scheduled_softbrain();
        let mut gutted = adg.clone();
        let pes: Vec<_> = gutted.pes().collect();
        for pe in pes {
            // Rollback-free removal: skip any PE whose removal invalidates
            // the graph (mirrors what inject() would refuse to do).
            let mut scratch = gutted.clone();
            if scratch.remove_node(pe).is_ok() && scratch.validate().is_ok() {
                gutted = scratch;
            }
        }
        let cfg = SchedulerConfig {
            max_iters: 4,
            ..SchedulerConfig::default()
        };
        let result = repair_with_escalation(&gutted, &ck, &first.schedule, &cfg, 3);
        if gutted.pes().count() == 0 {
            assert!(!result.is_legal());
            assert!(result.eval.unplaced > 0);
        }
    }

    #[test]
    fn infeasible_stream_join_on_softbrain_stays_unplaced() {
        // A stream-join version must not become "legal" on hardware with no
        // stream-join PEs.
        let mut k = KernelBuilder::new("join");
        let k0 = k.array("k0", BitWidth::B64, 64, MemClass::MainMemory);
        let k1 = k.array("k1", BitWidth::B64, 64, MemClass::MainMemory);
        let out = k.array("out", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("j", 1.0);
        let j = r.join_loop(
            dsagen_dfg::JoinSide {
                key: k0,
                payloads: vec![],
                len: 64,
            },
            dsagen_dfg::JoinSide {
                key: k1,
                payloads: vec![],
                len: 64,
            },
            0.5,
        );
        let a = r.load(k0, AffineExpr::var(j));
        let b = r.load(k1, AffineExpr::var(j));
        let p = r.bin(Opcode::Mul, a, b);
        let acc = r.reduce(Opcode::Add, p, j);
        r.store(out, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let adg = presets::softbrain();
        let ck = compile_kernel(
            &kernel,
            &TransformConfig {
                stream_join: true,
                ..TransformConfig::fallback()
            },
            &adg.features(),
        )
        .unwrap();
        let result = schedule(&adg, &ck, &SchedulerConfig { max_iters: 40, ..Default::default() });
        assert!(!result.is_legal());
        assert!(result.eval.unplaced > 0);
    }

    #[test]
    fn two_concurrent_regions_schedule() {
        // Producer-consumer kernel: both regions share the fabric.
        let mut k = KernelBuilder::new("pc");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 64, MemClass::MainMemory);
        let d = k.array("d", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r0 = k.region("produce", 1.0);
        let _o = r0.for_loop(TripCount::fixed(8), false);
        let j0 = r0.for_loop(TripCount::fixed(64), true);
        let va = r0.load(a, AffineExpr::var(j0));
        let acc = r0.reduce(Opcode::Add, va, j0);
        r0.yield_value(acc);
        let r0i = k.finish_region(r0);
        let mut r1 = k.region("consume", 1.0);
        let _o1 = r1.for_loop(TripCount::fixed(8), false);
        let j1 = r1.for_loop(TripCount::fixed(64), true);
        let v = r1.consume(r0i, 0);
        let vb = r1.load(b, AffineExpr::var(j1));
        let p = r1.bin(Opcode::Mul, v, vb);
        r1.store(d, AffineExpr::var(j1), p);
        k.finish_region(r1);
        let kernel = k.build().unwrap();

        let adg = presets::softbrain();
        let ck = compile_kernel(
            &kernel,
            &TransformConfig {
                forward: true,
                ..TransformConfig::fallback()
            },
            &adg.features(),
        )
        .unwrap();
        let result = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(result.is_legal(), "eval: {:?}", result.eval);
        assert_eq!(result.eval.regions.len(), 2);
    }
}
