//! Stochastic spatial scheduler with schedule repair for DSAGEN.
//!
//! The scheduler has the three responsibilities of §IV-C: it (1) maps
//! instructions and memory streams onto hardware units, (2) routes
//! dependences onto the on-chip network with congestion-aware Dijkstra
//! search, and (3) matches operand-arrival timing for statically-scheduled
//! components via delay-element budgets.
//!
//! The search is Algorithm 1: each iteration unmaps a few entities (biased
//! toward those involved in violations), re-places each by trying sampled
//! candidates and committing the one with the best overall objective, and
//! stops once the schedule is violation-free and the objective has been
//! stable. Resources may be transiently overutilized; the weighted
//! objective ([`Weights`]) prices overuse, maximum initiation interval, and
//! recurrence-path latency in the paper's priority order.
//!
//! [`repair`] implements the §V-A *repairing scheduler* for design-space
//! exploration: placements referencing deleted hardware are dropped, the
//! remainder is kept, and the same iteration loop finishes the job — far
//! cheaper than re-mapping from scratch when the ADG changed incrementally.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mask;
mod objective;
mod problem;
mod route;
mod schedule;
#[allow(clippy::module_inception)]
mod scheduler;

pub use mask::{repair_with_mask, repair_with_mask_scoped, CapabilityMask, MaskError};
pub use objective::{evaluate, Evaluation, RegionEval, Weights, MEM_ROUNDTRIP};
pub use problem::{op_rates, Entity, EntityKind, Problem, VirtEdge};
pub use route::{delay_capacity, path_legal, route};
pub use schedule::Schedule;
pub use scheduler::{
    repair, repair_instrumented, repair_regions, repair_regions_with_escalation,
    repair_with_escalation, repair_with_escalation_instrumented, schedule, schedule_instrumented,
    RepairOutcome, ScheduleResult, SchedulerConfig,
};
