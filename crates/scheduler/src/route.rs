//! Congestion-aware Dijkstra routing over the ADG network (§IV-C:
//! "route this instruction's operands and dependences to the network using
//! Dijkstra's algorithm").
//!
//! The search runs over *edges* rather than nodes so that each switch's
//! routing-connectivity matrix (§III-A: "describes which inputs can connect
//! to which outputs") can be honored per traversal.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dsagen_adg::{Adg, EdgeId, NodeId, NodeKind, Scheduling};

/// Maximum hops a single route may take (guards against degenerate paths).
const MAX_HOPS: usize = 64;

/// A candidate in the Dijkstra frontier: the last edge taken.
#[derive(Debug, PartialEq)]
struct Frontier {
    cost: f64,
    edge: EdgeId,
    hops: usize,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.edge.index().cmp(&other.edge.index()))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether a node may appear in the *interior* of a route. Values travel
/// through switches, delay FIFOs, and sync elements; PEs, memories, and the
/// control core terminate routes.
fn passable(kind: &NodeKind) -> bool {
    matches!(
        kind,
        NodeKind::Switch(_) | NodeKind::Delay(_) | NodeKind::Sync(_)
    )
}

/// Whether a value may traverse the hop `u → v` under the execution-model
/// composition rules (§III-B): dynamically-timed outputs may not feed
/// elements requiring static timing, except through sync elements.
fn hop_legal(adg: &Adg, u: NodeId, v: NodeId) -> bool {
    let (Ok(su), Ok(sv)) = (adg.kind(u), adg.kind(v)) else {
        return false;
    };
    match (su.output_timing(), sv.input_tolerance()) {
        (Scheduling::Dynamic, Scheduling::Static) => matches!(su, NodeKind::Sync(_)),
        _ => true,
    }
}

/// Whether continuing from incoming edge `e_in` to outgoing edge `e_out`
/// through their shared node is permitted by that node's routing matrix
/// (switches only; other passables route freely).
fn turn_legal(adg: &Adg, e_in: EdgeId, e_out: EdgeId) -> bool {
    let Some(edge_in) = adg.edge(e_in) else {
        return false;
    };
    match adg.kind(edge_in.dst) {
        Ok(NodeKind::Switch(sw)) => {
            let (Some(ip), Some(op)) = (adg.input_port_of(e_in), adg.output_port_of(e_out))
            else {
                return false;
            };
            sw.routing.allows(ip, op)
        }
        _ => true,
    }
}

/// Whether `path` is still a legal route starting at `src` under the
/// current ADG: the edges chain head-to-tail, interior nodes are passable,
/// every hop obeys the §III-B timing rules, and every switch's routing
/// matrix permits the turn taken through it.
///
/// Schedule repair uses this after fault injection: a stuck switch does
/// not *remove* any edge, but it can forbid the turn an existing route
/// took, so route validity must be re-checked semantically, not just
/// structurally.
#[must_use]
pub fn path_legal(adg: &Adg, src: NodeId, path: &[EdgeId]) -> bool {
    let mut cur = src;
    let mut prev: Option<EdgeId> = None;
    for (i, &eid) in path.iter().enumerate() {
        let Some(e) = adg.edge(eid) else {
            return false;
        };
        if e.src != cur || !hop_legal(adg, e.src, e.dst) {
            return false;
        }
        if let Some(p) = prev {
            if !turn_legal(adg, p, eid) {
                return false;
            }
        }
        // Interior nodes must be passable (the final dst is the route's
        // terminal and may be a PE or memory).
        if i + 1 < path.len() {
            match adg.kind(e.dst) {
                Ok(kind) if passable(kind) => {}
                _ => return false,
            }
        }
        cur = e.dst;
        prev = Some(eid);
    }
    true
}

/// Finds the cheapest legal route from `from` to `to`.
///
/// Edge cost is `1 + congestion_weight · usage(edge)`, so already-busy
/// links are avoided but never forbidden — the scheduler tolerates
/// overutilization during search and prices it in the objective (§IV-C).
/// Routes honor switch routing matrices and the §III-B timing rules.
///
/// Returns the route as a sequence of ADG edge ids, or `None` when no legal
/// path exists. A route between co-located entities is the empty sequence.
#[must_use]
pub fn route(
    adg: &Adg,
    from: NodeId,
    to: NodeId,
    usage: impl Fn(EdgeId) -> u32,
    congestion_weight: f64,
) -> Option<Vec<EdgeId>> {
    if from == to {
        return Some(Vec::new());
    }
    // Dense edge-indexed state.
    let slots = adg.edges().map(|e| e.id().index()).max().map_or(0, |m| m + 1);
    let mut dist = vec![f64::INFINITY; slots];
    let mut pred: Vec<Option<EdgeId>> = vec![None; slots];
    let mut hops_of = vec![0usize; slots];
    let mut heap = BinaryHeap::new();
    let mut best_final: Option<(f64, EdgeId)> = None;

    let step_cost =
        |eid: EdgeId| 1.0 + congestion_weight * f64::from(usage(eid));

    // Seed: every legal first hop out of `from`.
    for edge in adg.out_edges(from) {
        let next = edge.dst;
        if next != to {
            let Ok(kind) = adg.kind(next) else { continue };
            if !passable(kind) {
                continue;
            }
        }
        if !hop_legal(adg, from, next) {
            continue;
        }
        let c = step_cost(edge.id());
        if c < dist[edge.id().index()] {
            dist[edge.id().index()] = c;
            hops_of[edge.id().index()] = 1;
            heap.push(Frontier {
                cost: c,
                edge: edge.id(),
                hops: 1,
            });
        }
    }

    while let Some(Frontier { cost, edge, hops }) = heap.pop() {
        if cost > dist[edge.index()] || hops >= MAX_HOPS {
            continue;
        }
        let Some(cur) = adg.edge(edge) else { continue };
        if cur.dst == to {
            if best_final.is_none_or(|(bc, _)| cost < bc) {
                best_final = Some((cost, edge));
            }
            continue;
        }
        for out in adg.out_edges(cur.dst) {
            let next = out.dst;
            if next != to {
                let Ok(kind) = adg.kind(next) else { continue };
                if !passable(kind) {
                    continue;
                }
            }
            if !hop_legal(adg, cur.dst, next) || !turn_legal(adg, edge, out.id()) {
                continue;
            }
            let ncost = cost + step_cost(out.id());
            if ncost < dist[out.id().index()] {
                dist[out.id().index()] = ncost;
                pred[out.id().index()] = Some(edge);
                hops_of[out.id().index()] = hops + 1;
                heap.push(Frontier {
                    cost: ncost,
                    edge: out.id(),
                    hops: hops + 1,
                });
            }
        }
    }

    let (_, last) = best_final?;
    // Walk predecessors back to the source.
    let mut path = vec![last];
    let mut cur = last;
    while let Some(p) = pred[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(adg.edge(path[0])?.src, from);
    Some(path)
}

/// Total configurable delay capacity (cycles) of the delay elements along a
/// route — the budget available for pipeline balancing (§III-B).
#[must_use]
pub fn delay_capacity(adg: &Adg, route: &[EdgeId]) -> u32 {
    route
        .iter()
        .filter_map(|e| adg.edge(*e))
        .filter_map(|e| match adg.kind(e.dst) {
            Ok(NodeKind::Delay(d)) => Some(u32::from(d.depth)),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, OpSet, PeSpec, Routing, Sharing, SwitchSpec};

    use super::*;

    #[test]
    fn routes_exist_between_ports_and_pes() {
        let adg = presets::softbrain();
        let sync = adg.syncs().next().unwrap();
        let pe = adg.pes().last().unwrap();
        let r = route(&adg, sync, pe, |_| 0, 0.5).expect("path must exist");
        assert!(!r.is_empty());
        // The route is contiguous: each edge's src is the previous dst.
        let mut cur = sync;
        for eid in &r {
            let e = adg.edge(*eid).unwrap();
            assert_eq!(e.src, cur);
            cur = e.dst;
        }
        assert_eq!(cur, pe);
    }

    #[test]
    fn same_node_route_is_empty() {
        let adg = presets::softbrain();
        let pe = adg.pes().next().unwrap();
        assert_eq!(route(&adg, pe, pe, |_| 0, 0.5), Some(Vec::new()));
    }

    #[test]
    fn congestion_diverts_routes() {
        let adg = presets::softbrain();
        let sync = adg.syncs().next().unwrap();
        let pe = adg.pes().nth(5).unwrap();
        let base = route(&adg, sync, pe, |_| 0, 0.5).unwrap();
        // Make the first route's edges expensive; a different route should
        // appear (or at least not be *more* expensive in base terms).
        let busy: std::collections::HashSet<_> = base.iter().copied().collect();
        let alt = route(&adg, sync, pe, |e| if busy.contains(&e) { 10 } else { 0 }, 1.0).unwrap();
        assert_ne!(base, alt);
    }

    #[test]
    fn no_route_through_pes() {
        let adg = presets::softbrain();
        // Any route's interior nodes must be switches/delays/syncs.
        let syncs: Vec<_> = adg.syncs().collect();
        let r = route(&adg, syncs[0], syncs[syncs.len() - 1], |_| 0, 0.5);
        if let Some(r) = r {
            for eid in &r[..r.len().saturating_sub(1)] {
                let e = adg.edge(*eid).unwrap();
                let kind = adg.kind(e.dst).unwrap();
                assert!(passable(kind), "route passes through {}", e.dst);
            }
        }
    }

    #[test]
    fn dynamic_to_static_requires_sync_on_revel() {
        let adg = presets::revel();
        // A dynamic PE (rows 2–3) routing to a static PE (rows 0–1) must
        // pass through a bridge sync element.
        let dyn_pe = adg
            .nodes()
            .find(|n| n.label.as_deref() == Some("pe3_0"))
            .unwrap()
            .id();
        let static_pe = adg
            .nodes()
            .find(|n| n.label.as_deref() == Some("pe0_0"))
            .unwrap()
            .id();
        if let Some(r) = route(&adg, dyn_pe, static_pe, |_| 0, 0.5) {
            let through_sync = r.iter().any(|eid| {
                let e = adg.edge(*eid).unwrap();
                matches!(adg.kind(e.dst), Ok(NodeKind::Sync(_)))
            });
            assert!(through_sync, "dynamic→static route must cross a sync");
        }
    }

    #[test]
    fn delay_capacity_counts_delay_nodes() {
        let adg = presets::softbrain();
        // Softbrain PEs have delay FIFOs on their inputs; a route ending at
        // a PE passes one.
        let sync = adg.syncs().next().unwrap();
        let pe = adg.pes().next().unwrap();
        let r = route(&adg, sync, pe, |_| 0, 0.5).unwrap();
        assert!(delay_capacity(&adg, &r) > 0);
    }

    /// A three-node chain `src_pe → switch → {a, b}` where the switch's
    /// routing matrix only allows its first input to reach output 0.
    fn matrix_fixture(allow_second_output: bool) -> (dsagen_adg::Adg, NodeId, NodeId, NodeId) {
        let mut adg = dsagen_adg::Adg::new("matrix");
        let pe_spec = PeSpec::new(
            dsagen_adg::Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        );
        let src = adg.add_pe(pe_spec.clone());
        let matrix = Routing::Matrix(vec![vec![true, allow_second_output]]);
        let sw = adg.add_switch(SwitchSpec::new(BitWidth::B64).with_routing(matrix));
        let a = adg.add_pe(pe_spec.clone());
        let b = adg.add_pe(pe_spec);
        adg.add_link(src, sw).unwrap();
        adg.add_link(sw, a).unwrap(); // output port 0
        adg.add_link(sw, b).unwrap(); // output port 1
        (adg, src, a, b)
    }

    #[test]
    fn routing_matrix_permits_allowed_turn() {
        let (adg, src, a, _) = matrix_fixture(false);
        assert!(route(&adg, src, a, |_| 0, 0.5).is_some());
    }

    #[test]
    fn routing_matrix_blocks_forbidden_turn() {
        let (adg, src, _, b) = matrix_fixture(false);
        assert_eq!(route(&adg, src, b, |_| 0, 0.5), None);
        // With the matrix opened up, the same turn routes.
        let (adg, src, _, b) = matrix_fixture(true);
        assert!(route(&adg, src, b, |_| 0, 0.5).is_some());
    }
}
