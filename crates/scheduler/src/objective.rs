//! Schedule evaluation: the weighted objective of §IV-C.
//!
//! "The objective is formulated as a weighted function which prioritizes
//! minimizing: 1. overutilization of PEs and network, 2. maximum initiation
//! interval of dedicated PEs, 3. latency of any recurrence paths."

use std::collections::BTreeMap;

use dsagen_adg::{NodeId, NodeKind, Opcode, Scheduling};
use dsagen_dfg::DfgOp;

use crate::route::delay_capacity;
use crate::{EntityKind, Problem, Schedule};

/// Extra cycles modeling a memory round trip, used for recurrences that
/// cycle through a memory (read-modify-write hazards).
pub const MEM_ROUNDTRIP: f64 = 16.0;

/// Objective weights, ordered by the paper's priorities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Per unplaced entity.
    pub unplaced: f64,
    /// Per unrouted dependence (both endpoints placed).
    pub unrouted: f64,
    /// Per unit of resource overutilization (PE slots, network links, sync
    /// ports, memory stream slots, missing lanes).
    pub overuse: f64,
    /// Per unit of maximum initiation interval beyond 1.
    pub ii: f64,
    /// Per cycle of unabsorbed operand-arrival mismatch at static PEs.
    pub mismatch: f64,
    /// Per cycle of recurrence-path latency.
    pub recurrence: f64,
    /// Per port whose stream has no compatible adjacent memory.
    pub mem_missing: f64,
    /// Per network hop (tie-breaker toward short routes).
    pub hops: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            unplaced: 2000.0,
            unrouted: 1500.0,
            overuse: 1000.0,
            ii: 10.0,
            mismatch: 3.0,
            recurrence: 1.0,
            mem_missing: 500.0,
            hops: 0.05,
        }
    }
}

/// Per-region timing facts the performance model consumes (§V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEval {
    /// Maximum initiation interval across the PEs hosting this region's
    /// instructions (1.0 = fully pipelined).
    pub max_ii: f64,
    /// Unabsorbed operand-arrival mismatch (cycles); throughput loss is
    /// proportional to this imbalance (§III-B, [64]).
    pub mismatch_excess: f64,
    /// Longest input-port → output-port path in cycles.
    pub crit_path: f64,
    /// Latency of each recorded recurrence, in `dfg.recurrences()` order.
    pub recurrence_latencies: Vec<f64>,
}

/// The result of evaluating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Weighted objective (lower is better; 0-overuse schedules are legal).
    pub objective: f64,
    /// Entities without a placement.
    pub unplaced: usize,
    /// Dependences without a route (both endpoints placed).
    pub unrouted: usize,
    /// Total resource overutilization.
    pub overuse: f64,
    /// Ports lacking a compatible adjacent memory.
    pub mem_missing: usize,
    /// Largest PE initiation interval.
    pub max_ii: f64,
    /// Total unabsorbed mismatch.
    pub mismatch: f64,
    /// Total network hops.
    pub hops: usize,
    /// Per-region timing facts.
    pub regions: Vec<RegionEval>,
    /// Arrival time (cycles from region start) per entity.
    pub arrivals: Vec<f64>,
    /// Raw operand-arrival spread per entity (before delay-element
    /// absorption) — the balancing delay the hardware generator programs
    /// into static PEs (§VI "execution timing").
    pub operand_spread: Vec<f64>,
    /// Whether the schedule is complete and violation-free.
    pub feasible: bool,
}

/// Evaluates `schedule` against `problem`.
#[must_use]
pub fn evaluate(problem: &Problem<'_>, schedule: &Schedule, weights: &Weights) -> Evaluation {
    let adg = problem.adg;
    let unplaced = schedule.placement.iter().filter(|p| p.is_none()).count();

    // ------------------------------------------------ resource accounting
    let mut pe_count: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut pe_rate: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut sync_groups: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut lane_deficit = 0.0f64;
    let mut mem_missing = 0usize;

    for (i, entity) in problem.entities.iter().enumerate() {
        let Some(node) = schedule.placement[i] else {
            continue;
        };
        match entity.kind {
            EntityKind::Op { .. } => {
                *pe_count.entry(node).or_insert(0) += 1;
                *pe_rate.entry(node).or_insert(0.0) += entity.rate;
            }
            EntityKind::InPort { .. } | EntityKind::OutPort { .. } => {
                *sync_groups.entry(node).or_insert(0) += 1;
                if let Ok(NodeKind::Sync(sy)) = adg.kind(node) {
                    lane_deficit += f64::from(entity.lanes.saturating_sub(u16::from(sy.lanes)));
                }
                if entity.needs_memory {
                    let adjacent_ok = match entity.kind {
                        EntityKind::InPort { .. } => adg
                            .in_edges(node)
                            .any(|e| memory_ok(adg, e.src, entity)),
                        EntityKind::OutPort { .. } => adg
                            .out_edges(node)
                            .any(|e| memory_ok(adg, e.dst, entity)),
                        EntityKind::Op { .. } => unreachable!(),
                    };
                    if !adjacent_ok {
                        mem_missing += 1;
                    }
                }
            }
        }
    }

    let mut overuse = 0.0f64;
    let mut max_ii = 1.0f64;
    for (node, count) in &pe_count {
        if let Ok(NodeKind::Pe(pe)) = adg.kind(*node) {
            let slots = pe.sharing.instruction_slots();
            overuse += f64::from(count.saturating_sub(slots));
            let load = pe_rate.get(node).copied().unwrap_or(0.0);
            // Dedicated PEs serialize everything mapped to them; shared PEs
            // multiplex up to their slot count at rate cost.
            max_ii = max_ii.max(load);
        }
    }
    for count in sync_groups.values() {
        overuse += f64::from(count.saturating_sub(1));
    }
    overuse += lane_deficit;

    // Memory stream-slot pressure.
    let stream_mems = schedule.stream_memories(problem);
    let mut mem_streams: BTreeMap<NodeId, u32> = BTreeMap::new();
    for mem in stream_mems.values() {
        *mem_streams.entry(*mem).or_insert(0) += 1;
    }
    for (mem, count) in &mem_streams {
        if let Ok(NodeKind::Memory(spec)) = adg.kind(*mem) {
            overuse += f64::from(count.saturating_sub(u32::from(spec.num_streams)));
        }
    }

    // ------------------------------------------------------------- routes
    let mut unrouted = 0usize;
    let mut hops = 0usize;
    for (i, vedge) in problem.edges.iter().enumerate() {
        let placed = schedule.placement[vedge.src].is_some()
            && schedule.placement[vedge.dst].is_some();
        match schedule.routes.get(&i) {
            Some(path) => hops += path.len(),
            None if placed => unrouted += 1,
            None => {}
        }
    }
    // Network overutilization counts distinct *values* per link: fan-out of
    // one value over one physical link is a broadcast, not contention.
    for (_, values) in schedule.edge_values(problem) {
        overuse += (values.len().saturating_sub(1)) as f64;
    }

    // ------------------------------------------------------------- timing
    let (arrivals, mismatch_by_entity, spread_by_entity) = compute_timing(problem, schedule);
    let mismatch: f64 = mismatch_by_entity.iter().sum();

    // ------------------------------------------------------- region facts
    let mut regions = Vec::with_capacity(problem.kernel.regions.len());
    for (ri, region) in problem.kernel.regions.iter().enumerate() {
        let mut region_ii = 1.0f64;
        let mut region_mismatch = 0.0f64;
        let mut crit = 0.0f64;
        for (i, entity) in problem.entities.iter().enumerate() {
            let in_region = match entity.kind {
                EntityKind::Op { region, .. }
                | EntityKind::InPort { region, .. }
                | EntityKind::OutPort { region, .. } => region == ri,
            };
            if !in_region {
                continue;
            }
            if let EntityKind::Op { .. } = entity.kind {
                if let Some(node) = schedule.placement[i] {
                    region_ii = region_ii.max(pe_rate.get(&node).copied().unwrap_or(0.0));
                }
                region_mismatch += mismatch_by_entity[i];
            }
            crit = crit.max(arrivals[i]);
        }
        let recurrence_latencies = region
            .dfg
            .recurrences()
            .iter()
            .map(|rec| match region.dfg.op(rec.through) {
                // Local accumulator: self-loop on the hosting PE.
                DfgOp::Accum { op, .. } => f64::from(op.latency()),
                // Anything else cycles through memory.
                _ => crit + MEM_ROUNDTRIP,
            })
            .collect();
        regions.push(RegionEval {
            max_ii: region_ii,
            mismatch_excess: region_mismatch,
            crit_path: crit,
            recurrence_latencies,
        });
    }

    let total_rec: f64 = regions
        .iter()
        .flat_map(|r| r.recurrence_latencies.iter())
        .sum();

    let feasible = unplaced == 0 && unrouted == 0 && overuse == 0.0 && mem_missing == 0;
    let objective = weights.unplaced * unplaced as f64
        + weights.unrouted * unrouted as f64
        + weights.overuse * overuse
        + weights.ii * (max_ii - 1.0).max(0.0)
        + weights.mismatch * mismatch
        + weights.recurrence * total_rec
        + weights.mem_missing * mem_missing as f64
        + weights.hops * hops as f64;

    Evaluation {
        objective,
        unplaced,
        unrouted,
        overuse,
        mem_missing,
        max_ii,
        mismatch,
        hops,
        regions,
        arrivals,
        operand_spread: spread_by_entity,
        feasible,
    }
}

fn memory_ok(adg: &dsagen_adg::Adg, node: NodeId, entity: &crate::Entity) -> bool {
    match adg.kind(node) {
        Ok(NodeKind::Memory(spec)) => {
            let class_ok = match entity.mem_class {
                Some(dsagen_dfg::MemClass::MainMemory) => {
                    spec.kind == dsagen_adg::MemKind::MainMemory
                }
                Some(dsagen_dfg::MemClass::Scratchpad) => {
                    spec.kind == dsagen_adg::MemKind::Scratchpad
                }
                None => true,
            };
            class_ok
                && (!entity.needs_indirect || spec.controllers.indirect)
                && (!entity.needs_atomic || spec.controllers.atomic_update)
        }
        _ => false,
    }
}

/// Longest-path arrival time per entity, unabsorbed mismatch per
/// (static-PE) entity, and raw operand spread per entity. "Recompute the
/// timing (min/max time of each instruction)" — Algorithm 1.
fn compute_timing(
    problem: &Problem<'_>,
    schedule: &Schedule,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = problem.entities.len();
    let mut arrival = vec![0.0f64; n];
    let mut mismatch = vec![0.0f64; n];
    let mut spreads = vec![0.0f64; n];

    // Kahn topological order over virtual edges.
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in problem.edges.iter().enumerate() {
        indeg[e.dst] += 1;
        succ[e.src].push(i);
    }
    let mut queue: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    // Incoming arrival times per entity: (time, delay capacity).
    let mut incoming: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];

    while let Some(v) = queue.pop() {
        order.push(v);
        // Node processing: compute departure.
        let entity = &problem.entities[v];
        let (start, spread) = if incoming[v].is_empty() {
            (0.0, 0.0)
        } else {
            let max_t = incoming[v].iter().map(|(t, _)| *t).fold(0.0, f64::max);
            let min_t = incoming[v]
                .iter()
                .map(|(t, _)| *t)
                .fold(f64::INFINITY, f64::min);
            (max_t, max_t - min_t)
        };
        arrival[v] = start;
        spreads[v] = spread;
        // Mismatch only matters on statically-scheduled PEs; the spread
        // beyond the available delay capacity is unabsorbable.
        if let EntityKind::Op { .. } = entity.kind {
            if let Some(node) = schedule.placement[v] {
                if let Ok(NodeKind::Pe(pe)) = problem.adg.kind(node) {
                    if pe.scheduling == Scheduling::Static && incoming[v].len() >= 2 {
                        let capacity = incoming[v]
                            .iter()
                            .map(|(_, c)| *c)
                            .fold(0.0, f64::max);
                        mismatch[v] = (spread - capacity).max(0.0);
                    }
                }
            }
        }
        let latency = entity.opcode.map_or(1.0, |oc: Opcode| f64::from(oc.latency()));
        let departure = start + latency;

        for &ei in &succ[v] {
            let e = &problem.edges[ei];
            let (route_len, cap) = match schedule.routes.get(&ei) {
                Some(path) => (
                    path.len() as f64,
                    f64::from(delay_capacity(problem.adg, path)),
                ),
                None => (4.0, 0.0), // unrouted estimate
            };
            incoming[e.dst].push((departure + route_len, cap));
            indeg[e.dst] -= 1;
            if indeg[e.dst] == 0 {
                queue.push(e.dst);
            }
        }
    }
    (arrival, mismatch, spreads)
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };

    use super::*;

    fn fixture() -> (dsagen_adg::Adg, dsagen_dfg::CompiledKernel) {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 64, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 64, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(64), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let s = r.bin(Opcode::Mul, va, vb);
        let t = r.bin(Opcode::Add, s, vb);
        r.store(c, AffineExpr::var(i), t);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck =
            compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        (adg, ck)
    }

    #[test]
    fn empty_schedule_is_heavily_penalized() {
        let (adg, ck) = fixture();
        let p = Problem::new(&adg, &ck);
        let s = Schedule::empty(&p);
        let ev = evaluate(&p, &s, &Weights::default());
        assert!(!ev.feasible);
        assert_eq!(ev.unplaced, p.entities.len());
        assert!(ev.objective >= 2000.0 * p.entities.len() as f64);
    }

    #[test]
    fn two_ops_on_one_dedicated_pe_overuse() {
        let (adg, ck) = fixture();
        let p = Problem::new(&adg, &ck);
        let mut s = Schedule::empty(&p);
        let pe = adg.pes().next().unwrap();
        let ops: Vec<usize> = p
            .entities
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EntityKind::Op { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ops.len(), 2);
        for o in &ops {
            s.placement[*o] = Some(pe);
        }
        let ev = evaluate(&p, &s, &Weights::default());
        assert!(ev.overuse >= 1.0);
        assert!(ev.max_ii >= 2.0);
    }

    #[test]
    fn shared_pe_absorbs_two_ops_without_overuse() {
        let adg = presets::triggered(); // 16-slot shared PEs
        let (_, ck) = fixture();
        let p = Problem::new(&adg, &ck);
        let mut s = Schedule::empty(&p);
        let pe = adg.pes().next().unwrap();
        for (i, e) in p.entities.iter().enumerate() {
            if matches!(e.kind, EntityKind::Op { .. }) {
                s.placement[i] = Some(pe);
            }
        }
        let ev = evaluate(&p, &s, &Weights::default());
        assert_eq!(ev.overuse, 0.0, "shared slots should absorb both ops");
        // But the II still reflects the multiplexing.
        assert!(ev.max_ii >= 2.0);
    }

    #[test]
    fn route_congestion_counts_as_overuse() {
        let (adg, ck) = fixture();
        let p = Problem::new(&adg, &ck);
        let mut s = Schedule::empty(&p);
        let some_edge = adg.edges().next().unwrap().id();
        s.routes.insert(0, vec![some_edge]);
        s.routes.insert(1, vec![some_edge]);
        let ev = evaluate(&p, &s, &Weights::default());
        assert!(ev.overuse >= 1.0);
        assert_eq!(ev.hops, 2);
    }

    #[test]
    fn accum_recurrence_latency_is_op_latency() {
        let adg = presets::softbrain();
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(64), true);
        let va = r.load(a, AffineExpr::var(i));
        let acc = r.reduce(Opcode::FAdd, va, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        let ck =
            compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap();
        let p = Problem::new(&adg, &ck);
        let s = Schedule::empty(&p);
        let ev = evaluate(&p, &s, &Weights::default());
        assert_eq!(
            ev.regions[0].recurrence_latencies,
            vec![f64::from(Opcode::FAdd.latency())]
        );
    }
}
