//! Capability masks: quarantine damaged hardware at sub-node granularity.
//!
//! PR 5's recovery path was all-or-nothing — any permanent fault
//! decommissioned the whole victim node or link. A capability mask lets
//! repair express *"this node works except input port 2"*: masked edges,
//! ports, and nodes are removed from a scratch copy of the ADG and repair
//! runs against that, so the scheduler reroutes around exactly the damage
//! and nothing more. Masks compose the degradation ladder's structural
//! rungs (port → node) used by `dsagen_sim::recovery`:
//!
//! 1. mask the afflicted **port** only (cheap repair, everything else on
//!    the node keeps serving);
//! 2. same mask, escalated repair budget;
//! 3. decommission the whole **node** — the pre-existing fail-stop
//!    behaviour, now the *last* structural rung instead of the only one.
//!
//! A mask is data, not policy: [`CapabilityMask::apply`] either yields a
//! still-valid degraded ADG or a typed [`MaskError`], so a rung whose
//! mask would break graph validity is skipped (escalating to the next
//! rung) rather than panicking mid-recovery.

use std::collections::BTreeSet;
use std::fmt;

use dsagen_adg::{Adg, EdgeId, NodeId};

use crate::scheduler::{repair_with_escalation, ScheduleResult, SchedulerConfig};
use crate::Schedule;

/// A set of hardware capabilities to take offline, at three granularities:
/// whole nodes, whole edges, and single input ports (a `(node, port)` pair
/// — masked by removing the one edge occupying that port slot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilityMask {
    /// Edges to remove outright.
    pub edges: BTreeSet<EdgeId>,
    /// Input ports to remove, as `(owner node, input port index)`. The
    /// port index is the edge's position in the owner's input adjacency
    /// (`Adg::input_port_of`).
    pub ports: BTreeSet<(NodeId, usize)>,
    /// Nodes to decommission entirely (with all their links).
    pub nodes: BTreeSet<NodeId>,
}

/// Why a mask could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskError {
    /// A masked element does not exist (or a port index is out of range).
    Missing(String),
    /// Removing the masked elements broke graph validity — the mask is
    /// structurally infeasible on this fabric (for example masking the
    /// only config path to a live component).
    Invalid(String),
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::Missing(s) => write!(f, "masked element missing: {s}"),
            MaskError::Invalid(s) => write!(f, "mask breaks validity: {s}"),
        }
    }
}

impl std::error::Error for MaskError {}

impl CapabilityMask {
    /// An empty mask (masks nothing; `apply` is a validated clone).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Masks one edge (builder style).
    #[must_use]
    pub fn with_edge(mut self, edge: EdgeId) -> Self {
        self.edges.insert(edge);
        self
    }

    /// Masks one input port of `node` (builder style).
    #[must_use]
    pub fn with_port(mut self, node: NodeId, port: usize) -> Self {
        self.ports.insert((node, port));
        self
    }

    /// Masks a whole node (builder style).
    #[must_use]
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.nodes.insert(node);
        self
    }

    /// Whether the mask masks nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.ports.is_empty() && self.nodes.is_empty()
    }

    /// Human-readable labels for every masked capability, for
    /// `RecoveryOutcome::Degraded { masked_resources }` and telemetry.
    #[must_use]
    pub fn describe(&self, adg: &Adg) -> Vec<String> {
        let mut out = Vec::new();
        for &(node, port) in &self.ports {
            out.push(format!("port {port} of {node}"));
        }
        for &edge in &self.edges {
            match adg.edge(edge) {
                Some(e) => out.push(format!("link {} -> {}", e.src, e.dst)),
                None => out.push(format!("link {edge}")),
            }
        }
        for &node in &self.nodes {
            let label = adg
                .node(node)
                .and_then(|n| n.label.clone())
                .unwrap_or_else(|| node.to_string());
            out.push(format!("node {label}"));
        }
        out
    }

    /// Applies the mask to a scratch copy of `adg`: removes masked ports'
    /// edges, masked edges, then masked nodes, and validates the result.
    ///
    /// Errors are typed so the degradation ladder can treat an infeasible
    /// rung as "escalate", never as a panic: [`MaskError::Missing`] when a
    /// masked element does not exist, [`MaskError::Invalid`] when the
    /// masked fabric no longer validates.
    pub fn apply(&self, adg: &Adg) -> Result<Adg, MaskError> {
        let mut out = adg.clone();
        // Ports first: indices are positions in the *current* input
        // adjacency, so resolve them against the untouched graph.
        for &(node, port) in &self.ports {
            let eid = adg
                .in_edges(node)
                .nth(port)
                .map(dsagen_adg::Edge::id)
                .ok_or_else(|| MaskError::Missing(format!("port {port} of {node}")))?;
            if out.edge(eid).is_some() {
                out.remove_edge(eid)
                    .map_err(|e| MaskError::Missing(e.to_string()))?;
            }
        }
        for &edge in &self.edges {
            if adg.edge(edge).is_none() {
                return Err(MaskError::Missing(format!("edge {edge}")));
            }
            if out.edge(edge).is_some() {
                out.remove_edge(edge)
                    .map_err(|e| MaskError::Missing(e.to_string()))?;
            }
        }
        for &node in &self.nodes {
            if adg.node(node).is_none() {
                return Err(MaskError::Missing(format!("node {node}")));
            }
            out.remove_node(node)
                .map_err(|e| MaskError::Missing(e.to_string()))?;
        }
        out.validate()
            .map_err(|e| MaskError::Invalid(e.to_string()))?;
        Ok(out)
    }
}

impl fmt::Display for CapabilityMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask({} port(s), {} edge(s), {} node(s))",
            self.ports.len(),
            self.edges.len(),
            self.nodes.len()
        )
    }
}

/// Applies `mask` to `adg` and runs [`repair_with_escalation`] on the
/// masked fabric, returning the repair result together with the degraded
/// graph it is legal against. The one-call form of a ladder rung.
pub fn repair_with_mask(
    adg: &Adg,
    kernel: &dsagen_dfg::CompiledKernel,
    previous: &Schedule,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    mask: &CapabilityMask,
) -> Result<(ScheduleResult, Adg), MaskError> {
    let masked = mask.apply(adg)?;
    let result = repair_with_escalation(&masked, kernel, previous, cfg, max_attempts);
    Ok((result, masked))
}

/// [`repair_with_mask`] scoped to a fault-isolation domain: applies `mask`
/// and runs [`crate::repair_regions_with_escalation`] so that only the
/// entities of `regions` may move — every other domain's placements and
/// routes are pinned bit-identically. With `from_scratch` the afflicted
/// regions are re-placed from nothing (the partial re-placement rung);
/// without it the repair is incremental.
///
/// A mask that takes out hardware a *pinned* domain depends on makes the
/// rung structurally infeasible and returns [`MaskError::Invalid`], so the
/// ladder escalates instead of breaking the placement-diff contract.
#[allow(clippy::too_many_arguments)] // mirrors `repair_with_mask` plus the scope
pub fn repair_with_mask_scoped(
    adg: &Adg,
    kernel: &dsagen_dfg::CompiledKernel,
    previous: &Schedule,
    regions: &std::collections::BTreeSet<usize>,
    cfg: &SchedulerConfig,
    max_attempts: u32,
    mask: &CapabilityMask,
    from_scratch: bool,
) -> Result<(ScheduleResult, Adg), MaskError> {
    let masked = mask.apply(adg)?;
    let result = crate::repair_regions_with_escalation(
        &masked,
        kernel,
        previous,
        regions,
        from_scratch,
        cfg,
        max_attempts,
    )
    .ok_or_else(|| {
        MaskError::Invalid("mask invalidates placements or routes pinned by other domains".into())
    })?;
    Ok((result, masked))
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, CompiledKernel, KernelBuilder, MemClass, TransformConfig,
        TripCount,
    };

    use super::*;
    use crate::{evaluate, schedule, Problem, Weights};

    fn dot_kernel(adg: &Adg) -> CompiledKernel {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        compile_kernel(
            &k.build().unwrap(),
            &TransformConfig::fallback(),
            &adg.features(),
        )
        .unwrap()
    }

    #[test]
    fn empty_mask_is_identity_modulo_validation() {
        let adg = presets::softbrain();
        let masked = CapabilityMask::new().apply(&adg).unwrap();
        assert_eq!(masked, adg);
    }

    #[test]
    fn port_mask_removes_exactly_that_edge() {
        let adg = presets::softbrain();
        // Find a node with >1 input ports whose port-0 edge is removable.
        let victim = adg
            .nodes()
            .flat_map(|n| adg.in_edges(n.id()).map(move |e| (n.id(), e.id())))
            .filter(|(n, _)| adg.in_edges(*n).count() > 1)
            .find_map(|(n, eid)| {
                let port = adg.input_port_of(eid).unwrap();
                CapabilityMask::new()
                    .with_port(n, port)
                    .apply(&adg)
                    .ok()
                    .map(|m| (n, eid, m))
            });
        let (node, eid, masked) = victim.expect("some port must be maskable");
        assert!(masked.edge(eid).is_none(), "masked port's edge survives");
        assert_eq!(masked.edge_count(), adg.edge_count() - 1);
        assert!(masked.node(node).is_some(), "owner must survive");
    }

    #[test]
    fn node_mask_decommissions_with_links() {
        let adg = presets::softbrain();
        let pe = adg
            .pes()
            .find(|&pe| CapabilityMask::new().with_node(pe).apply(&adg).is_ok())
            .expect("some PE must be decommissionable");
        let masked = CapabilityMask::new().with_node(pe).apply(&adg).unwrap();
        assert!(masked.node(pe).is_none());
        assert!(masked
            .edges()
            .all(|e| e.src != pe && e.dst != pe), "links must go with the node");
    }

    #[test]
    fn missing_elements_error_typed() {
        let adg = presets::softbrain();
        let bogus_node = dsagen_adg::NodeId::from_index(9999);
        let err = CapabilityMask::new()
            .with_node(bogus_node)
            .apply(&adg)
            .unwrap_err();
        assert!(matches!(err, MaskError::Missing(_)), "{err}");
        let err = CapabilityMask::new()
            .with_port(bogus_node, 0)
            .apply(&adg)
            .unwrap_err();
        assert!(matches!(err, MaskError::Missing(_)), "{err}");
    }

    #[test]
    fn infeasible_mask_errors_instead_of_corrupting() {
        let adg = presets::softbrain();
        // Masking the control core (or everything) must fail validation,
        // not produce a broken graph.
        let ctrl = adg.control().expect("presets have a control core");
        let err = CapabilityMask::new().with_node(ctrl).apply(&adg);
        assert!(err.is_err(), "removing the control core must not validate");
    }

    #[test]
    fn port_mask_is_a_refinement_of_node_mask() {
        // Any route/placement legal on the node-decommissioned fabric is
        // legal on the port-masked fabric: the port mask removes a strict
        // subset of the node mask's hardware.
        let adg = presets::softbrain();
        let kernel = dot_kernel(&adg);
        let cfg = SchedulerConfig::default();
        let base = schedule(&adg, &kernel, &cfg);
        assert!(base.is_legal(), "baseline must schedule");

        // Pick a maskable (node, port) pair.
        let (node, port) = adg
            .nodes()
            .flat_map(|n| adg.in_edges(n.id()).map(move |e| (n.id(), e.id())))
            .filter(|(n, _)| adg.in_edges(*n).count() > 1)
            .find_map(|(n, eid)| {
                let port = adg.input_port_of(eid)?;
                CapabilityMask::new().with_port(n, port).apply(&adg).ok()?;
                CapabilityMask::new().with_node(n).apply(&adg).ok()?;
                Some((n, port))
            })
            .expect("softbrain has a maskable port whose node also masks");

        let node_masked = CapabilityMask::new().with_node(node).apply(&adg).unwrap();
        let port_masked = CapabilityMask::new()
            .with_port(node, port)
            .apply(&adg)
            .unwrap();
        let under_node = schedule(&node_masked, &kernel, &cfg);
        if under_node.is_legal() {
            // Evaluate the node-masked schedule against the port-masked
            // fabric: every placement/route must still be legal.
            let problem = Problem::new(&port_masked, &kernel);
            let eval = evaluate(&problem, &under_node.schedule, &Weights::default());
            assert!(
                eval.feasible,
                "schedule legal under node mask must stay legal under port mask"
            );
        }
    }
}
