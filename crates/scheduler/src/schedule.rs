//! The schedule: placements, routes, and stream→memory bindings.

use std::collections::BTreeMap;

use dsagen_adg::{Adg, EdgeId, NodeId, NodeKind};
use dsagen_dfg::StreamSource;

use crate::{Entity, EntityKind, Problem};

/// A (possibly partial) mapping of a compiled kernel onto an ADG.
///
/// Indices are positional against the [`Problem`] that minted the schedule:
/// `placement[i]` is entity `i`'s ADG node, `routes[j]` is virtual edge
/// `j`'s network path. Partial schedules are first-class — the repairing
/// scheduler starts from them (§V-A).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Entity placements.
    pub placement: Vec<Option<NodeId>>,
    /// Routed virtual edges: edge index → ADG edge path.
    pub routes: BTreeMap<usize, Vec<EdgeId>>,
}

impl Schedule {
    /// An empty schedule shaped for `problem`.
    #[must_use]
    pub fn empty(problem: &Problem<'_>) -> Self {
        Schedule {
            placement: vec![None; problem.entities.len()],
            routes: BTreeMap::new(),
        }
    }

    /// Whether every entity is placed and every edge routed.
    #[must_use]
    pub fn is_complete(&self, problem: &Problem<'_>) -> bool {
        self.placement.iter().all(Option::is_some)
            && problem.edges.iter().enumerate().all(|(i, _)| {
                self.routes.contains_key(&i)
            })
    }

    /// Unmaps entity `e`, dropping its placement and all incident routes.
    pub fn unplace(&mut self, problem: &Problem<'_>, e: usize) {
        self.placement[e] = None;
        for (i, edge) in problem.edges.iter().enumerate() {
            if edge.src == e || edge.dst == e {
                self.routes.remove(&i);
            }
        }
    }

    /// Drops every placement and route that references hardware no longer
    /// present (or no longer compatible) in `problem.adg` — the first step
    /// of schedule repair after a DSE mutation (§V-A: "any aspect of the
    /// input program which used a deleted ADG component is also deleted
    /// from the schedule").
    ///
    /// Returns how many entities were invalidated.
    pub fn invalidate_removed(&mut self, problem: &Problem<'_>) -> usize {
        // Resize if the problem shape changed (defensive; same kernel keeps
        // the same shape).
        if self.placement.len() != problem.entities.len() {
            *self = Schedule::empty(problem);
            return problem.entities.len();
        }
        let adg = problem.adg;
        let mut dropped = 0;
        for (i, slot) in self.placement.iter_mut().enumerate() {
            let Some(node) = *slot else { continue };
            let still_ok = match adg.kind(node) {
                Err(_) => false,
                Ok(kind) => match &problem.entities[i].kind {
                    EntityKind::Op { .. } => match kind {
                        NodeKind::Pe(pe) => {
                            let e = &problem.entities[i];
                            e.opcode.is_none_or(|oc| pe.ops.contains(oc))
                                && (!e.needs_stream_join || pe.supports_stream_join())
                        }
                        _ => false,
                    },
                    EntityKind::InPort { .. } | EntityKind::OutPort { .. } => {
                        matches!(kind, NodeKind::Sync(_))
                    }
                },
            };
            if !still_ok {
                *slot = None;
                dropped += 1;
            }
        }
        // Routes: every ADG edge must still exist and endpoints must still
        // be placed where the route assumes.
        let placement = &self.placement;
        self.routes.retain(|idx, path| {
            let Some(vedge) = problem.edges.get(*idx) else {
                return false;
            };
            let (Some(mut cur), Some(dst)) = (
                placement.get(vedge.src).copied().flatten(),
                placement.get(vedge.dst).copied().flatten(),
            ) else {
                return false;
            };
            for eid in path.iter() {
                match adg.edge(*eid) {
                    Some(e) if e.src == cur => cur = e.dst,
                    _ => return false,
                }
            }
            cur == dst
        });
        dropped
    }

    /// Whether every placement and route *outside* `regions` is
    /// bit-identical between `self` and `other` — the placement-diff
    /// check behind the partial re-placement rung: a scoped repair may
    /// touch only the afflicted domain, and untouched domains'
    /// assignments must survive unchanged.
    #[must_use]
    pub fn agrees_outside(
        &self,
        problem: &Problem<'_>,
        other: &Schedule,
        regions: &std::collections::BTreeSet<usize>,
    ) -> bool {
        if self.placement.len() != other.placement.len() {
            return false;
        }
        for (i, ent) in problem.entities.iter().enumerate() {
            if !regions.contains(&ent.region()) && self.placement[i] != other.placement[i] {
                return false;
            }
        }
        for (idx, vedge) in problem.edges.iter().enumerate() {
            let region = problem
                .entities
                .get(vedge.src)
                .map(Entity::region)
                .unwrap_or(usize::MAX);
            if !regions.contains(&region) && self.routes.get(&idx) != other.routes.get(&idx) {
                return false;
            }
        }
        true
    }

    /// Usage count per ADG edge across all routes.
    #[must_use]
    pub fn edge_usage(&self) -> BTreeMap<EdgeId, u32> {
        let mut usage: BTreeMap<EdgeId, u32> = BTreeMap::new();
        for path in self.routes.values() {
            for e in path {
                *usage.entry(*e).or_insert(0) += 1;
            }
        }
        usage
    }

    /// The set of *values* (producing entities) carried by each ADG edge.
    ///
    /// Fan-out is free in hardware — a switch broadcasting one value to
    /// several consumers uses each physical link once — so congestion is
    /// counted per distinct value, not per route.
    #[must_use]
    pub fn edge_values(&self, problem: &Problem<'_>) -> BTreeMap<EdgeId, Vec<usize>> {
        let mut values: BTreeMap<EdgeId, Vec<usize>> = BTreeMap::new();
        for (idx, path) in &self.routes {
            let Some(vedge) = problem.edges.get(*idx) else {
                continue;
            };
            for e in path {
                let entry = values.entry(*e).or_default();
                if !entry.contains(&vedge.src) {
                    entry.push(vedge.src);
                }
            }
        }
        values
    }

    /// Resolves every stream of every region to a memory node: fabric
    /// streams bind to a compatible memory adjacent to their port's sync
    /// element; controller-side index streams bind to the first memory of
    /// their class. Returns `(region, in/out, stream_port) → memory`.
    #[must_use]
    pub fn stream_memories(&self, problem: &Problem<'_>) -> BTreeMap<(usize, bool, usize), NodeId> {
        let adg = problem.adg;
        let mut out = BTreeMap::new();
        let mem_of_class = |mc: dsagen_dfg::MemClass| -> Option<NodeId> {
            adg.memories().find(|m| match adg.kind(*m) {
                Ok(NodeKind::Memory(spec)) => match mc {
                    dsagen_dfg::MemClass::MainMemory => {
                        spec.kind == dsagen_adg::MemKind::MainMemory
                    }
                    dsagen_dfg::MemClass::Scratchpad => {
                        spec.kind == dsagen_adg::MemKind::Scratchpad
                    }
                },
                _ => false,
            })
        };
        for (ei, entity) in problem.entities.iter().enumerate() {
            let Some(sync) = self.placement[ei] else {
                continue;
            };
            match entity.kind {
                EntityKind::InPort { region, port } => {
                    if let Some(mc) = entity.mem_class {
                        let mem = adg
                            .in_edges(sync)
                            .map(|e| e.src)
                            .find(|src| memory_matches(adg, *src, mc, entity))
                            .or_else(|| mem_of_class(mc));
                        if let Some(m) = mem {
                            out.insert((region, true, port), m);
                        }
                    }
                }
                EntityKind::OutPort { region, port } => {
                    if let Some(mc) = entity.mem_class {
                        let mem = adg
                            .out_edges(sync)
                            .map(|e| e.dst)
                            .find(|dst| memory_matches(adg, *dst, mc, entity))
                            .or_else(|| mem_of_class(mc));
                        if let Some(m) = mem {
                            out.insert((region, false, port), m);
                        }
                    }
                }
                EntityKind::Op { .. } => {}
            }
        }
        // Controller-side index streams (not represented as entities).
        for (ri, region) in problem.kernel.regions.iter().enumerate() {
            for s in &region.in_streams {
                if !s.to_fabric {
                    if let StreamSource::Memory(mc) = s.source {
                        if let Some(m) = mem_of_class(mc) {
                            out.insert((ri, true, s.port), m);
                        }
                    }
                }
            }
        }
        out
    }
}

fn memory_matches(
    adg: &Adg,
    node: NodeId,
    mc: dsagen_dfg::MemClass,
    entity: &crate::Entity,
) -> bool {
    match adg.kind(node) {
        Ok(NodeKind::Memory(spec)) => {
            let class_ok = match mc {
                dsagen_dfg::MemClass::MainMemory => spec.kind == dsagen_adg::MemKind::MainMemory,
                dsagen_dfg::MemClass::Scratchpad => spec.kind == dsagen_adg::MemKind::Scratchpad,
            };
            class_ok
                && (!entity.needs_indirect || spec.controllers.indirect)
                && (!entity.needs_atomic || spec.controllers.atomic_update)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{
        compile_kernel, AffineExpr, KernelBuilder, MemClass, TransformConfig, TripCount,
    };

    use super::*;

    fn problem_fixture(adg: &Adg) -> (dsagen_dfg::CompiledKernel, ()) {
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 64, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 64, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(64), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        let kernel = k.build().unwrap();
        (
            compile_kernel(&kernel, &TransformConfig::fallback(), &adg.features()).unwrap(),
            (),
        )
    }

    #[test]
    fn empty_schedule_is_incomplete() {
        let adg = presets::softbrain();
        let (ck, ()) = problem_fixture(&adg);
        let p = Problem::new(&adg, &ck);
        let s = Schedule::empty(&p);
        assert!(!s.is_complete(&p));
    }

    #[test]
    fn unplace_drops_incident_routes() {
        let adg = presets::softbrain();
        let (ck, ()) = problem_fixture(&adg);
        let p = Problem::new(&adg, &ck);
        let mut s = Schedule::empty(&p);
        s.placement[0] = Some(adg.syncs().next().unwrap());
        s.routes.insert(0, vec![]);
        // Edge 0 has src or dst 0? Find an edge touching entity 0.
        let touching: Vec<usize> = p
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == 0 || e.dst == 0)
            .map(|(i, _)| i)
            .collect();
        for t in &touching {
            s.routes.insert(*t, vec![]);
        }
        s.unplace(&p, 0);
        assert!(s.placement[0].is_none());
        for t in &touching {
            assert!(!s.routes.contains_key(t));
        }
    }

    #[test]
    fn invalidate_drops_placements_on_removed_nodes() {
        let mut adg = presets::softbrain();
        let (ck, ()) = problem_fixture(&adg);
        let victim_pe = adg.pes().next().unwrap();
        // Build the problem against the *mutated* adg after deleting a PE,
        // as the DSE does.
        let mut s = {
            let p = Problem::new(&adg, &ck);
            let mut s = Schedule::empty(&p);
            // Place an op entity on the victim PE.
            let op_idx = p
                .entities
                .iter()
                .position(|e| matches!(e.kind, EntityKind::Op { .. }))
                .unwrap();
            s.placement[op_idx] = Some(victim_pe);
            s
        };
        adg.remove_node(victim_pe).unwrap();
        let p = Problem::new(&adg, &ck);
        let dropped = s.invalidate_removed(&p);
        assert_eq!(dropped, 1);
        assert!(s.placement.iter().all(Option::is_none));
    }

    #[test]
    fn invalidate_drops_routes_with_dead_edges() {
        let mut adg = presets::softbrain();
        let (ck, ()) = problem_fixture(&adg);
        // Route over an edge, then delete the edge.
        let some_edge = adg.edges().next().unwrap().id();
        let (src_node, dst_node) = {
            let e = adg.edge(some_edge).unwrap();
            (e.src, e.dst)
        };
        let mut s = {
            let p = Problem::new(&adg, &ck);
            let mut s = Schedule::empty(&p);
            if !p.edges.is_empty() {
                s.placement[p.edges[0].src] = Some(src_node);
                s.placement[p.edges[0].dst] = Some(dst_node);
                s.routes.insert(0, vec![some_edge]);
            }
            s
        };
        adg.remove_edge(some_edge).unwrap();
        let p = Problem::new(&adg, &ck);
        s.invalidate_removed(&p);
        assert!(!s.routes.contains_key(&0));
    }

    #[test]
    fn stream_memories_resolve_by_adjacency() {
        let adg = presets::softbrain();
        let (ck, ()) = problem_fixture(&adg);
        let p = Problem::new(&adg, &ck);
        let mut s = Schedule::empty(&p);
        // Place the two in-ports and the out-port on syncs.
        let syncs: Vec<_> = adg.syncs().collect();
        for (i, e) in p.entities.iter().enumerate() {
            match e.kind {
                EntityKind::InPort { .. } | EntityKind::OutPort { .. } => {
                    s.placement[i] = Some(syncs[i % syncs.len()]);
                }
                EntityKind::Op { .. } => {}
            }
        }
        let mems = s.stream_memories(&p);
        assert_eq!(mems.len(), 3); // a, b reads + c write
        for m in mems.values() {
            assert!(matches!(adg.kind(*m), Ok(NodeKind::Memory(_))));
        }
    }
}
