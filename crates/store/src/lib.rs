//! Crash-consistent, content-addressed artifact store (PR 9 tentpole).
//!
//! The DSE loop and the codesign service both pay the same bill twice:
//! scheduling a kernel onto a candidate ADG and re-verifying the bitstream
//! round-trip. This crate persists those results on disk, keyed by the
//! triple that makes them reusable:
//!
//! ```text
//! (Adg::fingerprint, CompiledKernel::content_hash, scheduler seed)
//!    → schedule + config words + optional perf/footprint
//! ```
//!
//! The scheduler seed is part of the key on purpose: schedules are
//! deterministic in `(ADG, kernel, seed)`, and the DSE determinism
//! contract ("results depend only on `(seed, shards)`") would break if a
//! store shared entries across explorers running different seeds.
//!
//! # Crash consistency
//!
//! Every put follows write-to-temp → fsync → atomic rename → dir fsync,
//! so a crash at any instant leaves either the old state or the new
//! state, never a half-written entry at its final address. Residue a
//! crash *can* leave — a torn or complete `.tmp-*` file that never got
//! renamed — is swept (and counted) on the next [`ArtifactStore::open`].
//!
//! # Trust nothing on load
//!
//! Records are length/CRC32-framed per section ([`record`]) and carry the
//! schedule digest; [`ArtifactStore::get`] re-verifies all of it on every
//! load. Anything wrong — torn bytes, bit rot, an alien file squatting at
//! a content address — is *quarantined*: moved to `quarantine/`, logged,
//! counted under `store.quarantine.*`, snapshotted to the flight
//! recorder, and reported to the caller as a plain miss. The store never
//! panics on disk contents and never returns a record whose digest it
//! did not just recompute.
//!
//! # Fault injection
//!
//! A [`StorageInjector`] (from `dsagen-faults`) can be threaded into
//! [`StoreConfig`]; it fires deterministic torn-write / stale-temp /
//! transient-I/O faults at write boundaries, which the crash-matrix
//! harness uses to prove the recovery story end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod record;

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsagen_faults::{StorageInjector, WriteFault};
use dsagen_scheduler::Schedule;
use dsagen_telemetry::{log, Level, Telemetry};

pub use record::{decode, encode, frame_boundaries, RecordError, MAGIC};

/// The content address of one artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactKey {
    /// [`dsagen_adg::Adg::fingerprint`] of the design the schedule targets.
    pub adg_fp: u64,
    /// Content hash of the compiled kernel that was scheduled.
    pub kernel_hash: u64,
    /// The scheduler seed the schedule was produced under.
    pub sched_seed: u64,
}

impl ArtifactKey {
    /// The entry's file name: three fixed-width hex fields, so the
    /// address is parseable back out of a directory listing.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}.art",
            self.adg_fp, self.kernel_hash, self.sched_seed
        )
    }

    /// Inverse of [`ArtifactKey::file_name`]; `None` for names that are
    /// not well-formed entry addresses.
    #[must_use]
    pub fn from_file_name(name: &str) -> Option<ArtifactKey> {
        let stem = name.strip_suffix(".art")?;
        let mut parts = stem.splitn(3, '-');
        let adg_fp = u64::from_str_radix(parts.next()?, 16).ok()?;
        let kernel_hash = u64::from_str_radix(parts.next()?, 16).ok()?;
        let sched_seed = u64::from_str_radix(parts.next()?, 16).ok()?;
        Some(ArtifactKey {
            adg_fp,
            kernel_hash,
            sched_seed,
        })
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adg={:#018x} kernel={:#018x} seed={:#018x}",
            self.adg_fp, self.kernel_hash, self.sched_seed
        )
    }
}

/// One stored codesign result.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The content address.
    pub key: ArtifactKey,
    /// The schedule the scheduler produced for `(adg, kernel, seed)`.
    pub schedule: Schedule,
    /// Objective value observed when the schedule was minted, if any.
    pub perf: Option<f64>,
    /// Footprint fingerprint (see `dsagen_dse::schedule_footprint`), if any.
    pub footprint: Option<u64>,
    /// The serialized bitstream words, so the loader can re-run
    /// round-trip verification without regenerating them.
    pub config_words: Vec<u64>,
}

/// Retry discipline for transient write failures: exponential backoff
/// with deterministic jitter (seeded, so tests replay exactly).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical put (first try included). Must exceed
    /// the injector's transient burst for recovery to be possible.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds; doubles per
    /// further attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter draw (deterministic per `(seed, attempt)`).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 50,
            jitter_seed: 0,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based: the wait after the
    /// first failure is `backoff_ms(1)`): `base * 2^(attempt-1)` capped at
    /// `max`, plus up to 50% deterministic jitter.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff_ms);
        let jitter_span = exp / 2;
        if jitter_span == 0 {
            return exp;
        }
        let draw = splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37)) % (jitter_span + 1);
        (exp + draw).min(self.max_backoff_ms)
    }
}

/// Store construction options.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Retry discipline for transient write failures.
    pub retry: RetryPolicy,
    /// Storage-plane fault source (disabled in production).
    pub injector: StorageInjector,
}

/// Why a store operation failed. Quarantine is *not* an error — a
/// corrupt entry degrades to a miss; these are the operational failures
/// the caller may want to retry or surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A non-retryable filesystem error.
    Io {
        /// Which operation failed (`"open"`, `"write-temp"`, `"rename"`, ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Every attempt of a put failed transiently; the retry budget is
    /// spent.
    RetriesExhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
    },
    /// The fault injector simulated a crash mid-commit; the entry did not
    /// land (torn or stale temp residue may remain, as after a real
    /// crash).
    InjectedCrash {
        /// The simulated fault shape.
        fault: WriteFault,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} on {}: {source}", path.display())
            }
            StoreError::RetriesExhausted { attempts } => {
                write!(f, "store put: all {attempts} attempts failed transiently")
            }
            StoreError::InjectedCrash { fault } => {
                write!(f, "store put: injected crash ({fault:?}); entry not committed")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Point-in-time operation counters (cheap copies of internal atomics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries committed successfully.
    pub puts: u64,
    /// Loads that returned a verified artifact.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Entries moved to quarantine (each also counts as a miss).
    pub quarantined: u64,
    /// Transient write failures absorbed by the retry loop.
    pub transient_retries: u64,
    /// Stale temp files swept at open.
    pub stale_temps_swept: u64,
}

#[derive(Debug, Default)]
struct Counters {
    puts: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    transient_retries: AtomicU64,
    stale_temps_swept: AtomicU64,
    temp_counter: AtomicU64,
}

/// Disk-backed content-addressed artifact store. Cheap to clone (all
/// clones share counters and configuration); safe to use from many
/// threads — distinct keys never contend, and same-key races are
/// resolved by the atomicity of rename.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    inner: Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    entries: PathBuf,
    quarantine: PathBuf,
    cfg: StoreConfig,
    telemetry: Telemetry,
    counters: Counters,
}

const TEMP_PREFIX: &str = ".tmp-";

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Stable metric/log label for a quarantine reason.
#[must_use]
pub fn quarantine_label(err: &RecordError) -> &'static str {
    match err {
        RecordError::BadMagic => "bad_magic",
        RecordError::Frame(_) => "frame",
        RecordError::Malformed { .. } => "malformed",
        RecordError::DigestMismatch { .. } => "digest_mismatch",
        RecordError::AlienKey { .. } => "alien_key",
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`, sweeping any
    /// `.tmp-*` crash residue out of the entries directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directories cannot be created or listed.
    pub fn open(
        root: impl AsRef<Path>,
        cfg: StoreConfig,
        telemetry: Telemetry,
    ) -> Result<ArtifactStore, StoreError> {
        let root = root.as_ref();
        let entries = root.join("entries");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&entries).map_err(|e| io_err("create-dir", &entries, e))?;
        fs::create_dir_all(&quarantine).map_err(|e| io_err("create-dir", &quarantine, e))?;

        let store = ArtifactStore {
            inner: Arc::new(StoreInner {
                entries,
                quarantine,
                cfg,
                telemetry,
                counters: Counters::default(),
            }),
        };
        store.sweep_stale_temps()?;
        Ok(store)
    }

    fn sweep_stale_temps(&self) -> Result<(), StoreError> {
        let inner = &self.inner;
        let iter = fs::read_dir(&inner.entries).map_err(|e| io_err("read-dir", &inner.entries, e))?;
        for entry in iter.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(TEMP_PREFIX) {
                continue;
            }
            let path = entry.path();
            match fs::remove_file(&path) {
                Ok(()) => {
                    inner.counters.stale_temps_swept.fetch_add(1, Ordering::Relaxed);
                    inner.telemetry.metrics().add("store.sweep.stale_temp", 1);
                    log(
                        Level::Info,
                        format!("store: swept stale temp file {}", path.display()),
                    );
                }
                Err(e) => {
                    // Best-effort: a sweep failure is logged, not fatal —
                    // the residue never shadows a committed entry.
                    log(
                        Level::Warn,
                        format!("store: failed to sweep {}: {e}", path.display()),
                    );
                }
            }
        }
        Ok(())
    }

    /// The directory committed entries live in (tests and the crash
    /// harness damage files here directly).
    #[must_use]
    pub fn entries_dir(&self) -> &Path {
        &self.inner.entries
    }

    /// The directory quarantined files are moved to.
    #[must_use]
    pub fn quarantine_dir(&self) -> &Path {
        &self.inner.quarantine
    }

    /// Commits `artifact` under its key: write-to-temp → fsync → atomic
    /// rename → directory fsync. Transient injector faults are retried
    /// per the [`RetryPolicy`]; simulated crashes surface as
    /// [`StoreError::InjectedCrash`] and leave realistic residue.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for real filesystem failures,
    /// [`StoreError::RetriesExhausted`] when the retry budget is spent,
    /// [`StoreError::InjectedCrash`] for simulated mid-commit crashes.
    pub fn put(&self, artifact: &Artifact) -> Result<(), StoreError> {
        let inner = &self.inner;
        let bytes = record::encode(artifact);
        let final_path = inner.entries.join(artifact.key.file_name());

        for attempt in 1..=inner.cfg.retry.max_attempts {
            match inner.cfg.injector.on_write(bytes.len()) {
                WriteFault::Clean => {
                    self.commit(&bytes, &final_path)?;
                    inner.counters.puts.fetch_add(1, Ordering::Relaxed);
                    inner.telemetry.metrics().add("store.put.ok", 1);
                    return Ok(());
                }
                WriteFault::Transient => {
                    inner.counters.transient_retries.fetch_add(1, Ordering::Relaxed);
                    inner.telemetry.metrics().add("store.put.transient_retry", 1);
                    if attempt < inner.cfg.retry.max_attempts {
                        std::thread::sleep(std::time::Duration::from_millis(
                            inner.cfg.retry.backoff_ms(attempt),
                        ));
                    }
                }
                fault @ WriteFault::TornAt { keep } => {
                    // Simulate the crash: a torn temp file lands, nothing
                    // is renamed. The next open() sweeps it.
                    let temp = self.temp_path();
                    let _ = fs::write(&temp, &bytes[..keep.min(bytes.len())]);
                    inner.telemetry.metrics().add("store.put.injected_crash", 1);
                    return Err(StoreError::InjectedCrash { fault });
                }
                fault @ WriteFault::StaleTemp => {
                    let temp = self.temp_path();
                    let _ = fs::write(&temp, &bytes);
                    inner.telemetry.metrics().add("store.put.injected_crash", 1);
                    return Err(StoreError::InjectedCrash { fault });
                }
            }
        }
        inner.telemetry.metrics().add("store.put.retries_exhausted", 1);
        Err(StoreError::RetriesExhausted {
            attempts: inner.cfg.retry.max_attempts,
        })
    }

    fn temp_path(&self) -> PathBuf {
        let n = self.inner.counters.temp_counter.fetch_add(1, Ordering::Relaxed);
        self.inner
            .entries
            .join(format!("{TEMP_PREFIX}{}-{n}", std::process::id()))
    }

    fn commit(&self, bytes: &[u8], final_path: &Path) -> Result<(), StoreError> {
        let temp = self.temp_path();
        let mut f = fs::File::create(&temp).map_err(|e| io_err("create-temp", &temp, e))?;
        f.write_all(bytes).map_err(|e| io_err("write-temp", &temp, e))?;
        f.sync_all().map_err(|e| io_err("fsync-temp", &temp, e))?;
        drop(f);
        fs::rename(&temp, final_path).map_err(|e| io_err("rename", final_path, e))?;
        // Persist the rename itself: fsync the containing directory.
        if let Ok(dir) = fs::File::open(&self.inner.entries) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Loads and fully re-verifies the artifact at `key`. A missing entry
    /// is `Ok(None)`. A corrupt, truncated, or alien entry is quarantined
    /// (moved aside, logged, counted, flight-dumped) and *also* reported
    /// as `Ok(None)` — corruption degrades to a recomputable miss, never
    /// a panic and never a wrong artifact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only for unexpected filesystem failures
    /// (permission loss, etc.), never for bad record contents.
    pub fn get(&self, key: ArtifactKey) -> Result<Option<Artifact>, StoreError> {
        let inner = &self.inner;
        let path = inner.entries.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                inner.counters.misses.fetch_add(1, Ordering::Relaxed);
                inner.telemetry.metrics().add("store.get.miss", 1);
                return Ok(None);
            }
            Err(e) => return Err(io_err("read", &path, e)),
        };
        match record::decode(&bytes, Some(key)) {
            Ok(artifact) => {
                inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                inner.telemetry.metrics().add("store.get.hit", 1);
                Ok(Some(artifact))
            }
            Err(reason) => {
                self.quarantine(&path, key, &reason);
                inner.counters.misses.fetch_add(1, Ordering::Relaxed);
                inner.telemetry.metrics().add("store.get.miss", 1);
                Ok(None)
            }
        }
    }

    /// Moves a failed entry aside and reports it through every
    /// observability channel: leveled log, `store.quarantine.*` metrics,
    /// flight-recorder event + on-error dump.
    fn quarantine(&self, path: &Path, key: ArtifactKey, reason: &RecordError) {
        let inner = &self.inner;
        let label = quarantine_label(reason);
        let n = inner.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        inner.telemetry.metrics().add("store.quarantine.total", 1);
        inner
            .telemetry
            .metrics()
            .add(&format!("store.quarantine.{label}"), 1);

        let dest = inner.quarantine.join(format!(
            "{}.q{n}",
            path.file_name().and_then(|s| s.to_str()).unwrap_or("entry")
        ));
        if let Err(e) = fs::rename(path, &dest) {
            // Rename across the same directory tree should not fail, but
            // if it does the entry must still stop shadowing the address.
            let _ = fs::remove_file(path);
            log(
                Level::Warn,
                format!(
                    "store: quarantine rename of {} failed ({e}); entry removed instead",
                    path.display()
                ),
            );
        }
        log(
            Level::Warn,
            format!("store: quarantined entry for {key}: {reason} [{label}]"),
        );
        inner.telemetry.recorder().record("store", || {
            (
                "quarantine".to_string(),
                format!("key=({key}) reason={reason} label={label}"),
            )
        });
        inner.telemetry.recorder().dump_on_error("store-quarantine");
    }

    /// Whether a committed (not necessarily valid) entry exists at `key`.
    #[must_use]
    pub fn contains(&self, key: ArtifactKey) -> bool {
        self.inner.entries.join(key.file_name()).exists()
    }

    /// Number of committed entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.inner.entries)
            .map(|iter| {
                iter.flatten()
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.ends_with(".art"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store has no committed entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time operation counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let c = &self.inner.counters;
        StoreStats {
            puts: c.puts.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            transient_retries: c.transient_retries.load(Ordering::Relaxed),
            stale_temps_swept: c.stale_temps_swept.load(Ordering::Relaxed),
        }
    }
}

/// Convenience constructor for the common production configuration: no
/// injector, default retry policy, disabled telemetry.
///
/// # Errors
///
/// Propagates [`ArtifactStore::open`] failures.
pub fn open_default(root: impl AsRef<Path>) -> Result<ArtifactStore, StoreError> {
    ArtifactStore::open(root, StoreConfig::default(), Telemetry::disabled())
}

/// Helper used by callers that mint artifacts: packages a schedule and
/// its serialized config words under a key.
#[must_use]
pub fn artifact(
    key: ArtifactKey,
    schedule: Schedule,
    perf: Option<f64>,
    footprint: Option<u64>,
    config_words: Vec<u64>,
) -> Artifact {
    Artifact {
        key,
        schedule,
        perf,
        footprint,
        config_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_faults::{corrupt_record_bytes, StorageFaultKind};

    fn sample(seed: u64) -> Artifact {
        // Reuse the record module's generator via a local copy: a small
        // deterministic artifact is enough for store-level tests.
        use dsagen_adg::{EdgeId, NodeId};
        use std::collections::BTreeMap;
        let placement = (0..4)
            .map(|i| (i != 2).then(|| NodeId::from_index(i + seed as usize)))
            .collect();
        let mut routes = BTreeMap::new();
        routes.insert(0usize, vec![EdgeId::from_index(1), EdgeId::from_index(2)]);
        Artifact {
            key: ArtifactKey {
                adg_fp: 0x1111 + seed,
                kernel_hash: 0x2222 + seed,
                sched_seed: 0x3333 + seed,
            },
            schedule: Schedule { placement, routes },
            perf: Some(1.5),
            footprint: None,
            config_words: vec![7, 8, 9],
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsagen-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_across_reopen() {
        let root = tmp_root("roundtrip");
        let a = sample(1);
        {
            let store = open_default(&root).unwrap();
            store.put(&a).unwrap();
            assert_eq!(store.get(a.key).unwrap().as_ref(), Some(&a));
            assert_eq!(store.stats().hits, 1);
        }
        // A second process (modeled as a reopen) sees the entry.
        let store = open_default(&root).unwrap();
        assert_eq!(store.get(a.key).unwrap(), Some(a));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_key_is_a_plain_miss() {
        let root = tmp_root("miss");
        let store = open_default(&root).unwrap();
        assert_eq!(store.get(sample(9).key).unwrap(), None);
        assert_eq!(store.stats().misses, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_quarantine_not_panic() {
        let root = tmp_root("quarantine");
        let store = open_default(&root).unwrap();
        for (i, kind) in [
            StorageFaultKind::TornWrite,
            StorageFaultKind::TruncatedRecord,
            StorageFaultKind::BitFlippedPayload,
        ]
        .into_iter()
        .enumerate()
        {
            let a = sample(10 + i as u64);
            store.put(&a).unwrap();
            let path = store.entries_dir().join(a.key.file_name());
            let mut bytes = fs::read(&path).unwrap();
            corrupt_record_bytes(kind, 99, &mut bytes);
            fs::write(&path, &bytes).unwrap();
            assert_eq!(store.get(a.key).unwrap(), None, "{kind}");
            assert!(!path.exists(), "{kind}: entry must be moved aside");
        }
        assert_eq!(store.stats().quarantined, 3);
        assert_eq!(
            fs::read_dir(store.quarantine_dir()).unwrap().count(),
            3,
            "each corrupt entry lands in quarantine"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn alien_file_at_an_address_is_quarantined() {
        let root = tmp_root("alien");
        let store = open_default(&root).unwrap();
        // A record committed under key A, copied to address B.
        let a = sample(20);
        let b_key = ArtifactKey {
            adg_fp: 0xAAAA,
            kernel_hash: 0xBBBB,
            sched_seed: 0xCCCC,
        };
        store.put(&a).unwrap();
        fs::copy(
            store.entries_dir().join(a.key.file_name()),
            store.entries_dir().join(b_key.file_name()),
        )
        .unwrap();
        assert_eq!(store.get(b_key).unwrap(), None);
        assert_eq!(store.stats().quarantined, 1);
        // The original, correctly-addressed entry still loads.
        assert!(store.get(a.key).unwrap().is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_temps_swept_on_open() {
        let root = tmp_root("sweep");
        {
            let store = open_default(&root).unwrap();
            fs::write(store.entries_dir().join(".tmp-999-0"), b"residue").unwrap();
            fs::write(store.entries_dir().join(".tmp-999-1"), b"").unwrap();
        }
        let store = open_default(&root).unwrap();
        assert_eq!(store.stats().stale_temps_swept, 2);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let root = tmp_root("transient");
        let cfg = StoreConfig {
            retry: RetryPolicy {
                max_attempts: 5,
                base_backoff_ms: 0,
                max_backoff_ms: 0,
                jitter_seed: 1,
            },
            // Every op faults, always transient, burst of 3 — attempts
            // 1..=3 fail, attempt 4 succeeds (within the budget of 5).
            injector: StorageInjector::seeded(11, 1.0, 1.0, 3),
        };
        let store = ArtifactStore::open(&root, cfg, Telemetry::disabled()).unwrap();
        let a = sample(30);
        store.put(&a).unwrap();
        assert!(store.stats().transient_retries >= 3);
        assert_eq!(store.get(a.key).unwrap(), Some(a));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn exhausted_retries_surface_typed() {
        let root = tmp_root("exhausted");
        let cfg = StoreConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 0,
                max_backoff_ms: 0,
                jitter_seed: 0,
            },
            injector: StorageInjector::seeded(5, 1.0, 1.0, 10),
        };
        let store = ArtifactStore::open(&root, cfg, Telemetry::disabled()).unwrap();
        match store.put(&sample(31)) {
            Err(StoreError::RetriesExhausted { attempts: 2 }) => {}
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_crash_leaves_recoverable_residue() {
        let root = tmp_root("crash-residue");
        let cfg = StoreConfig {
            retry: RetryPolicy::default(),
            // All faults, never transient → always a crash shape.
            injector: StorageInjector::seeded(17, 1.0, 0.0, 1),
        };
        let store = ArtifactStore::open(&root, cfg, Telemetry::disabled()).unwrap();
        let a = sample(32);
        match store.put(&a) {
            Err(StoreError::InjectedCrash { .. }) => {}
            other => panic!("expected InjectedCrash, got {other:?}"),
        }
        // Entry never committed; residue may exist.
        assert!(!store.contains(a.key));
        drop(store);
        // Recovery: reopen sweeps residue, a clean put commits.
        let store = open_default(&root).unwrap();
        assert!(store.is_empty());
        store.put(&a).unwrap();
        assert_eq!(store.get(a.key).unwrap(), Some(a));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_file_name_round_trips() {
        let key = ArtifactKey {
            adg_fp: u64::MAX,
            kernel_hash: 0,
            sched_seed: 0x1234_5678_9ABC_DEF0,
        };
        assert_eq!(ArtifactKey::from_file_name(&key.file_name()), Some(key));
        assert_eq!(ArtifactKey::from_file_name("garbage.art"), None);
        assert_eq!(ArtifactKey::from_file_name("README.md"), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 2,
            max_backoff_ms: 20,
            jitter_seed: 7,
        };
        let waits: Vec<u64> = (1..8).map(|a| p.backoff_ms(a)).collect();
        assert!(waits.iter().all(|&w| w <= 20));
        assert!(waits[0] >= 2);
        // Deterministic in the seed.
        assert_eq!(waits, (1..8).map(|a| p.backoff_ms(a)).collect::<Vec<_>>());
    }
}
