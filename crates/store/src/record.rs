//! The on-disk record format: a magic header plus a fixed sequence of
//! CRC32-framed sections (the byte-chunk discipline from
//! [`dsagen_hwgen::frame_chunk`]).
//!
//! ```text
//! "DSAGART1"                                  8-byte magic
//! chunk KEY        adg_fp, kernel_hash, sched_seed, schedule_digest,
//!                  flags, perf bits, footprint bits
//! chunk PLACEMENT  entity count + one u32 per entity (MAX = unplaced)
//! chunk ROUTES     route count + (vedge, len, edge ids...) per route
//! chunk CONFIG     word count + u64 config words
//! chunk END        the literal bytes "END!"
//! ```
//!
//! Every chunk is `[len u32 LE][crc32 u32 LE][payload]`, so *any* torn
//! write, truncation, or bit flip anywhere in the file surfaces as a
//! typed [`RecordError`] — never a panic, never a silently wrong
//! artifact. The END chunk guards the one failure the per-chunk framing
//! cannot see: a file cut exactly at a chunk boundary. Beyond framing,
//! the decoded schedule's digest is recomputed and compared against the
//! KEY chunk's stored digest, so even a coherent-looking record that
//! decodes to a different schedule is rejected.

use std::collections::BTreeMap;

use dsagen_adg::{EdgeId, NodeId};
use dsagen_hwgen::{frame_chunk, schedule_digest, unframe_chunk, ChunkError};
use dsagen_scheduler::Schedule;

use crate::{Artifact, ArtifactKey};

/// Record magic: format name + version byte.
pub const MAGIC: &[u8; 8] = b"DSAGART1";

/// Sentinel payload of the final (commit) chunk.
const END_PAYLOAD: &[u8; 4] = b"END!";

/// Placement slot sentinel for an unplaced entity.
const UNPLACED: u32 = u32::MAX;

/// Why a record failed to decode. Every variant is a *quarantine reason*:
/// the store moves the offending file aside and reports the artifact as
/// absent, it never aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecordError {
    /// The file does not start with [`MAGIC`] (alien file, or the header
    /// itself was torn/corrupted).
    BadMagic,
    /// A chunk failed its length/CRC framing (torn write, truncation,
    /// bit rot). Carries the underlying framing diagnosis.
    Frame(ChunkError),
    /// All chunks framed clean but the record is structurally wrong
    /// (missing sections, trailing garbage, malformed section payload).
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// The decoded schedule's recomputed digest disagrees with the digest
    /// stored in the KEY chunk — the record decodes, but not to the
    /// schedule it claims to hold.
    DigestMismatch {
        /// Digest stored at write time.
        stored: u64,
        /// Digest recomputed from the decoded schedule.
        computed: u64,
    },
    /// The record's embedded key disagrees with the key the caller asked
    /// for (a file filed under the wrong name — content-addressing broken).
    AlienKey {
        /// The key the record claims.
        found: ArtifactKey,
        /// The key implied by the file's address.
        expected: ArtifactKey,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadMagic => write!(f, "bad magic (not a DSAGART1 record)"),
            RecordError::Frame(e) => write!(f, "framing: {e}"),
            RecordError::Malformed { what } => write!(f, "malformed: {what}"),
            RecordError::DigestMismatch { stored, computed } => write!(
                f,
                "schedule digest mismatch (stored {stored:#018x}, recomputed {computed:#018x})"
            ),
            RecordError::AlienKey { found, expected } => write!(
                f,
                "alien key: record claims {found}, address implies {expected}"
            ),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<ChunkError> for RecordError {
    fn from(e: ChunkError) -> Self {
        RecordError::Frame(e)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u32(&mut self, what: &str) -> Result<u32, RecordError> {
        let end = self.pos + 4;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| short(what))?;
        self.pos = end;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, RecordError> {
        let end = self.pos + 8;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| short(what))?;
        self.pos = end;
        let mut b = [0u8; 8];
        b.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(b))
    }

    fn done(&self, what: &str) -> Result<(), RecordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RecordError::Malformed {
                what: format!("{what}: {} trailing payload bytes", self.buf.len() - self.pos),
            })
        }
    }
}

fn short(what: &str) -> RecordError {
    RecordError::Malformed {
        what: format!("{what}: payload shorter than its own counts announce"),
    }
}

/// Serializes an artifact into record bytes, END chunk included.
#[must_use]
pub fn encode(artifact: &Artifact) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);

    // KEY chunk.
    let mut key = Vec::with_capacity(8 * 6 + 4);
    put_u64(&mut key, artifact.key.adg_fp);
    put_u64(&mut key, artifact.key.kernel_hash);
    put_u64(&mut key, artifact.key.sched_seed);
    put_u64(&mut key, schedule_digest(&artifact.schedule));
    let flags = u32::from(artifact.perf.is_some()) | (u32::from(artifact.footprint.is_some()) << 1);
    put_u32(&mut key, flags);
    put_u64(&mut key, artifact.perf.unwrap_or(0.0).to_bits());
    put_u64(&mut key, artifact.footprint.unwrap_or(0));
    out.extend_from_slice(&frame_chunk(&key));

    // PLACEMENT chunk.
    let mut placement = Vec::with_capacity(4 + 4 * artifact.schedule.placement.len());
    put_u32(&mut placement, artifact.schedule.placement.len() as u32);
    for slot in &artifact.schedule.placement {
        put_u32(
            &mut placement,
            slot.map_or(UNPLACED, |n| n.index() as u32),
        );
    }
    out.extend_from_slice(&frame_chunk(&placement));

    // ROUTES chunk.
    let mut routes = Vec::new();
    put_u32(&mut routes, artifact.schedule.routes.len() as u32);
    for (vedge, path) in &artifact.schedule.routes {
        put_u32(&mut routes, *vedge as u32);
        put_u32(&mut routes, path.len() as u32);
        for e in path {
            put_u32(&mut routes, e.index() as u32);
        }
    }
    out.extend_from_slice(&frame_chunk(&routes));

    // CONFIG chunk.
    let mut config = Vec::with_capacity(4 + 8 * artifact.config_words.len());
    put_u32(&mut config, artifact.config_words.len() as u32);
    for w in &artifact.config_words {
        put_u64(&mut config, *w);
    }
    out.extend_from_slice(&frame_chunk(&config));

    // END (commit) chunk.
    out.extend_from_slice(&frame_chunk(END_PAYLOAD));
    out
}

/// Byte offsets *after* the magic and after each chunk of an encoded
/// record — the structurally distinct crash points a torn write can
/// leave. Feeds [`dsagen_faults::kill_points`].
#[must_use]
pub fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    if bytes.len() < MAGIC.len() {
        return out;
    }
    out.push(MAGIC.len());
    let mut rest = &bytes[MAGIC.len()..];
    let mut offset = MAGIC.len();
    while !rest.is_empty() {
        match unframe_chunk(rest, offset) {
            Ok((payload, next)) => {
                offset += 8 + payload.len();
                out.push(offset);
                rest = next;
            }
            Err(_) => break,
        }
    }
    out
}

/// Decodes record bytes back into an [`Artifact`], verifying framing,
/// structure, and the schedule digest. `expected_key` is the key implied
/// by the record's address (filename); a record claiming a different key
/// is rejected as [`RecordError::AlienKey`].
///
/// # Errors
///
/// A typed [`RecordError`] for every way the bytes can be wrong; decoding
/// never panics on arbitrary input (property-tested).
pub fn decode(bytes: &[u8], expected_key: Option<ArtifactKey>) -> Result<Artifact, RecordError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(RecordError::BadMagic);
    }
    let mut rest = &bytes[MAGIC.len()..];
    let mut offset = MAGIC.len();
    let mut next = |what: &str| -> Result<&[u8], RecordError> {
        let (payload, r) = unframe_chunk(rest, offset)?;
        offset += 8 + payload.len();
        rest = r;
        let _ = what;
        Ok(payload)
    };

    // KEY.
    let key_bytes = next("key")?;
    let mut r = Reader::new(key_bytes);
    let key = ArtifactKey {
        adg_fp: r.u64("key.adg_fp")?,
        kernel_hash: r.u64("key.kernel_hash")?,
        sched_seed: r.u64("key.sched_seed")?,
    };
    let stored_digest = r.u64("key.digest")?;
    let flags = r.u32("key.flags")?;
    let perf_bits = r.u64("key.perf")?;
    let footprint_bits = r.u64("key.footprint")?;
    r.done("key")?;
    if let Some(expected) = expected_key {
        if key != expected {
            return Err(RecordError::AlienKey {
                found: key,
                expected,
            });
        }
    }

    // PLACEMENT.
    let placement_bytes = next("placement")?;
    let mut r = Reader::new(placement_bytes);
    let n = r.u32("placement.count")? as usize;
    if n > placement_bytes.len() / 4 {
        return Err(short("placement"));
    }
    let mut placement = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.u32("placement.slot")?;
        placement.push((raw != UNPLACED).then(|| NodeId::from_index(raw as usize)));
    }
    r.done("placement")?;

    // ROUTES.
    let routes_bytes = next("routes")?;
    let mut r = Reader::new(routes_bytes);
    let nroutes = r.u32("routes.count")? as usize;
    if nroutes > routes_bytes.len() / 8 {
        return Err(short("routes"));
    }
    let mut routes = BTreeMap::new();
    for _ in 0..nroutes {
        let vedge = r.u32("routes.vedge")? as usize;
        let len = r.u32("routes.len")? as usize;
        if len > routes_bytes.len() / 4 {
            return Err(short("routes"));
        }
        let mut path = Vec::with_capacity(len);
        for _ in 0..len {
            path.push(EdgeId::from_index(r.u32("routes.edge")? as usize));
        }
        if routes.insert(vedge, path).is_some() {
            return Err(RecordError::Malformed {
                what: format!("routes: duplicate virtual edge {vedge}"),
            });
        }
    }
    r.done("routes")?;

    // CONFIG.
    let config_bytes = next("config")?;
    let mut r = Reader::new(config_bytes);
    let nwords = r.u32("config.count")? as usize;
    if nwords > config_bytes.len() / 8 {
        return Err(short("config"));
    }
    let mut config_words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        config_words.push(r.u64("config.word")?);
    }
    r.done("config")?;

    // END.
    let end = next("end")?;
    if end != END_PAYLOAD {
        return Err(RecordError::Malformed {
            what: "end chunk payload is not the commit sentinel".to_string(),
        });
    }
    if !rest.is_empty() {
        return Err(RecordError::Malformed {
            what: format!("{} bytes after the end chunk", rest.len()),
        });
    }

    let schedule = Schedule { placement, routes };
    let computed = schedule_digest(&schedule);
    if computed != stored_digest {
        return Err(RecordError::DigestMismatch {
            stored: stored_digest,
            computed,
        });
    }
    Ok(Artifact {
        key,
        schedule,
        perf: (flags & 1 != 0).then(|| f64::from_bits(perf_bits)),
        footprint: (flags & 2 != 0).then_some(footprint_bits),
        config_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn sample_artifact(seed: u64) -> Artifact {
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = (0..6)
            .map(|i| (i % 3 != 2).then(|| NodeId::from_index(rng.gen_range(0..40usize))))
            .collect();
        let mut routes = BTreeMap::new();
        for v in 0..4usize {
            let path = (0..rng.gen_range(1..5usize))
                .map(|_| EdgeId::from_index(rng.gen_range(0..60usize)))
                .collect();
            routes.insert(v, path);
        }
        Artifact {
            key: ArtifactKey {
                adg_fp: rng.gen_range(0..u64::MAX),
                kernel_hash: rng.gen_range(0..u64::MAX),
                sched_seed: rng.gen_range(0..u64::MAX),
            },
            schedule: Schedule { placement, routes },
            perf: Some(3.25),
            footprint: Some(0xF00D),
            config_words: (0..10).map(|_| rng.gen_range(0..u64::MAX)).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let a = sample_artifact(1);
        let bytes = encode(&a);
        let b = decode(&bytes, Some(a.key)).expect("clean record decodes");
        assert_eq!(a.key, b.key);
        assert_eq!(a.schedule.placement, b.schedule.placement);
        assert_eq!(a.schedule.routes, b.schedule.routes);
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.footprint, b.footprint);
        assert_eq!(a.config_words, b.config_words);
    }

    #[test]
    fn every_truncation_point_is_typed_not_panic() {
        let bytes = encode(&sample_artifact(2));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut], None).expect_err("truncated record must not decode");
            // Any typed variant is acceptable; panics are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let a = sample_artifact(3);
        let bytes = encode(&a);
        // Exhaustive over bytes is slow in debug; stride through the file
        // plus always test the first/last byte.
        let mut positions: Vec<usize> = (0..bytes.len()).step_by(7).collect();
        positions.push(bytes.len() - 1);
        for pos in positions {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[pos] ^= 1 << bit;
                assert!(
                    decode(&corrupted, Some(a.key)).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn alien_key_is_rejected() {
        let a = sample_artifact(4);
        let bytes = encode(&a);
        let wrong = ArtifactKey {
            adg_fp: a.key.adg_fp ^ 1,
            ..a.key
        };
        match decode(&bytes, Some(wrong)) {
            Err(RecordError::AlienKey { found, expected }) => {
                assert_eq!(found, a.key);
                assert_eq!(expected, wrong);
            }
            other => panic!("expected AlienKey, got {other:?}"),
        }
    }

    #[test]
    fn frame_boundaries_cover_all_five_chunks() {
        let bytes = encode(&sample_artifact(5));
        let bounds = frame_boundaries(&bytes);
        // magic + KEY + PLACEMENT + ROUTES + CONFIG + END.
        assert_eq!(bounds.len(), 6);
        assert_eq!(bounds[0], MAGIC.len());
        assert_eq!(*bounds.last().unwrap(), bytes.len());
    }

    #[test]
    fn digest_mismatch_is_its_own_error() {
        let a = sample_artifact(6);
        let mut bytes = encode(&a);
        // Rewrite the stored digest inside the KEY chunk and re-CRC the
        // chunk, so framing passes but the semantic check must fire.
        let key_payload_start = MAGIC.len() + 8;
        let digest_at = key_payload_start + 24;
        for (i, b) in 0xDEAD_BEEFu64.to_le_bytes().iter().enumerate() {
            bytes[digest_at + i] = *b;
        }
        let key_len = 8 * 6 + 4;
        let crc = dsagen_hwgen::crc32(&bytes[key_payload_start..key_payload_start + key_len]);
        let crc_at = MAGIC.len() + 4;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        match decode(&bytes, Some(a.key)) {
            Err(RecordError::DigestMismatch { stored, .. }) => {
                assert_eq!(stored, 0xDEAD_BEEF);
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }
}
