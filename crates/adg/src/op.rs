//! Functional-unit opcodes and capability sets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An operation a processing element's functional units may support.
///
/// PEs "specify a set of instructions which are to be supported; functional
/// units which support the required functions will be selected during
/// hardware generation" (§III-A). The opcode set of a PE is represented by
/// [`OpSet`].
///
/// Each opcode carries a default pipeline latency ([`Opcode::latency`]) used
/// by the scheduler's static-timing pass and by the cycle-level simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Opcode {
    // Integer arithmetic.
    Add = 0,
    Sub,
    Mul,
    Div,
    Rem,
    Abs,
    Min,
    Max,
    // Multiply-accumulate (compound FU, §V-C "functional units which support
    // multiple functions").
    Mac,
    // Bitwise / shifts.
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    // Comparisons (produce a predicate value).
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    // Predication: `Select(pred, a, b)` — the §IV-C control-to-data
    // transformation lowers branches into this.
    Select,
    // Floating point.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMac,
    FSqrt,
    FMin,
    FMax,
    FCmpLt,
    // Sigmoid-style table lookup (classifier kernels in the DenseNN suite).
    Sigmoid,
    // Pass-through / copy (routing through a PE, identity function).
    Copy,
}

impl Opcode {
    /// Total number of distinct opcodes.
    pub const COUNT: usize = 33;

    /// Every opcode, in discriminant order.
    pub const ALL: [Opcode; Opcode::COUNT] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::Abs,
        Opcode::Min,
        Opcode::Max,
        Opcode::Mac,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::CmpEq,
        Opcode::CmpNe,
        Opcode::CmpLt,
        Opcode::CmpLe,
        Opcode::CmpGt,
        Opcode::CmpGe,
        Opcode::Select,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FMac,
        Opcode::FSqrt,
        Opcode::FMin,
        Opcode::FMax,
        Opcode::FCmpLt,
        Opcode::Sigmoid,
        Opcode::Copy,
    ];

    /// Pipeline latency in cycles for a 64-bit instance of this operation.
    ///
    /// These mirror typical CGRA FU latencies: single-cycle ALU ops,
    /// pipelined multipliers, long dividers/square roots.
    #[must_use]
    pub fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Add | Sub | Abs | Min | Max | And | Or | Xor | Not | Shl | Shr | CmpEq | CmpNe
            | CmpLt | CmpLe | CmpGt | CmpGe | Select | Copy => 1,
            Mul | Mac => 3,
            FAdd | FSub | FMin | FMax | FCmpLt => 3,
            FMul | FMac => 4,
            Sigmoid => 4,
            Div | Rem => 12,
            FDiv => 14,
            FSqrt => 16,
        }
    }

    /// Whether this is a floating-point operation (distinct FU family for
    /// area/power modeling, §VII "for floating-point units…").
    #[must_use]
    pub fn is_floating_point(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FMac | FSqrt | FMin | FMax | FCmpLt | Sigmoid
        )
    }

    /// Whether this opcode produces a single-bit predicate.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        use Opcode::*;
        matches!(self, CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | FCmpLt)
    }

    /// Number of input operands.
    #[must_use]
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            Not | Abs | FSqrt | Sigmoid | Copy => 1,
            Select | Mac | FMac => 3,
            _ => 2,
        }
    }

    /// Evaluates the operation on scalar operands (numeric semantics used
    /// by the functional interpreter). Values travel as `f64`; integer and
    /// bitwise operations truncate through `i64`. Comparisons return 1.0
    /// or 0.0; `Select` picks `b` when the predicate `a` is nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` does not match [`Opcode::arity`].
    #[must_use]
    pub fn eval_scalar(self, args: &[f64]) -> f64 {
        use Opcode::*;
        assert_eq!(args.len(), self.arity(), "{self}: wrong operand count");
        let int = |x: f64| x as i64;
        match self {
            Add => ((int(args[0])).wrapping_add(int(args[1]))) as f64,
            Sub => ((int(args[0])).wrapping_sub(int(args[1]))) as f64,
            Mul => ((int(args[0])).wrapping_mul(int(args[1]))) as f64,
            Div => {
                let d = int(args[1]);
                if d == 0 { 0.0 } else { (int(args[0]) / d) as f64 }
            }
            Rem => {
                let d = int(args[1]);
                if d == 0 { 0.0 } else { (int(args[0]) % d) as f64 }
            }
            Abs => (int(args[0]).wrapping_abs()) as f64,
            Min => args[0].min(args[1]),
            Max => args[0].max(args[1]),
            Mac => ((int(args[0])).wrapping_mul(int(args[1])).wrapping_add(int(args[2]))) as f64,
            And => (int(args[0]) & int(args[1])) as f64,
            Or => (int(args[0]) | int(args[1])) as f64,
            Xor => (int(args[0]) ^ int(args[1])) as f64,
            Not => (!int(args[0])) as f64,
            Shl => ((int(args[0])) << (int(args[1]).clamp(0, 63))) as f64,
            Shr => ((int(args[0])) >> (int(args[1]).clamp(0, 63))) as f64,
            CmpEq => f64::from(args[0] == args[1]),
            CmpNe => f64::from(args[0] != args[1]),
            CmpLt | FCmpLt => f64::from(args[0] < args[1]),
            CmpLe => f64::from(args[0] <= args[1]),
            CmpGt => f64::from(args[0] > args[1]),
            CmpGe => f64::from(args[0] >= args[1]),
            Select => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            FAdd => args[0] + args[1],
            FSub => args[0] - args[1],
            FMul => args[0] * args[1],
            FDiv => args[0] / args[1],
            FMac => args[0] * args[1] + args[2],
            FSqrt => args[0].sqrt(),
            FMin => args[0].min(args[1]),
            FMax => args[0].max(args[1]),
            Sigmoid => 1.0 / (1.0 + (-args[0]).exp()),
            Copy => args[0],
        }
    }

    /// Whether a decomposable FU for this opcode can be split into
    /// power-of-two narrower lanes (§III-A "decomposable FUs").
    ///
    /// Fixed-point ALU-style ops decompose cleanly; dividers, square roots
    /// and floating-point units do not (§VI: the generator "is not currently
    /// able to reuse the alignment circuit of the floating-point divider").
    #[must_use]
    pub fn is_decomposable(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub | Mul | Mac | Abs | Min | Max | And | Or | Xor | Not | Shl | Shr | CmpEq
                | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | Select | Copy
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A set of opcodes, stored as a bitset.
///
/// # Example
///
/// ```
/// use dsagen_adg::{OpSet, Opcode};
///
/// let alu = OpSet::integer_alu();
/// assert!(alu.contains(Opcode::Add));
/// assert!(!alu.contains(Opcode::FDiv));
/// let both = alu.union(OpSet::floating_point());
/// assert!(both.contains(Opcode::FDiv));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct OpSet(u64);

impl OpSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        OpSet(0)
    }

    /// A set containing every opcode.
    #[must_use]
    pub fn all() -> Self {
        let mut s = OpSet::new();
        for op in Opcode::ALL {
            s.insert(op);
        }
        s
    }

    /// Integer ALU operations (add/sub/logic/shift/compare/select/min/max).
    #[must_use]
    pub fn integer_alu() -> Self {
        use Opcode::*;
        OpSet::from_iter([
            Add, Sub, Abs, Min, Max, And, Or, Xor, Not, Shl, Shr, CmpEq, CmpNe, CmpLt, CmpLe,
            CmpGt, CmpGe, Select, Copy,
        ])
    }

    /// Integer multiply family (mul, mac, div, rem).
    #[must_use]
    pub fn integer_mul() -> Self {
        use Opcode::*;
        OpSet::from_iter([Mul, Mac, Div, Rem])
    }

    /// Floating-point operations.
    #[must_use]
    pub fn floating_point() -> Self {
        use Opcode::*;
        OpSet::from_iter([FAdd, FSub, FMul, FDiv, FMac, FSqrt, FMin, FMax, FCmpLt, Sigmoid])
    }

    /// Adds an opcode; returns whether it was newly inserted.
    pub fn insert(&mut self, op: Opcode) -> bool {
        let bit = 1u64 << (op as u8);
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes an opcode; returns whether it was present.
    pub fn remove(&mut self, op: Opcode) -> bool {
        let bit = 1u64 << (op as u8);
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `op` is in the set.
    #[must_use]
    pub fn contains(self, op: Opcode) -> bool {
        self.0 & (1u64 << (op as u8)) != 0
    }

    /// Whether every opcode of `other` is in `self`.
    #[must_use]
    pub fn is_superset(self, other: OpSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: OpSet) -> OpSet {
        OpSet(self.0 & other.0)
    }

    /// Number of opcodes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the opcodes in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = Opcode> {
        Opcode::ALL.into_iter().filter(move |op| self.contains(*op))
    }

    /// Whether the set contains any floating-point opcode.
    #[must_use]
    pub fn has_floating_point(self) -> bool {
        self.iter().any(Opcode::is_floating_point)
    }
}

impl FromIterator<Opcode> for OpSet {
    fn from_iter<I: IntoIterator<Item = Opcode>>(iter: I) -> Self {
        let mut s = OpSet::new();
        for op in iter {
            s.insert(op);
        }
        s
    }
}

impl Extend<Opcode> for OpSet {
    fn extend<I: IntoIterator<Item = Opcode>>(&mut self, iter: I) {
        for op in iter {
            self.insert(op);
        }
    }
}

impl fmt::Display for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, op) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_opcodes_listed_once() {
        let mut seen = OpSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op), "{op} duplicated in ALL");
        }
        assert_eq!(seen.len(), Opcode::COUNT);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = OpSet::new();
        assert!(s.insert(Opcode::Add));
        assert!(!s.insert(Opcode::Add));
        assert!(s.contains(Opcode::Add));
        assert!(s.remove(Opcode::Add));
        assert!(!s.remove(Opcode::Add));
        assert!(s.is_empty());
    }

    #[test]
    fn family_sets_are_disjoint() {
        assert!(OpSet::integer_alu()
            .intersection(OpSet::floating_point())
            .is_empty());
        assert!(OpSet::integer_alu()
            .intersection(OpSet::integer_mul())
            .is_empty());
    }

    #[test]
    fn union_is_superset_of_both() {
        let u = OpSet::integer_alu().union(OpSet::integer_mul());
        assert!(u.is_superset(OpSet::integer_alu()));
        assert!(u.is_superset(OpSet::integer_mul()));
        assert!(!OpSet::integer_alu().is_superset(u));
    }

    #[test]
    fn latencies_positive_and_divider_slowest_fixed() {
        for op in Opcode::ALL {
            assert!(op.latency() >= 1);
        }
        assert!(Opcode::Div.latency() > Opcode::Mul.latency());
        assert!(Opcode::FSqrt.latency() > Opcode::FMul.latency());
    }

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::Mac.arity(), 3);
        assert_eq!(Opcode::Not.arity(), 1);
    }

    #[test]
    fn fp_ops_not_decomposable() {
        for op in OpSet::floating_point().iter() {
            assert!(!op.is_decomposable(), "{op}");
        }
        assert!(Opcode::Add.is_decomposable());
    }

    #[test]
    fn iter_matches_contains() {
        let s = OpSet::from_iter([Opcode::Add, Opcode::FDiv, Opcode::Select]);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![Opcode::Add, Opcode::Select, Opcode::FDiv]);
    }

    #[test]
    fn display_is_nonempty_even_for_empty_set() {
        assert_eq!(OpSet::new().to_string(), "{}");
    }
}
