//! The architecture description graph itself.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AdgError, BitWidth, CtrlSpec, EdgeId, NodeId, NodeKind, Scheduling};

/// One hardware component instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    /// The component's kind and parameters.
    pub kind: NodeKind,
    /// Optional human-readable label (used in DOT export and diagnostics).
    pub label: Option<String>,
}

impl Node {
    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }
}

/// A direct point-to-point connection between two components (§III-A
/// "Connections").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    id: EdgeId,
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Width of the connection.
    pub width: BitWidth,
}

impl Edge {
    /// This edge's id.
    #[must_use]
    pub fn id(&self) -> EdgeId {
        self.id
    }
}

/// An architecture description graph: components plus connections.
///
/// Node and edge ids are stable across removals (tombstoned slots), which
/// the DSE's schedule-repair relies on: deleting one PE invalidates only the
/// schedule entries that referenced it (§V-A).
///
/// # Example
///
/// ```
/// use dsagen_adg::*;
///
/// let mut adg = Adg::new("tiny");
/// let ctrl = adg.add_control(CtrlSpec::new());
/// let mem = adg.add_memory(MemSpec::main_memory());
/// let inp = adg.add_sync(SyncSpec::new(8));
/// let pe = adg.add_pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, OpSet::integer_alu()));
/// let out = adg.add_sync(SyncSpec::new(8));
/// adg.add_link(mem, inp)?;
/// adg.add_link(inp, pe)?;
/// adg.add_link(pe, out)?;
/// adg.add_link(out, mem)?;
/// adg.add_link(ctrl, mem)?;
/// adg.validate()?;
/// # Ok::<(), AdgError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adg {
    name: String,
    nodes: Vec<Option<Node>>,
    edges: Vec<Option<Edge>>,
    /// Outgoing edge ids per node slot.
    #[serde(skip)]
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node slot.
    #[serde(skip)]
    in_adj: Vec<Vec<EdgeId>>,
}

impl Adg {
    /// Creates an empty graph with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Adg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// The graph's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Rebuilds adjacency indices (needed after deserialization, where the
    /// adjacency vectors are skipped).
    pub fn rebuild_adjacency(&mut self) {
        self.out_adj = vec![Vec::new(); self.nodes.len()];
        self.in_adj = vec![Vec::new(); self.nodes.len()];
        for e in self.edges.iter().flatten() {
            self.out_adj[e.src.index()].push(e.id);
            self.in_adj[e.dst.index()].push(e.id);
        }
    }

    // ---------------------------------------------------------------- nodes

    /// Adds a node of arbitrary kind and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Node {
            id,
            kind,
            label: None,
        }));
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a labeled node.
    pub fn add_labeled(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = self.add_node(kind);
        self.nodes[id.index()].as_mut().expect("just added").label = Some(label.into());
        id
    }

    /// Adds a processing element.
    pub fn add_pe(&mut self, spec: crate::PeSpec) -> NodeId {
        self.add_node(NodeKind::Pe(spec))
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, spec: crate::SwitchSpec) -> NodeId {
        self.add_node(NodeKind::Switch(spec))
    }

    /// Adds a delay element.
    pub fn add_delay(&mut self, spec: crate::DelaySpec) -> NodeId {
        self.add_node(NodeKind::Delay(spec))
    }

    /// Adds a synchronization element.
    pub fn add_sync(&mut self, spec: crate::SyncSpec) -> NodeId {
        self.add_node(NodeKind::Sync(spec))
    }

    /// Adds a memory.
    pub fn add_memory(&mut self, spec: crate::MemSpec) -> NodeId {
        self.add_node(NodeKind::Memory(spec))
    }

    /// Adds the control core.
    pub fn add_control(&mut self, spec: CtrlSpec) -> NodeId {
        self.add_node(NodeKind::Control(spec))
    }

    /// Removes a node and every incident edge. Returns the removed node.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::UnknownNode`] if the node does not exist.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node, AdgError> {
        let slot = self
            .nodes
            .get_mut(id.index())
            .ok_or(AdgError::UnknownNode(id))?;
        let node = slot.take().ok_or(AdgError::UnknownNode(id))?;
        let incident: Vec<EdgeId> = self.out_adj[id.index()]
            .iter()
            .chain(self.in_adj[id.index()].iter())
            .copied()
            .collect();
        for eid in incident {
            // Self-loops appear in both lists; removal is idempotent here.
            let _ = self.remove_edge(eid);
        }
        Ok(node)
    }

    /// Looks up a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).and_then(Option::as_ref)
    }

    /// Looks up a node mutably.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// The kind of a node, or an error if it does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::UnknownNode`] if the node does not exist.
    pub fn kind(&self, id: NodeId) -> Result<&NodeKind, AdgError> {
        self.node(id).map(|n| &n.kind).ok_or(AdgError::UnknownNode(id))
    }

    /// Iterates over live nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().flatten()
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Upper bound on node indices (length of the slot vector); useful for
    /// dense side tables keyed by [`NodeId::index`].
    #[must_use]
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    // ---------------------------------------------------------------- edges

    /// Connects `src` to `dst` with the narrower of the two endpoint widths
    /// (or 64 bits when neither endpoint constrains the width).
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::UnknownNode`] if either endpoint does not exist.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, AdgError> {
        let src_w = self.kind(src)?.bitwidth();
        let dst_w = self.kind(dst)?.bitwidth();
        let width = match (src_w, dst_w) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => BitWidth::B64,
        };
        self.add_link_with_width(src, dst, width)
    }

    /// Connects `src` to `dst` with an explicit width.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::UnknownNode`] if either endpoint does not exist.
    pub fn add_link_with_width(
        &mut self,
        src: NodeId,
        dst: NodeId,
        width: BitWidth,
    ) -> Result<EdgeId, AdgError> {
        if self.node(src).is_none() {
            return Err(AdgError::UnknownNode(src));
        }
        if self.node(dst).is_none() {
            return Err(AdgError::UnknownNode(dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(Edge { id, src, dst, width }));
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        Ok(id)
    }

    /// Removes an edge. Returns the removed edge.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::UnknownEdge`] if the edge does not exist.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<Edge, AdgError> {
        let slot = self
            .edges
            .get_mut(id.index())
            .ok_or(AdgError::UnknownEdge(id))?;
        let edge = slot.take().ok_or(AdgError::UnknownEdge(id))?;
        self.out_adj[edge.src.index()].retain(|e| *e != id);
        self.in_adj[edge.dst.index()].retain(|e| *e != id);
        Ok(edge)
    }

    /// Looks up an edge.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterates over live edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().flatten()
    }

    /// Number of live edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().flatten().count()
    }

    /// Outgoing edges of a node (empty for unknown nodes).
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_adj
            .get(id.index())
            .into_iter()
            .flatten()
            .filter_map(move |eid| self.edge(*eid))
    }

    /// Incoming edges of a node (empty for unknown nodes).
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_adj
            .get(id.index())
            .into_iter()
            .flatten()
            .filter_map(move |eid| self.edge(*eid))
    }

    /// The input-port index of `edge` at its destination node, i.e. its
    /// position among the destination's incoming edges.
    #[must_use]
    pub fn input_port_of(&self, edge: EdgeId) -> Option<usize> {
        let e = self.edge(edge)?;
        self.in_adj[e.dst.index()].iter().position(|x| *x == edge)
    }

    /// The output-port index of `edge` at its source node.
    #[must_use]
    pub fn output_port_of(&self, edge: EdgeId) -> Option<usize> {
        let e = self.edge(edge)?;
        self.out_adj[e.src.index()].iter().position(|x| *x == edge)
    }

    /// Successor node ids (one entry per outgoing edge).
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(id).map(|e| e.dst)
    }

    /// Predecessor node ids (one entry per incoming edge).
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(id).map(|e| e.src)
    }

    // ------------------------------------------------------------- queries

    /// The unique control core, if exactly one exists.
    #[must_use]
    pub fn control(&self) -> Option<NodeId> {
        let mut it = self
            .nodes()
            .filter(|n| matches!(n.kind, NodeKind::Control(_)))
            .map(Node::id);
        match (it.next(), it.next()) {
            (Some(id), None) => Some(id),
            _ => None,
        }
    }

    /// Ids of all nodes of a given kind name (`"pe"`, `"switch"`, …).
    pub fn nodes_of_kind<'a>(&'a self, kind_name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.nodes()
            .filter(move |n| n.kind.kind_name() == kind_name)
            .map(Node::id)
    }

    /// All memory node ids.
    pub fn memories(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_of_kind("mem")
    }

    /// All PE node ids.
    pub fn pes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_of_kind("pe")
    }

    /// All sync-element node ids.
    pub fn syncs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_of_kind("sync")
    }

    /// All switch node ids.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_of_kind("switch")
    }

    /// Breadth-first distances (in hops, ignoring direction) from `from` to
    /// every node; unreachable nodes get `None`. Used by the configuration
    /// path generator and DSE mutation locality.
    #[must_use]
    pub fn undirected_distances(&self, from: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.nodes.len()];
        if self.node(from).is_none() {
            return dist;
        }
        dist[from.index()] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.index()].expect("queued nodes have distances");
            let neighbors: Vec<NodeId> = self
                .successors(n)
                .chain(self.predecessors(n))
                .collect();
            for m in neighbors {
                if dist[m.index()].is_none() {
                    dist[m.index()] = Some(d + 1);
                    queue.push_back(m);
                }
            }
        }
        dist
    }

    // ----------------------------------------------------------- validation

    /// Checks the composition rules of §III-B.
    ///
    /// # Errors
    ///
    /// * [`AdgError::ControlCount`] — not exactly one control core;
    /// * [`AdgError::EdgeWiderThanEndpoint`] — an edge wider than either
    ///   endpoint's datapath;
    /// * [`AdgError::MemoryFeedsStatic`] — a memory wired into a static
    ///   element without a sync element;
    /// * [`AdgError::BadParameter`] — structurally impossible parameters
    ///   (zero-slot shared PE, zero-depth sync, stream-join on a static PE,
    ///   zero-bank or zero-width memory);
    /// * [`AdgError::Unconfigurable`] — a configurable component unreachable
    ///   from the control core.
    pub fn validate(&self) -> Result<(), AdgError> {
        let ctrl_count = self
            .nodes()
            .filter(|n| matches!(n.kind, NodeKind::Control(_)))
            .count();
        if ctrl_count != 1 {
            return Err(AdgError::ControlCount(ctrl_count));
        }

        for node in self.nodes() {
            match &node.kind {
                NodeKind::Pe(pe) => {
                    if pe.sharing.instruction_slots() == 0 {
                        return Err(AdgError::BadParameter {
                            node: node.id,
                            what: "shared PE with zero instruction slots",
                        });
                    }
                    if pe.stream_join && !pe.scheduling.is_dynamic() {
                        return Err(AdgError::BadParameter {
                            node: node.id,
                            what: "stream-join requires dynamic scheduling",
                        });
                    }
                }
                NodeKind::Sync(sy) => {
                    if sy.depth == 0 || sy.lanes == 0 {
                        return Err(AdgError::BadParameter {
                            node: node.id,
                            what: "sync element needs nonzero depth and lanes",
                        });
                    }
                }
                NodeKind::Memory(m) => {
                    if m.banks == 0 || m.width_bytes == 0 || m.num_streams == 0 {
                        return Err(AdgError::BadParameter {
                            node: node.id,
                            what: "memory needs nonzero banks, width, and streams",
                        });
                    }
                    if !m.controllers.linear && !m.controllers.indirect {
                        return Err(AdgError::BadParameter {
                            node: node.id,
                            what: "memory needs at least one stream controller",
                        });
                    }
                }
                NodeKind::Switch(_) | NodeKind::Delay(_) | NodeKind::Control(_) => {}
            }
        }

        for edge in self.edges() {
            let src = self.kind(edge.src)?;
            let dst = self.kind(edge.dst)?;
            for (node, kind) in [(edge.src, src), (edge.dst, dst)] {
                if let Some(w) = kind.bitwidth() {
                    if edge.width > w {
                        return Err(AdgError::EdgeWiderThanEndpoint {
                            edge: edge.id,
                            node,
                        });
                    }
                }
            }
            // Memories must feed sync elements before any static element
            // sees the data (§III-A/B). Control links are exempt: they carry
            // commands, not datapath values.
            if matches!(src, NodeKind::Memory(_))
                && dst.input_tolerance() == Scheduling::Static
                && !matches!(dst, NodeKind::Sync(_))
            {
                return Err(AdgError::MemoryFeedsStatic { edge: edge.id });
            }
        }

        // Configurability: every configurable node must be reachable from
        // the control core over undirected links.
        let ctrl = self.control().expect("checked above");
        let dist = self.undirected_distances(ctrl);
        for node in self.nodes() {
            if node.kind.is_configurable() && dist[node.id.index()].is_none() {
                return Err(AdgError::Unconfigurable { node: node.id });
            }
        }
        Ok(())
    }

    /// Whether a *value* (datapath) edge from `src` to `dst` is legal under
    /// the execution-model composition rules the compiler enforces (§III-B):
    /// dynamically-timed outputs may not feed elements that require static
    /// timing, except through sync elements.
    #[must_use]
    pub fn value_edge_legal(&self, src: NodeId, dst: NodeId) -> bool {
        let (Ok(s), Ok(d)) = (self.kind(src), self.kind(dst)) else {
            return false;
        };
        match (s.output_timing(), d.input_tolerance()) {
            // Static producer, static consumer: fine.
            (Scheduling::Static, Scheduling::Static) => true,
            // Anything into a dynamic-tolerant consumer (dynamic PE, sync,
            // memory): fine — flow control absorbs timing differences.
            (_, Scheduling::Dynamic) => true,
            // Dynamic producer into a static consumer: only legal if the
            // producer is itself a sync element (whose departures are
            // statically coordinated).
            (Scheduling::Dynamic, Scheduling::Static) => matches!(s, NodeKind::Sync(_)),
        }
    }
}

/// Equality is *semantic*: same name, same live nodes and edges at the
/// same ids. Trailing tombstoned slots and the derived adjacency indices
/// do not participate, so a graph equals its serialized-and-reparsed twin.
impl PartialEq for Adg {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nodes().eq(other.nodes())
            && self.nodes().map(Node::id).eq(other.nodes().map(Node::id))
            && self.edges().eq(other.edges())
    }
}

impl fmt::Display for Adg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adg '{}': {} nodes, {} edges",
            self.name,
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemSpec, OpSet, PeSpec, Sharing, SwitchSpec, SyncSpec};

    fn small() -> (Adg, NodeId, NodeId, NodeId, NodeId) {
        let mut adg = Adg::new("t");
        let ctrl = adg.add_control(CtrlSpec::new());
        let mem = adg.add_memory(MemSpec::main_memory());
        let sy = adg.add_sync(SyncSpec::new(8));
        let pe = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        adg.add_link(ctrl, mem).unwrap();
        adg.add_link(mem, sy).unwrap();
        adg.add_link(sy, pe).unwrap();
        (adg, ctrl, mem, sy, pe)
    }

    #[test]
    fn add_and_query_nodes() {
        let (adg, ctrl, mem, sy, pe) = small();
        assert_eq!(adg.node_count(), 4);
        assert_eq!(adg.control(), Some(ctrl));
        assert_eq!(adg.memories().collect::<Vec<_>>(), vec![mem]);
        assert_eq!(adg.syncs().collect::<Vec<_>>(), vec![sy]);
        assert_eq!(adg.pes().collect::<Vec<_>>(), vec![pe]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (adg, ..) = small();
        adg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_control() {
        let mut adg = Adg::new("t");
        adg.add_memory(MemSpec::main_memory());
        assert_eq!(adg.validate(), Err(AdgError::ControlCount(0)));
    }

    #[test]
    fn validate_rejects_memory_into_static_pe() {
        let (mut adg, _, mem, _, pe) = small();
        let bad = adg.add_link(mem, pe).unwrap();
        assert_eq!(adg.validate(), Err(AdgError::MemoryFeedsStatic { edge: bad }));
    }

    #[test]
    fn validate_rejects_stream_join_on_static_pe() {
        let (mut adg, ..) = small();
        let spec = PeSpec::new(Scheduling::Static, Sharing::Dedicated, OpSet::integer_alu())
            .with_stream_join(true);
        let bad = adg.add_pe(spec);
        // Wire it so it is configurable.
        let sy = adg.syncs().next().unwrap();
        adg.add_link(sy, bad).unwrap();
        assert!(matches!(
            adg.validate(),
            Err(AdgError::BadParameter { node, .. }) if node == bad
        ));
    }

    #[test]
    fn validate_rejects_unreachable_component() {
        let (mut adg, ..) = small();
        let island = adg.add_switch(SwitchSpec::new(BitWidth::B64));
        assert_eq!(
            adg.validate(),
            Err(AdgError::Unconfigurable { node: island })
        );
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut adg, _, mem, sy, _) = small();
        let edges_before = adg.edge_count();
        adg.remove_node(sy).unwrap();
        assert_eq!(adg.node_count(), 3);
        assert_eq!(adg.edge_count(), edges_before - 2);
        assert!(adg.node(sy).is_none());
        assert_eq!(adg.out_edges(mem).count(), 0);
    }

    #[test]
    fn node_ids_stable_after_removal() {
        let (mut adg, _, mem, sy, pe) = small();
        adg.remove_node(sy).unwrap();
        assert!(adg.node(mem).is_some());
        assert!(adg.node(pe).is_some());
        let new = adg.add_pe(PeSpec::new(
            Scheduling::Dynamic,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        assert_ne!(new, sy, "fresh ids are never recycled");
    }

    #[test]
    fn double_remove_errors() {
        let (mut adg, _, _, sy, _) = small();
        adg.remove_node(sy).unwrap();
        assert_eq!(adg.remove_node(sy), Err(AdgError::UnknownNode(sy)));
    }

    #[test]
    fn value_edge_legality() {
        let (mut adg, _, mem, sy, static_pe) = small();
        let dyn_pe = adg.add_pe(PeSpec::new(
            Scheduling::Dynamic,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        // memory → sync: legal; memory → static PE: illegal; memory → dynamic PE: legal.
        assert!(adg.value_edge_legal(mem, sy));
        assert!(!adg.value_edge_legal(mem, static_pe));
        assert!(adg.value_edge_legal(mem, dyn_pe));
        // sync → static PE: legal (that is its purpose).
        assert!(adg.value_edge_legal(sy, static_pe));
        // dynamic PE → static PE: illegal without a sync element.
        assert!(!adg.value_edge_legal(dyn_pe, static_pe));
        // static PE → dynamic PE: legal (dynamic inputs tolerate anything).
        assert!(adg.value_edge_legal(static_pe, dyn_pe));
    }

    #[test]
    fn undirected_distances_cover_graph() {
        let (adg, ctrl, ..) = small();
        let dist = adg.undirected_distances(ctrl);
        assert_eq!(dist[ctrl.index()], Some(0));
        assert!(dist.iter().all(Option::is_some));
    }

    #[test]
    fn ports_are_positions_in_adjacency() {
        let (adg, _, mem, sy, _) = small();
        let e = adg
            .edges()
            .find(|e| e.src == mem && e.dst == sy)
            .unwrap()
            .id();
        assert_eq!(adg.input_port_of(e), Some(0));
        assert_eq!(adg.output_port_of(e), Some(0));
    }

    #[test]
    fn display_mentions_counts() {
        let (adg, ..) = small();
        let s = adg.to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("3 edges"));
    }
}
