//! Modular spatial-architecture component specifications (§III-A).

use serde::{Deserialize, Serialize};

use crate::{BitWidth, OpSet};

/// Execution-timing model of a PE or switch (§III-A "Dynamic vs Static
/// Scheduling").
///
/// Statically-scheduled elements have the order of all operations and data
/// arrivals determined by the compiler; dynamically-scheduled elements
/// choose operations based on data arrival, paying extra power/area for
/// operand-readiness checks and network flow control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduling {
    /// Compiler-determined timing; cheapest hardware.
    Static,
    /// Dataflow firing on operand arrival; supports control-dependent
    /// behaviour such as stream-join.
    Dynamic,
}

impl Scheduling {
    /// Whether this is [`Scheduling::Dynamic`].
    #[must_use]
    pub fn is_dynamic(self) -> bool {
        matches!(self, Scheduling::Dynamic)
    }
}

/// Instruction-residency model of a PE or switch (§III-A "Dedicated vs
/// Shared").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sharing {
    /// Exactly one instruction or routing decision; full throughput.
    Dedicated,
    /// Temporally multiplexes up to `max_instructions` static instructions;
    /// more concurrency at area/power and initiation-interval cost.
    Shared {
        /// Capacity of the instruction buffer (must be ≥ 2 to be meaningful).
        max_instructions: u8,
    },
}

impl Sharing {
    /// Number of instruction slots this element provides.
    #[must_use]
    pub fn instruction_slots(self) -> u32 {
        match self {
            Sharing::Dedicated => 1,
            Sharing::Shared { max_instructions } => u32::from(max_instructions),
        }
    }

    /// Whether this is a shared (temporal) element.
    #[must_use]
    pub fn is_shared(self) -> bool {
        matches!(self, Sharing::Shared { .. })
    }
}

/// A processing element.
///
/// # Example
///
/// ```
/// use dsagen_adg::{PeSpec, Scheduling, Sharing, OpSet, BitWidth};
///
/// let pe = PeSpec::new(Scheduling::Dynamic, Sharing::Dedicated, OpSet::integer_alu())
///     .with_stream_join(true)
///     .with_bitwidth(BitWidth::B64);
/// assert!(pe.stream_join);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeSpec {
    /// Static or dynamic instruction scheduling.
    pub scheduling: Scheduling,
    /// Dedicated or shared (temporal) instruction residency.
    pub sharing: Sharing,
    /// Opcodes the PE's functional units must support.
    pub ops: OpSet,
    /// Datapath width.
    pub bitwidth: BitWidth,
    /// Whether FUs may be decomposed into power-of-two narrower lanes.
    pub decomposable: bool,
    /// Stream-join control: conditionally reuse inputs or abstain from
    /// computation (§III-A; requires dynamic scheduling).
    pub stream_join: bool,
    /// Depth of the per-operand input buffers (dynamic PEs only).
    pub input_buffer_depth: u8,
}

impl PeSpec {
    /// Creates a PE spec with default 64-bit width, no decomposability, no
    /// stream-join, and 4-deep input buffers.
    #[must_use]
    pub fn new(scheduling: Scheduling, sharing: Sharing, ops: OpSet) -> Self {
        PeSpec {
            scheduling,
            sharing,
            ops,
            bitwidth: BitWidth::B64,
            decomposable: false,
            stream_join: false,
            input_buffer_depth: 4,
        }
    }

    /// Sets the datapath width.
    #[must_use]
    pub fn with_bitwidth(mut self, bitwidth: BitWidth) -> Self {
        self.bitwidth = bitwidth;
        self
    }

    /// Sets FU decomposability.
    #[must_use]
    pub fn with_decomposable(mut self, decomposable: bool) -> Self {
        self.decomposable = decomposable;
        self
    }

    /// Sets stream-join support (only meaningful with dynamic scheduling).
    #[must_use]
    pub fn with_stream_join(mut self, stream_join: bool) -> Self {
        self.stream_join = stream_join;
        self
    }

    /// Whether this PE can host control-dependent data reuse, i.e. the
    /// stream-join transformation of §IV-E.
    #[must_use]
    pub fn supports_stream_join(&self) -> bool {
        self.stream_join && self.scheduling.is_dynamic()
    }
}

/// Routing capability of a switch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// Any input may be routed to any output.
    FullCrossbar,
    /// `matrix[i][o]` says whether input port `i` may drive output port `o`.
    Matrix(Vec<Vec<bool>>),
}

impl Routing {
    /// Whether input port `input` may drive output port `output`.
    ///
    /// Ports beyond the matrix bounds are treated as unconnectable.
    #[must_use]
    pub fn allows(&self, input: usize, output: usize) -> bool {
        match self {
            Routing::FullCrossbar => true,
            Routing::Matrix(m) => m.get(input).is_some_and(|row| row.get(output) == Some(&true)),
        }
    }
}

/// A network switch (§III-A "Switches").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Timing model of the routing decisions.
    pub scheduling: Scheduling,
    /// Dedicated routing or temporally-shared routing slots.
    pub sharing: Sharing,
    /// Datapath width.
    pub bitwidth: BitWidth,
    /// Finest granularity the switch can route independently, when
    /// decomposable (§III-A: "route power-of-two finer-grain datatypes
    /// independently"). `None` means not decomposable.
    pub decompose_to: Option<BitWidth>,
    /// Whether the output is flopped; un-flopped switches let a compound
    /// routing stage execute in a single cycle, at timing-closure risk.
    /// The DSE fixes this to `true` (§V-D).
    pub flop_output: bool,
    /// Which input→output port pairs are connectable.
    pub routing: Routing,
}

impl SwitchSpec {
    /// Creates a statically-scheduled, dedicated, flopped full-crossbar
    /// switch of the given width.
    #[must_use]
    pub fn new(bitwidth: BitWidth) -> Self {
        SwitchSpec {
            scheduling: Scheduling::Static,
            sharing: Sharing::Dedicated,
            bitwidth,
            decompose_to: None,
            flop_output: true,
            routing: Routing::FullCrossbar,
        }
    }

    /// Sets the timing model.
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Makes the switch decomposable down to `width`.
    #[must_use]
    pub fn with_decompose_to(mut self, width: BitWidth) -> Self {
        self.decompose_to = Some(width);
        self
    }

    /// Restricts routing to an explicit connectivity matrix.
    #[must_use]
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Number of independent sub-word lanes the switch can route.
    #[must_use]
    pub fn lanes(&self) -> u16 {
        match self.decompose_to {
            Some(fine) => self.bitwidth.lanes_of(fine).max(1),
            None => 1,
        }
    }
}

/// A delay element: a FIFO used for pipeline balancing (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DelaySpec {
    /// Maximum configurable delay in cycles (FIFO depth).
    pub depth: u8,
    /// Static delay elements offer a fixed compiler-chosen delay; dynamic
    /// ones drain opportunistically.
    pub scheduling: Scheduling,
    /// Datapath width.
    pub bitwidth: BitWidth,
}

impl DelaySpec {
    /// Creates a static delay FIFO of the given depth and 64-bit width.
    #[must_use]
    pub fn new(depth: u8) -> Self {
        DelaySpec {
            depth,
            scheduling: Scheduling::Static,
            bitwidth: BitWidth::B64,
        }
    }
}

/// A synchronization element (vector port, §III-A).
///
/// Sync elements are FIFO buffers coordinated by programmable ready-logic;
/// they fire (read-and-pop) a group of inputs simultaneously so that
/// statically-scheduled consumers can reason about timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyncSpec {
    /// FIFO depth in entries.
    pub depth: u16,
    /// Width of one entry.
    pub bitwidth: BitWidth,
    /// Number of scalar lanes grouped by the ready logic (vector width).
    pub lanes: u8,
}

impl SyncSpec {
    /// Creates a sync element with the given depth, 64-bit entries, and a
    /// single lane.
    #[must_use]
    pub fn new(depth: u16) -> Self {
        SyncSpec {
            depth,
            bitwidth: BitWidth::B64,
            lanes: 1,
        }
    }

    /// Sets the number of grouped lanes.
    #[must_use]
    pub fn with_lanes(mut self, lanes: u8) -> Self {
        self.lanes = lanes;
        self
    }

    /// Total buffered capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.depth) * u64::from(self.bitwidth.bytes()) * u64::from(self.lanes)
    }
}

/// What backs a memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// On-chip scratchpad, explicitly managed.
    Scratchpad,
    /// Interface to the shared cache hierarchy (the paper integrates
    /// accelerators to a 75 GB/s L2, §VII).
    MainMemory,
}

/// Which stream controllers a memory provides (§III-A "Memories").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemControllers {
    /// Linear controller: inductive 2-D affine streams (REVEL-style).
    pub linear: bool,
    /// Indirect controller: `a[b[i]]`-style gather/scatter (SPU-style).
    pub indirect: bool,
    /// Atomic read-modify-write compute units embedded in each bank
    /// (`a[b[i]] += v`).
    pub atomic_update: bool,
    /// Request coalescing for strided access (§III-C potential feature:
    /// "we could implement memory coalescing; irregular access is currently
    /// supported through banking"): merges same-line strided requests.
    pub coalescing: bool,
}

impl MemControllers {
    /// Linear streams only.
    #[must_use]
    pub fn linear_only() -> Self {
        MemControllers {
            linear: true,
            indirect: false,
            atomic_update: false,
            coalescing: false,
        }
    }

    /// Linear + indirect + atomic-update controllers (no coalescing — the
    /// paper's full-capability point; coalescing is the §III-C extension).
    #[must_use]
    pub fn full() -> Self {
        MemControllers {
            linear: true,
            indirect: true,
            atomic_update: true,
            coalescing: false,
        }
    }

    /// Enables request coalescing.
    #[must_use]
    pub fn with_coalescing(mut self) -> Self {
        self.coalescing = true;
        self
    }
}

/// A decoupled memory (§III-A "Memories").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemSpec {
    /// Scratchpad or main-memory interface.
    pub kind: MemKind,
    /// Capacity in bytes (scratchpads) or effectively unbounded for main
    /// memory (still recorded for the model).
    pub capacity_bytes: u64,
    /// Bytes deliverable per cycle (line width).
    pub width_bytes: u32,
    /// Number of concurrent streams the memory arbitrates.
    pub num_streams: u8,
    /// Number of banks (1 = unbanked; banking supplies irregular-access
    /// bandwidth in lieu of coalescing, §III-C).
    pub banks: u8,
    /// Available stream controllers.
    pub controllers: MemControllers,
}

impl MemSpec {
    /// An unbanked scratchpad with linear streams. Stream-dataflow
    /// scratchpads arbitrate many concurrent streams (one per active
    /// vector port).
    #[must_use]
    pub fn scratchpad(capacity_bytes: u64, width_bytes: u32) -> Self {
        MemSpec {
            kind: MemKind::Scratchpad,
            capacity_bytes,
            width_bytes,
            num_streams: 16,
            banks: 1,
            controllers: MemControllers::linear_only(),
        }
    }

    /// A main-memory (L2) interface with the paper's 75 GB/s ≈ 64 B/cycle
    /// envelope at 1 GHz (§VII rounds to a cache-line width; we use 64 B).
    #[must_use]
    pub fn main_memory() -> Self {
        MemSpec {
            kind: MemKind::MainMemory,
            capacity_bytes: u64::MAX,
            width_bytes: 64,
            num_streams: 8,
            banks: 1,
            controllers: MemControllers::linear_only(),
        }
    }

    /// Sets the bank count.
    #[must_use]
    pub fn with_banks(mut self, banks: u8) -> Self {
        self.banks = banks;
        self
    }

    /// Sets the available controllers.
    #[must_use]
    pub fn with_controllers(mut self, controllers: MemControllers) -> Self {
        self.controllers = controllers;
        self
    }

    /// Sets the number of concurrent streams.
    #[must_use]
    pub fn with_streams(mut self, num_streams: u8) -> Self {
        self.num_streams = num_streams;
        self
    }
}

/// What implements the control function (§III-C "Alternate Control Cores":
/// "for designs that do not require programmability, we could replace the
/// control core with much simpler FSMs or even a simple fixed stream RAM").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtrlKind {
    /// A programmable core with a stream-dataflow ISA; can execute scalar
    /// fallback code (§IV-C).
    ProgrammableCore,
    /// A fixed-function command sequencer: far cheaper, but kernels whose
    /// compiled version needs scalar fallback work cannot run.
    Fsm,
}

/// The control core (§III-A "Control"): distributes stream-dataflow
/// commands to every other component and synchronizes program phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CtrlSpec {
    /// Programmable core or fixed-function sequencer.
    pub kind: CtrlKind,
    /// Cycles to issue one stream command to a component.
    pub command_issue_cycles: u32,
    /// Cycles to execute one scalar fallback instruction on the core (used
    /// when a modular transformation is unavailable and the compiler falls
    /// back to scalar code, §IV-C). Irrelevant for [`CtrlKind::Fsm`].
    pub scalar_op_cycles: u32,
}

impl CtrlSpec {
    /// A programmable control core with single-cycle command issue and
    /// scalar ops.
    #[must_use]
    pub fn new() -> Self {
        CtrlSpec {
            kind: CtrlKind::ProgrammableCore,
            command_issue_cycles: 1,
            scalar_op_cycles: 1,
        }
    }

    /// A fixed-function FSM sequencer (§III-C potential feature).
    #[must_use]
    pub fn fsm() -> Self {
        CtrlSpec {
            kind: CtrlKind::Fsm,
            command_issue_cycles: 1,
            scalar_op_cycles: 1,
        }
    }

    /// Whether this control implementation can run scalar fallback code.
    #[must_use]
    pub fn is_programmable(&self) -> bool {
        self.kind == CtrlKind::ProgrammableCore
    }
}

impl Default for CtrlSpec {
    fn default() -> Self {
        CtrlSpec::new()
    }
}

/// The kind and parameters of one ADG node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum NodeKind {
    /// Processing element.
    Pe(PeSpec),
    /// Network switch.
    Switch(SwitchSpec),
    /// Delay FIFO.
    Delay(DelaySpec),
    /// Synchronization element (vector port).
    Sync(SyncSpec),
    /// Decoupled memory.
    Memory(MemSpec),
    /// Control core.
    Control(CtrlSpec),
}

impl NodeKind {
    /// Short kind name for display and DOT export.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Pe(_) => "pe",
            NodeKind::Switch(_) => "switch",
            NodeKind::Delay(_) => "delay",
            NodeKind::Sync(_) => "sync",
            NodeKind::Memory(_) => "mem",
            NodeKind::Control(_) => "ctrl",
        }
    }

    /// Datapath width of the node, if it has one.
    #[must_use]
    pub fn bitwidth(&self) -> Option<BitWidth> {
        match self {
            NodeKind::Pe(pe) => Some(pe.bitwidth),
            NodeKind::Switch(sw) => Some(sw.bitwidth),
            NodeKind::Delay(d) => Some(d.bitwidth),
            NodeKind::Sync(sy) => Some(sy.bitwidth),
            NodeKind::Memory(_) | NodeKind::Control(_) => None,
        }
    }

    /// The timing model of the node's *outputs*: does data leave at
    /// compiler-known times (static) or data-dependent times (dynamic)?
    ///
    /// Memories and the control core are inherently dynamic; sync elements
    /// convert dynamic arrivals into static departures; delay elements keep
    /// their configured model.
    #[must_use]
    pub fn output_timing(&self) -> Scheduling {
        match self {
            NodeKind::Pe(pe) => pe.scheduling,
            NodeKind::Switch(sw) => sw.scheduling,
            NodeKind::Delay(d) => d.scheduling,
            NodeKind::Sync(_) => Scheduling::Static,
            NodeKind::Memory(_) | NodeKind::Control(_) => Scheduling::Dynamic,
        }
    }

    /// The timing model the node *tolerates on its inputs*. Sync elements
    /// and dynamic elements absorb dynamically-timed data; static elements
    /// require statically-timed arrivals.
    #[must_use]
    pub fn input_tolerance(&self) -> Scheduling {
        match self {
            NodeKind::Sync(_) | NodeKind::Memory(_) | NodeKind::Control(_) => Scheduling::Dynamic,
            NodeKind::Pe(pe) => pe.scheduling,
            NodeKind::Switch(sw) => sw.scheduling,
            NodeKind::Delay(d) => d.scheduling,
        }
    }

    /// Whether the node accepts a configuration bitstream (§VI). Everything
    /// except the control core is configured over the network.
    #[must_use]
    pub fn is_configurable(&self) -> bool {
        !matches!(self, NodeKind::Control(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_slot_counts() {
        assert_eq!(Sharing::Dedicated.instruction_slots(), 1);
        assert_eq!(
            Sharing::Shared {
                max_instructions: 8
            }
            .instruction_slots(),
            8
        );
    }

    #[test]
    fn stream_join_requires_dynamic() {
        let static_pe = PeSpec::new(Scheduling::Static, Sharing::Dedicated, OpSet::integer_alu())
            .with_stream_join(true);
        assert!(!static_pe.supports_stream_join());
        let dyn_pe = PeSpec::new(Scheduling::Dynamic, Sharing::Dedicated, OpSet::integer_alu())
            .with_stream_join(true);
        assert!(dyn_pe.supports_stream_join());
    }

    #[test]
    fn routing_matrix_bounds() {
        let r = Routing::Matrix(vec![vec![true, false], vec![false, true]]);
        assert!(r.allows(0, 0));
        assert!(!r.allows(0, 1));
        assert!(!r.allows(5, 0));
        assert!(Routing::FullCrossbar.allows(17, 99));
    }

    #[test]
    fn switch_lane_count() {
        let sw = SwitchSpec::new(BitWidth::B64).with_decompose_to(BitWidth::B8);
        assert_eq!(sw.lanes(), 8);
        assert_eq!(SwitchSpec::new(BitWidth::B64).lanes(), 1);
    }

    #[test]
    fn sync_capacity() {
        let sy = SyncSpec::new(16).with_lanes(4);
        assert_eq!(sy.capacity_bytes(), 16 * 8 * 4);
    }

    #[test]
    fn timing_models() {
        let mem = NodeKind::Memory(MemSpec::main_memory());
        assert_eq!(mem.output_timing(), Scheduling::Dynamic);
        assert_eq!(mem.input_tolerance(), Scheduling::Dynamic);
        let sync = NodeKind::Sync(SyncSpec::new(8));
        assert_eq!(sync.output_timing(), Scheduling::Static);
        assert_eq!(sync.input_tolerance(), Scheduling::Dynamic);
    }

    #[test]
    fn control_is_not_configurable() {
        assert!(!NodeKind::Control(CtrlSpec::new()).is_configurable());
        assert!(NodeKind::Sync(SyncSpec::new(2)).is_configurable());
    }
}
