//! Error type for ADG construction and validation.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced while building or validating an architecture description
/// graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdgError {
    /// A bit width was zero, not a power of two, or too large.
    InvalidBitWidth(u16),
    /// An operation referenced a node id that is not in the graph.
    UnknownNode(NodeId),
    /// An operation referenced an edge id that is not in the graph.
    UnknownEdge(EdgeId),
    /// An edge's width exceeds the datapath width of one of its endpoints.
    EdgeWiderThanEndpoint {
        /// The offending edge.
        edge: EdgeId,
        /// The endpoint whose datapath is too narrow.
        node: NodeId,
    },
    /// A value connection flows from a statically-scheduled element into a
    /// dynamically-scheduled element without an intervening synchronization
    /// element (§III-B).
    StaticFeedsDynamic {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A memory's output is wired directly into a statically-scheduled
    /// element instead of a synchronization element (§III-A: sync elements
    /// are "the interface between dynamically scheduled elements (e.g.
    /// memory…) and static elements").
    MemoryFeedsStatic {
        /// The offending edge.
        edge: EdgeId,
    },
    /// The graph has no control core, or more than one.
    ControlCount(usize),
    /// A component has a structurally impossible parameter (e.g. a shared PE
    /// with zero instruction slots).
    BadParameter {
        /// The offending node.
        node: NodeId,
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// The control core cannot reach every configurable component, so no
    /// configuration path can cover the graph (§VI).
    Unconfigurable {
        /// A component unreachable from the control core.
        node: NodeId,
    },
}

impl fmt::Display for AdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdgError::InvalidBitWidth(bits) => {
                write!(f, "invalid bit width {bits}: must be a power of two in 1..=4096")
            }
            AdgError::UnknownNode(id) => write!(f, "unknown node {id}"),
            AdgError::UnknownEdge(id) => write!(f, "unknown edge {id}"),
            AdgError::EdgeWiderThanEndpoint { edge, node } => {
                write!(f, "edge {edge} is wider than the datapath of node {node}")
            }
            AdgError::StaticFeedsDynamic { edge } => write!(
                f,
                "edge {edge} routes a static-scheduled output into a dynamic-scheduled input without a synchronization element"
            ),
            AdgError::MemoryFeedsStatic { edge } => write!(
                f,
                "edge {edge} wires a memory directly into a static-scheduled element; memories must feed synchronization elements"
            ),
            AdgError::ControlCount(n) => {
                write!(f, "graph must contain exactly one control core, found {n}")
            }
            AdgError::BadParameter { node, what } => {
                write!(f, "node {node} has an invalid parameter: {what}")
            }
            AdgError::Unconfigurable { node } => write!(
                f,
                "node {node} is unreachable from the control core; no configuration path can cover it"
            ),
        }
    }
}

impl Error for AdgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let errs = [
            AdgError::InvalidBitWidth(3),
            AdgError::UnknownNode(NodeId::from_index(1)),
            AdgError::ControlCount(0),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AdgError>();
    }
}
