//! Stable structural fingerprinting of [`Adg`]s.
//!
//! The design-space explorer evaluates thousands of candidate graphs, most
//! of which revisit structures seen before (reverted mutations, parallel
//! shards converging on the same design, the no-op opening trim). A stable
//! 64-bit fingerprint of the graph structure lets downstream layers — the
//! DSE schedule cache in particular — key memoized work by *what the
//! hardware is* rather than *which `Adg` instance described it*.
//!
//! Two fingerprints are provided:
//!
//! * [`Adg::fingerprint`] — the whole graph. Equal fingerprints are
//!   intended to coincide with the [`Adg`]'s semantic equality ([`PartialEq`]:
//!   same name, same live nodes and edges at the same ids; trailing
//!   tombstoned slots and derived adjacency do not participate).
//! * [`Adg::footprint_fingerprint`] — a *subgraph* restricted to an
//!   explicit node/edge set (a schedule's placements and routes). If that
//!   footprint is byte-for-byte intact across a mutation, a previously
//!   legal schedule can be rebased onto the mutated graph without a fresh
//!   stochastic scheduling pass.
//!
//! Stability: the hash is FNV-1a over an explicitly little-endian encoding
//! ([`StableHasher`]), so fingerprints are identical across platforms,
//! processes, and runs — they are safe to memoize, snapshot, and compare
//! across thread counts.

use std::hash::{Hash, Hasher};

use crate::graph::Adg;
use crate::ids::{EdgeId, NodeId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, platform-independent 64-bit hasher (FNV-1a).
///
/// Unlike [`std::collections::hash_map::DefaultHasher`], this hasher is
/// unkeyed and encodes every integer write in little-endian byte order, so
/// the same value sequence produces the same digest on every platform and
/// in every process. Use it for fingerprints that are stored, compared
/// across runs, or used as memoization keys.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // Pin every integer write to little-endian so digests do not depend on
    // the native byte order (the `Hasher` defaults use `to_ne_bytes`).
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Convenience: the stable 64-bit digest of any [`Hash`] value.
#[must_use]
pub fn stable_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl Adg {
    /// A stable 64-bit structural fingerprint of the whole graph.
    ///
    /// Covers the name, every live node (id, kind parameters, label) in id
    /// order, and every live edge (id, endpoints, width) in id order —
    /// exactly the facts the graph's semantic [`PartialEq`] compares.
    /// Tombstoned slots and the derived adjacency indices are excluded, so
    /// two graphs that compare equal fingerprint equal even when their
    /// slot vectors differ by trailing tombstones.
    ///
    /// The digest is identical across runs and platforms, making it safe
    /// as a memoization key (the DSE schedule cache) or a trace tag.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        self.name().hash(&mut h);
        for node in self.nodes() {
            node.id().hash(&mut h);
            node.kind.hash(&mut h);
            node.label.hash(&mut h);
        }
        // Separate the node and edge sections so a graph whose last node
        // hashes like an edge cannot collide with an edge-shifted twin.
        h.write_u8(0xE5);
        for edge in self.edges() {
            edge.id().hash(&mut h);
            edge.src.hash(&mut h);
            edge.dst.hash(&mut h);
            edge.width.hash(&mut h);
        }
        h.finish()
    }

    /// A stable fingerprint of the subgraph a schedule actually occupies.
    ///
    /// Hashes, in the order given, each node's `(id, kind, label)` and each
    /// edge's `(id, src, dst, width)`. Returns `None` if any referenced
    /// node or edge is no longer live — the footprint has been destroyed
    /// and nothing can be concluded from it.
    ///
    /// If a mutation leaves a schedule's footprint fingerprint unchanged,
    /// every component the schedule places onto or routes through is
    /// byte-identical, so the schedule can be *rebased* onto the mutated
    /// graph and re-checked cheaply instead of re-derived stochastically.
    #[must_use]
    pub fn footprint_fingerprint(
        &self,
        nodes: impl IntoIterator<Item = NodeId>,
        edges: impl IntoIterator<Item = EdgeId>,
    ) -> Option<u64> {
        let mut h = StableHasher::new();
        for id in nodes {
            let node = self.node(id)?;
            node.id().hash(&mut h);
            node.kind.hash(&mut h);
            node.label.hash(&mut h);
        }
        h.write_u8(0xE5);
        for id in edges {
            let edge = self.edge(id)?;
            edge.id().hash(&mut h);
            edge.src.hash(&mut h);
            edge.dst.hash(&mut h);
            edge.width.hash(&mut h);
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWidth;
    use crate::components::{CtrlSpec, MemSpec, PeSpec, Scheduling, Sharing, SwitchSpec};
    use crate::op::OpSet;
    use crate::presets;

    fn tiny() -> Adg {
        let mut adg = Adg::new("tiny");
        let ctrl = adg.add_control(CtrlSpec::new());
        let mem = adg.add_memory(MemSpec::main_memory());
        let pe = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        adg.add_link(ctrl, mem).unwrap();
        adg.add_link(mem, pe).unwrap();
        adg
    }

    #[test]
    fn equal_graphs_fingerprint_equal() {
        assert_eq!(tiny().fingerprint(), tiny().fingerprint());
        assert_eq!(
            presets::softbrain().fingerprint(),
            presets::softbrain().fingerprint()
        );
    }

    #[test]
    fn fingerprint_tracks_semantic_equality_across_tombstones() {
        // Removing a trailing node leaves a tombstoned slot; the graph then
        // compares equal to one that never had the node, and the
        // fingerprints must agree.
        let base = tiny();
        let mut grown = tiny();
        let extra = grown.add_switch(SwitchSpec::new(BitWidth::B64));
        assert_ne!(base.fingerprint(), grown.fingerprint());
        grown.remove_node(extra).unwrap();
        assert_eq!(base, grown, "tombstoned twin should compare equal");
        assert_eq!(base.fingerprint(), grown.fingerprint());
    }

    #[test]
    fn structural_changes_change_the_fingerprint() {
        let base = presets::softbrain();
        let fp = base.fingerprint();

        // Removing an edge.
        let mut cut = base.clone();
        let edge = cut.edges().next().unwrap().id();
        cut.remove_edge(edge).unwrap();
        assert_ne!(fp, cut.fingerprint());

        // Adding a node.
        let mut grown = base.clone();
        grown.add_switch(SwitchSpec::new(BitWidth::B64));
        assert_ne!(fp, grown.fingerprint());

        // Renaming.
        let mut renamed = base.clone();
        renamed.set_name("not-softbrain");
        assert_ne!(fp, renamed.fingerprint());
    }

    #[test]
    fn fingerprints_differ_across_presets() {
        let fps = [
            presets::softbrain().fingerprint(),
            presets::maeri().fingerprint(),
            presets::spu().fingerprint(),
            presets::revel().fingerprint(),
            presets::dse_initial().fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "distinct presets must not collide");
            }
        }
    }

    #[test]
    fn fingerprint_is_pinned_across_runs() {
        // The digest must be *stable*: identical on every platform and in
        // every process. Pin a simple graph's value; if this assertion ever
        // fires, the fingerprint definition changed and every persisted
        // fingerprint (golden files, caches) must be regenerated.
        let a = tiny().fingerprint();
        let b = tiny().fingerprint();
        assert_eq!(a, b);
        let mut h = StableHasher::new();
        h.write_u64(0xD5A6E4);
        assert_eq!(h.finish(), 0x60c0_5d42_0704_556a, "FNV-1a encoding drifted");
    }

    #[test]
    fn footprint_fingerprint_ignores_unrelated_mutations() {
        let base = tiny();
        let nodes: Vec<_> = base.nodes().map(|n| n.id()).collect();
        let edges: Vec<_> = base.edges().map(|e| e.id()).collect();
        let fp = base
            .footprint_fingerprint(nodes.iter().copied(), edges.iter().copied())
            .unwrap();

        // Adding an unconnected switch elsewhere leaves the footprint alone.
        let mut grown = base.clone();
        grown.add_switch(SwitchSpec::new(BitWidth::B64));
        assert_eq!(
            grown.footprint_fingerprint(nodes.iter().copied(), edges.iter().copied()),
            Some(fp)
        );

        // Removing a footprint node destroys it.
        let mut cut = base.clone();
        cut.remove_node(nodes[nodes.len() - 1]).unwrap();
        assert_eq!(
            cut.footprint_fingerprint(nodes.iter().copied(), edges.iter().copied()),
            None
        );
    }

    #[test]
    fn stable_hash_of_matches_manual_hashing() {
        let via_helper = stable_hash_of(&42u64);
        let mut h = StableHasher::new();
        42u64.hash(&mut h);
        assert_eq!(via_helper, h.finish());
    }
}
