//! Power-of-two datapath bit widths.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::AdgError;

/// A power-of-two datapath width in bits (§III-A: "most components can
/// specify a power-of-two datapath bitwidth").
///
/// `BitWidth` statically rules out non-power-of-two widths, which the DSAGEN
/// design space does not support (this is why e.g. Q100 cannot be
/// approximated, §III-C).
///
/// # Example
///
/// ```
/// use dsagen_adg::BitWidth;
///
/// let w = BitWidth::new(64)?;
/// assert_eq!(w.bits(), 64);
/// assert_eq!(w.bytes(), 8);
/// assert_eq!(w.halved(), Some(BitWidth::B32));
/// # Ok::<(), dsagen_adg::AdgError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitWidth(u16);

impl BitWidth {
    /// 8-bit datapath.
    pub const B8: BitWidth = BitWidth(8);
    /// 16-bit datapath.
    pub const B16: BitWidth = BitWidth(16);
    /// 32-bit datapath.
    pub const B32: BitWidth = BitWidth(32);
    /// 64-bit datapath.
    pub const B64: BitWidth = BitWidth(64);
    /// 128-bit datapath (wide vector ports).
    pub const B128: BitWidth = BitWidth(128);
    /// 256-bit datapath (wide vector ports).
    pub const B256: BitWidth = BitWidth(256);
    /// 512-bit datapath (scratchpad lines).
    pub const B512: BitWidth = BitWidth(512);

    /// Creates a width from a bit count.
    ///
    /// # Errors
    ///
    /// Returns [`AdgError::InvalidBitWidth`] when `bits` is zero, not a
    /// power of two, or larger than 4096.
    pub fn new(bits: u16) -> Result<Self, AdgError> {
        if bits == 0 || !bits.is_power_of_two() || bits > 4096 {
            return Err(AdgError::InvalidBitWidth(bits));
        }
        Ok(BitWidth(bits))
    }

    /// The width in bits.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// The width in whole bytes (widths below 8 bits round up to one byte).
    #[must_use]
    pub fn bytes(self) -> u32 {
        u32::from(self.0).div_ceil(8)
    }

    /// Half this width, or `None` below 2 bits.
    #[must_use]
    pub fn halved(self) -> Option<BitWidth> {
        if self.0 >= 2 {
            Some(BitWidth(self.0 / 2))
        } else {
            None
        }
    }

    /// Twice this width, or `None` above the 4096-bit ceiling.
    #[must_use]
    pub fn doubled(self) -> Option<BitWidth> {
        if self.0 <= 2048 {
            Some(BitWidth(self.0 * 2))
        } else {
            None
        }
    }

    /// How many lanes of `lane` fit in this width (0 when `lane` is wider).
    #[must_use]
    pub fn lanes_of(self, lane: BitWidth) -> u16 {
        self.0 / lane.0
    }
}

impl Default for BitWidth {
    fn default() -> Self {
        BitWidth::B64
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl TryFrom<u16> for BitWidth {
    type Error = AdgError;

    fn try_from(bits: u16) -> Result<Self, Self::Error> {
        BitWidth::new(bits)
    }
}

impl From<BitWidth> for u16 {
    fn from(w: BitWidth) -> u16 {
        w.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_powers_of_two() {
        for bits in [1u16, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            assert_eq!(BitWidth::new(bits).unwrap().bits(), bits);
        }
    }

    #[test]
    fn rejects_non_powers_of_two() {
        for bits in [0u16, 3, 5, 6, 7, 9, 12, 24, 48, 65, 100, 8192] {
            assert!(BitWidth::new(bits).is_err(), "{bits} should be rejected");
        }
    }

    #[test]
    fn byte_count_rounds_up() {
        assert_eq!(BitWidth::new(1).unwrap().bytes(), 1);
        assert_eq!(BitWidth::new(4).unwrap().bytes(), 1);
        assert_eq!(BitWidth::B8.bytes(), 1);
        assert_eq!(BitWidth::B64.bytes(), 8);
        assert_eq!(BitWidth::B512.bytes(), 64);
    }

    #[test]
    fn halving_and_doubling_roundtrip() {
        let w = BitWidth::B64;
        assert_eq!(w.halved().unwrap().doubled().unwrap(), w);
        assert_eq!(BitWidth::new(1).unwrap().halved(), None);
        assert_eq!(BitWidth::new(4096).unwrap().doubled(), None);
    }

    #[test]
    fn lane_arithmetic() {
        assert_eq!(BitWidth::B512.lanes_of(BitWidth::B64), 8);
        assert_eq!(BitWidth::B64.lanes_of(BitWidth::B8), 8);
        assert_eq!(BitWidth::B8.lanes_of(BitWidth::B64), 0);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(BitWidth::B64.to_string(), "64b");
    }

    #[test]
    fn ordering_follows_bit_count() {
        assert!(BitWidth::B8 < BitWidth::B16);
        assert!(BitWidth::B512 > BitWidth::B64);
    }
}
