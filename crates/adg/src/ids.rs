//! Typed identifiers for ADG nodes and edges.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (hardware component) in an [`Adg`](crate::Adg).
///
/// Node ids are stable across removals: deleting a node never renumbers the
/// others, which is what lets the design-space explorer's *schedule repair*
/// keep the untouched parts of a schedule valid (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a node id from a raw index.
    ///
    /// Intended for deserialization and test fixtures; an id that does not
    /// name a live node in a particular graph is simply not found by the
    /// accessors.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge (point-to-point connection) in an [`Adg`](crate::Adg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The raw index value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an edge id from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
    }

    #[test]
    fn display_distinguishes_nodes_and_edges() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(EdgeId::from_index(3).to_string(), "e3");
    }
}
