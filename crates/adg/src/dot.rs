//! Graphviz DOT export for ADGs.

use std::fmt::Write as _;

use crate::{Adg, NodeKind};

impl Adg {
    /// Renders the graph in Graphviz DOT format.
    ///
    /// Node shapes distinguish component kinds (PEs are boxes, switches
    /// diamonds, memories cylinders, sync elements trapezia, the control
    /// core a double octagon); dynamic-scheduled elements are drawn dashed.
    ///
    /// # Example
    ///
    /// ```
    /// use dsagen_adg::presets;
    ///
    /// let dot = presets::cca().to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for node in self.nodes() {
            let (shape, extra) = match &node.kind {
                NodeKind::Pe(pe) => (
                    "box",
                    if pe.scheduling.is_dynamic() {
                        ",style=dashed"
                    } else {
                        ""
                    },
                ),
                NodeKind::Switch(sw) => (
                    "diamond",
                    if sw.scheduling.is_dynamic() {
                        ",style=dashed"
                    } else {
                        ""
                    },
                ),
                NodeKind::Delay(_) => ("cds", ""),
                NodeKind::Sync(_) => ("trapezium", ""),
                NodeKind::Memory(_) => ("cylinder", ""),
                NodeKind::Control(_) => ("doubleoctagon", ""),
            };
            let label = node
                .label
                .clone()
                .unwrap_or_else(|| format!("{}:{}", node.kind.kind_name(), node.id()));
            let _ = writeln!(
                out,
                "  {} [label=\"{}\",shape={}{}];",
                node.id(),
                label,
                shape,
                extra
            );
        }
        for edge in self.edges() {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                edge.src, edge.dst, edge.width
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Adg, CtrlSpec, MemSpec, OpSet, PeSpec, Scheduling, Sharing};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut adg = Adg::new("dot-test");
        let c = adg.add_control(CtrlSpec::new());
        let m = adg.add_memory(MemSpec::main_memory());
        adg.add_link(c, m).unwrap();
        let dot = adg.to_dot();
        assert!(dot.contains("digraph \"dot-test\""));
        assert!(dot.contains("n0"));
        assert!(dot.contains("n1"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("cylinder"));
        assert!(dot.contains("doubleoctagon"));
    }

    #[test]
    fn dynamic_pes_are_dashed() {
        let mut adg = Adg::new("d");
        adg.add_pe(PeSpec::new(
            Scheduling::Dynamic,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        assert!(adg.to_dot().contains("style=dashed"));
    }

    #[test]
    fn labels_override_default_names() {
        let mut adg = Adg::new("l");
        adg.add_labeled(
            crate::NodeKind::Control(CtrlSpec::new()),
            "my-control-core",
        );
        assert!(adg.to_dot().contains("my-control-core"));
    }
}
