//! A line-oriented textual format for ADGs.
//!
//! Hardware descriptions want to live in version control and be diffable;
//! this module provides a compact, stable, human-editable format with a
//! strict parser. Node ids are preserved exactly (including tombstoned
//! slots), so schedules and bitstreams referencing a written graph remain
//! valid against its re-parsed twin.
//!
//! ```text
//! adg "softbrain"
//! node n0 ctrl kind=core issue=1 scalar=1
//! node n1 mem kind=main cap=max width=64 streams=16 banks=1 linear
//! node n2 sync depth=16 lanes=4 width=64
//! node n3 pe sched=static share=dedicated width=64 ops=Add,Mul buf=4
//! node n4 switch sched=static share=dedicated width=64 flop
//! node n5 delay depth=4 sched=static width=64
//! label n3 "pe0_0"
//! edge e0 n0 -> n1 width=64
//! ```
//!
//! # Example
//!
//! ```
//! use dsagen_adg::presets;
//! use dsagen_adg::text::{from_text, to_text};
//!
//! let adg = presets::cca();
//! let rendered = to_text(&adg);
//! let parsed = from_text(&rendered)?;
//! assert_eq!(adg, parsed);
//! # Ok::<(), dsagen_adg::text::ParseError>(())
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::{
    Adg, BitWidth, CtrlKind, CtrlSpec, DelaySpec, MemControllers, MemKind, MemSpec, NodeId,
    NodeKind, OpSet, Opcode, PeSpec, Routing, Scheduling, Sharing, SwitchSpec, SyncSpec,
};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Renders an ADG in the textual format.
#[must_use]
pub fn to_text(adg: &Adg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "adg \"{}\"", adg.name());
    for node in adg.nodes() {
        let _ = write!(out, "node {} ", node.id());
        match &node.kind {
            NodeKind::Control(c) => {
                let kind = match c.kind {
                    CtrlKind::ProgrammableCore => "core",
                    CtrlKind::Fsm => "fsm",
                };
                let _ = write!(
                    out,
                    "ctrl kind={kind} issue={} scalar={}",
                    c.command_issue_cycles, c.scalar_op_cycles
                );
            }
            NodeKind::Memory(m) => {
                let kind = match m.kind {
                    MemKind::MainMemory => "main",
                    MemKind::Scratchpad => "spad",
                };
                let cap = if m.capacity_bytes == u64::MAX {
                    "max".to_string()
                } else {
                    m.capacity_bytes.to_string()
                };
                let _ = write!(
                    out,
                    "mem kind={kind} cap={cap} width={} streams={} banks={}",
                    m.width_bytes, m.num_streams, m.banks
                );
                if m.controllers.linear {
                    let _ = write!(out, " linear");
                }
                if m.controllers.indirect {
                    let _ = write!(out, " indirect");
                }
                if m.controllers.atomic_update {
                    let _ = write!(out, " atomic");
                }
                if m.controllers.coalescing {
                    let _ = write!(out, " coalesce");
                }
            }
            NodeKind::Sync(s) => {
                let _ = write!(
                    out,
                    "sync depth={} lanes={} width={}",
                    s.depth,
                    s.lanes,
                    s.bitwidth.bits()
                );
            }
            NodeKind::Delay(d) => {
                let _ = write!(
                    out,
                    "delay depth={} sched={} width={}",
                    d.depth,
                    sched_str(d.scheduling),
                    d.bitwidth.bits()
                );
            }
            NodeKind::Pe(pe) => {
                let ops: Vec<String> = pe.ops.iter().map(|o| o.to_string()).collect();
                let _ = write!(
                    out,
                    "pe sched={} share={} width={} buf={} ops={}",
                    sched_str(pe.scheduling),
                    share_str(pe.sharing),
                    pe.bitwidth.bits(),
                    pe.input_buffer_depth,
                    ops.join(",")
                );
                if pe.decomposable {
                    let _ = write!(out, " decomp");
                }
                if pe.stream_join {
                    let _ = write!(out, " stream_join");
                }
            }
            NodeKind::Switch(sw) => {
                let _ = write!(
                    out,
                    "switch sched={} share={} width={}",
                    sched_str(sw.scheduling),
                    share_str(sw.sharing),
                    sw.bitwidth.bits()
                );
                if let Some(d) = sw.decompose_to {
                    let _ = write!(out, " decomp_to={}", d.bits());
                }
                let _ = write!(out, " {}", if sw.flop_output { "flop" } else { "noflop" });
                if let Routing::Matrix(_) = sw.routing {
                    // Matrices are not round-trippable in the compact
                    // format; emit as full crossbar with a marker comment.
                    let _ = write!(out, " # routing-matrix elided");
                }
            }
        }
        let _ = writeln!(out);
        if let Some(label) = &node.label {
            let _ = writeln!(out, "label {} \"{}\"", node.id(), label);
        }
    }
    for edge in adg.edges() {
        let _ = writeln!(
            out,
            "edge {} {} -> {} width={}",
            edge.id(),
            edge.src,
            edge.dst,
            edge.width.bits()
        );
    }
    out
}

fn sched_str(s: Scheduling) -> &'static str {
    match s {
        Scheduling::Static => "static",
        Scheduling::Dynamic => "dynamic",
    }
}

fn share_str(s: Sharing) -> String {
    match s {
        Sharing::Dedicated => "dedicated".to_string(),
        Sharing::Shared { max_instructions } => format!("shared{max_instructions}"),
    }
}

/// Parses the textual format back into an [`Adg`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for any syntax or
/// semantic problem (unknown node kind, bad width, dangling edge endpoint,
/// duplicate node id, …).
pub fn from_text(text: &str) -> Result<Adg, ParseError> {
    let mut adg: Option<Adg> = None;
    // Declared nodes by id index, to keep ids stable even with gaps.
    let mut declared: BTreeMap<usize, (NodeKind, Option<String>)> = BTreeMap::new();
    let mut edges: BTreeMap<usize, (usize, usize, u16, usize)> = BTreeMap::new();
    let mut labels: BTreeMap<usize, String> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("adg") => {
                let name = parse_quoted(line, lineno)?;
                adg = Some(Adg::new(name));
            }
            Some("node") => {
                let id = parse_node_id(tokens.next(), lineno)?;
                let kind_tok = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing node kind"))?;
                let rest: Vec<&str> = tokens.collect();
                let kind = parse_kind(kind_tok, &rest, lineno)?;
                if declared.insert(id, (kind, None)).is_some() {
                    return Err(err(lineno, format!("duplicate node n{id}")));
                }
            }
            Some("label") => {
                let id = parse_node_id(tokens.next(), lineno)?;
                labels.insert(id, parse_quoted(line, lineno)?);
            }
            Some("edge") => {
                let eid = tokens
                    .next()
                    .and_then(|t| t.strip_prefix('e'))
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| err(lineno, "expected edge id of the form eN"))?;
                let src = parse_node_id(tokens.next(), lineno)?;
                if tokens.next() != Some("->") {
                    return Err(err(lineno, "expected '->' between edge endpoints"));
                }
                let dst = parse_node_id(tokens.next(), lineno)?;
                let width = tokens
                    .next()
                    .and_then(|t| t.strip_prefix("width="))
                    .ok_or_else(|| err(lineno, "missing edge width"))?
                    .parse::<u16>()
                    .map_err(|_| err(lineno, "bad edge width"))?;
                if edges.insert(eid, (src, dst, width, lineno)).is_some() {
                    return Err(err(lineno, format!("duplicate edge e{eid}")));
                }
            }
            Some(other) => return Err(err(lineno, format!("unknown directive '{other}'"))),
            None => {}
        }
    }

    let mut adg = adg.ok_or_else(|| err(1, "missing 'adg \"name\"' header"))?;
    // Materialize nodes with stable ids: fill gaps with tombstones.
    let max_id = declared.keys().copied().max().map_or(0, |m| m + 1);
    let mut added: Vec<Option<NodeId>> = vec![None; max_id];
    for (slot, added_slot) in added.iter_mut().enumerate() {
        match declared.remove(&slot) {
            Some((kind, _)) => {
                let id = adg.add_node(kind);
                debug_assert_eq!(id.index(), slot);
                *added_slot = Some(id);
            }
            None => {
                // Tombstone: add-and-remove to burn the slot.
                let id = adg.add_node(NodeKind::Delay(DelaySpec::new(1)));
                adg.remove_node(id).expect("just added");
            }
        }
    }
    for (slot, label) in labels {
        let id = added
            .get(slot)
            .copied()
            .flatten()
            .ok_or_else(|| err(1, format!("label references unknown node n{slot}")))?;
        if let Some(node) = adg.node_mut(id) {
            node.label = Some(label);
        }
    }
    // Edge slots are stable too: burn the gaps with add-and-remove.
    let max_eid = edges.keys().copied().max().map_or(0, |m| m + 1);
    let burn_src = adg.nodes().next().map(crate::Node::id);
    for slot in 0..max_eid {
        match edges.remove(&slot) {
            Some((src, dst, width, lineno)) => {
                let s = added
                    .get(src)
                    .copied()
                    .flatten()
                    .ok_or_else(|| err(lineno, format!("edge references unknown node n{src}")))?;
                let d = added
                    .get(dst)
                    .copied()
                    .flatten()
                    .ok_or_else(|| err(lineno, format!("edge references unknown node n{dst}")))?;
                let w = BitWidth::new(width).map_err(|e| err(lineno, e.to_string()))?;
                let eid = adg
                    .add_link_with_width(s, d, w)
                    .map_err(|e| err(lineno, e.to_string()))?;
                debug_assert_eq!(eid.index(), slot);
            }
            None => {
                let Some(n) = burn_src else {
                    return Err(err(1, "edge ids present but graph has no nodes"));
                };
                let eid = adg
                    .add_link_with_width(n, n, BitWidth::B8)
                    .map_err(|e| err(1, e.to_string()))?;
                adg.remove_edge(eid).expect("just added");
            }
        }
    }
    Ok(adg)
}

fn parse_quoted(line: &str, lineno: usize) -> Result<String, ParseError> {
    let start = line
        .find('"')
        .ok_or_else(|| err(lineno, "missing opening quote"))?;
    let end = line
        .rfind('"')
        .filter(|e| *e > start)
        .ok_or_else(|| err(lineno, "missing closing quote"))?;
    Ok(line[start + 1..end].to_string())
}

fn parse_node_id(tok: Option<&str>, lineno: usize) -> Result<usize, ParseError> {
    tok.and_then(|t| t.strip_prefix('n'))
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| err(lineno, "expected node id of the form nN"))
}

/// Key=value and bare-flag attribute bag.
struct Attrs<'a> {
    kv: BTreeMap<&'a str, &'a str>,
    flags: Vec<&'a str>,
}

impl<'a> Attrs<'a> {
    fn parse(tokens: &[&'a str]) -> Attrs<'a> {
        let mut kv = BTreeMap::new();
        let mut flags = Vec::new();
        for t in tokens {
            match t.split_once('=') {
                Some((k, v)) => {
                    kv.insert(k, v);
                }
                None => flags.push(*t),
            }
        }
        Attrs { kv, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, lineno: usize) -> Result<T, ParseError> {
        self.kv
            .get(key)
            .ok_or_else(|| err(lineno, format!("missing attribute '{key}'")))?
            .parse::<T>()
            .map_err(|_| err(lineno, format!("bad value for '{key}'")))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.kv
            .get(key)
            .and_then(|v| v.parse::<T>().ok())
            .unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    fn width(&self, lineno: usize) -> Result<BitWidth, ParseError> {
        let bits: u16 = self.get("width", lineno)?;
        BitWidth::new(bits).map_err(|e| err(lineno, e.to_string()))
    }
}

fn parse_sched(s: &str, lineno: usize) -> Result<Scheduling, ParseError> {
    match s {
        "static" => Ok(Scheduling::Static),
        "dynamic" => Ok(Scheduling::Dynamic),
        other => Err(err(lineno, format!("unknown scheduling '{other}'"))),
    }
}

fn parse_share(s: &str, lineno: usize) -> Result<Sharing, ParseError> {
    if s == "dedicated" {
        return Ok(Sharing::Dedicated);
    }
    s.strip_prefix("shared")
        .and_then(|n| n.parse::<u8>().ok())
        .map(|max_instructions| Sharing::Shared { max_instructions })
        .ok_or_else(|| err(lineno, format!("unknown sharing '{s}'")))
}

fn parse_ops(s: &str, lineno: usize) -> Result<OpSet, ParseError> {
    let mut ops = OpSet::new();
    for name in s.split(',').filter(|n| !n.is_empty()) {
        let op = Opcode::ALL
            .into_iter()
            .find(|o| o.to_string() == name)
            .ok_or_else(|| err(lineno, format!("unknown opcode '{name}'")))?;
        ops.insert(op);
    }
    Ok(ops)
}

fn parse_kind(kind: &str, rest: &[&str], lineno: usize) -> Result<NodeKind, ParseError> {
    let a = Attrs::parse(rest);
    match kind {
        "ctrl" => {
            let ck = match *a.kv.get("kind").unwrap_or(&"core") {
                "core" => CtrlKind::ProgrammableCore,
                "fsm" => CtrlKind::Fsm,
                other => return Err(err(lineno, format!("unknown ctrl kind '{other}'"))),
            };
            Ok(NodeKind::Control(CtrlSpec {
                kind: ck,
                command_issue_cycles: a.get_or("issue", 1),
                scalar_op_cycles: a.get_or("scalar", 1),
            }))
        }
        "mem" => {
            let mk = match *a
                .kv
                .get("kind")
                .ok_or_else(|| err(lineno, "missing mem kind"))?
            {
                "main" => MemKind::MainMemory,
                "spad" => MemKind::Scratchpad,
                other => return Err(err(lineno, format!("unknown mem kind '{other}'"))),
            };
            let cap = match *a.kv.get("cap").unwrap_or(&"max") {
                "max" => u64::MAX,
                v => v
                    .parse::<u64>()
                    .map_err(|_| err(lineno, "bad mem capacity"))?,
            };
            Ok(NodeKind::Memory(MemSpec {
                kind: mk,
                capacity_bytes: cap,
                width_bytes: a.get("width", lineno)?,
                num_streams: a.get("streams", lineno)?,
                banks: a.get("banks", lineno)?,
                controllers: MemControllers {
                    linear: a.flag("linear"),
                    indirect: a.flag("indirect"),
                    atomic_update: a.flag("atomic"),
                    coalescing: a.flag("coalesce"),
                },
            }))
        }
        "sync" => Ok(NodeKind::Sync(SyncSpec {
            depth: a.get("depth", lineno)?,
            lanes: a.get("lanes", lineno)?,
            bitwidth: a.width(lineno)?,
        })),
        "delay" => Ok(NodeKind::Delay(DelaySpec {
            depth: a.get("depth", lineno)?,
            scheduling: parse_sched(a.kv.get("sched").unwrap_or(&"static"), lineno)?,
            bitwidth: a.width(lineno)?,
        })),
        "pe" => Ok(NodeKind::Pe(PeSpec {
            scheduling: parse_sched(
                a.kv
                    .get("sched")
                    .ok_or_else(|| err(lineno, "missing pe scheduling"))?,
                lineno,
            )?,
            sharing: parse_share(
                a.kv
                    .get("share")
                    .ok_or_else(|| err(lineno, "missing pe sharing"))?,
                lineno,
            )?,
            ops: parse_ops(a.kv.get("ops").unwrap_or(&""), lineno)?,
            bitwidth: a.width(lineno)?,
            decomposable: a.flag("decomp"),
            stream_join: a.flag("stream_join"),
            input_buffer_depth: a.get_or("buf", 4),
        })),
        "switch" => {
            let decompose_to = match a.kv.get("decomp_to") {
                Some(v) => Some(
                    v.parse::<u16>()
                        .ok()
                        .and_then(|b| BitWidth::new(b).ok())
                        .ok_or_else(|| err(lineno, "bad decomp_to width"))?,
                ),
                None => None,
            };
            Ok(NodeKind::Switch(SwitchSpec {
                scheduling: parse_sched(
                    a.kv
                        .get("sched")
                        .ok_or_else(|| err(lineno, "missing switch scheduling"))?,
                    lineno,
                )?,
                sharing: parse_share(a.kv.get("share").unwrap_or(&"dedicated"), lineno)?,
                bitwidth: a.width(lineno)?,
                decompose_to,
                flop_output: !a.flag("noflop"),
                routing: Routing::FullCrossbar,
            }))
        }
        other => Err(err(lineno, format!("unknown node kind '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roundtrip_all_presets() {
        for adg in [
            presets::softbrain(),
            presets::maeri(),
            presets::triggered(),
            presets::spu(),
            presets::revel(),
            presets::cca(),
            presets::diannao_tree(),
            presets::dse_initial(),
        ] {
            let text = to_text(&adg);
            let parsed = from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", adg.name()));
            assert_eq!(adg, parsed, "{} did not roundtrip", adg.name());
        }
    }

    #[test]
    fn roundtrip_preserves_ids_after_removal() {
        let mut adg = presets::cca();
        let victim = adg.pes().nth(1).expect("cca has PEs");
        adg.remove_node(victim).expect("exists");
        let parsed = from_text(&to_text(&adg)).expect("parses");
        assert_eq!(adg, parsed);
        assert!(parsed.node(victim).is_none());
        // Surviving ids resolve to the same components.
        for node in adg.nodes() {
            assert_eq!(
                parsed.node(node.id()).map(|n| &n.kind),
                Some(&node.kind)
            );
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("node n0 pe sched=static share=dedicated width=64", 1), // no header
            ("adg \"x\"\nnode n0 frobnicator", 2),
            ("adg \"x\"\nnode n0 pe sched=waat share=dedicated width=64", 2),
            ("adg \"x\"\nnode n0 sync depth=8 lanes=1 width=63", 2),
            ("adg \"x\"\nedge e0 n0 -> n1 width=64", 2),
            ("adg \"x\"\nnode n0 pe sched=static share=dedicated width=64 ops=Zorp", 2),
        ];
        for (text, line) in cases {
            let e = from_text(text).expect_err(text);
            assert_eq!(e.line, line, "{text}: {e}");
        }
    }

    #[test]
    fn duplicate_node_rejected() {
        let text = "adg \"x\"\nnode n0 sync depth=8 lanes=1 width=64\nnode n0 sync depth=8 lanes=1 width=64";
        let e = from_text(text).expect_err("duplicate");
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "adg \"x\"  # the name\n\n# a comment\nnode n0 sync depth=8 lanes=2 width=64\n";
        let adg = from_text(text).expect("parses");
        assert_eq!(adg.node_count(), 1);
        assert_eq!(adg.syncs().count(), 1);
    }

    #[test]
    fn labels_roundtrip() {
        let mut adg = Adg::new("l");
        adg.add_labeled(NodeKind::Sync(SyncSpec::new(4)), "my port");
        let parsed = from_text(&to_text(&adg)).expect("parses");
        assert_eq!(
            parsed.nodes().next().and_then(|n| n.label.as_deref()),
            Some("my port")
        );
    }
}
