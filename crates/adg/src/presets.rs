//! Preset ADG topologies, including the five accelerators the paper
//! instantiates (§VII) and the DSE starting points (§VIII-B).
//!
//! All presets share a decoupled skeleton: a control core, a main-memory
//! (L2) interface, a scratchpad, input/output synchronization elements
//! (vector ports), and a spatial fabric of PEs and switches.

use crate::{
    Adg, BitWidth, CtrlSpec, DelaySpec, MemControllers, MemSpec, NodeId, OpSet, PeSpec,
    Scheduling, Sharing, SwitchSpec, SyncSpec,
};

/// Configuration for [`mesh`], the generic mesh-fabric builder.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Display name of the resulting graph.
    pub name: String,
    /// Rows of PEs (and switches).
    pub rows: usize,
    /// Columns of PEs (and switches).
    pub cols: usize,
    /// The PE spec replicated across the fabric.
    pub pe: PeSpec,
    /// The switch spec replicated across the fabric.
    pub switch: SwitchSpec,
    /// Number of input vector ports (sync elements fed by memories).
    pub input_ports: usize,
    /// Number of output vector ports.
    pub output_ports: usize,
    /// Lanes per vector port.
    pub port_lanes: u8,
    /// Sync-element FIFO depth.
    pub sync_depth: u16,
    /// Scratchpad spec.
    pub scratchpad: MemSpec,
    /// Per-PE-input delay-FIFO depth (0 = no delay elements; static fabrics
    /// need them for pipeline balancing, §III-B).
    pub delay_depth: u8,
}

impl MeshConfig {
    /// A rows×cols mesh of the given PE around 64-bit crossbar switches,
    /// eight vector ports in, four out, and a 16 KiB unbanked scratchpad.
    /// (Stream-dataflow designs are port-rich: every concurrent stream
    /// needs its own synchronization element.)
    #[must_use]
    pub fn new(name: impl Into<String>, rows: usize, cols: usize, pe: PeSpec) -> Self {
        MeshConfig {
            name: name.into(),
            rows,
            cols,
            pe,
            switch: SwitchSpec::new(BitWidth::B64),
            input_ports: 12,
            output_ports: 6,
            port_lanes: 4,
            sync_depth: 16,
            scratchpad: MemSpec::scratchpad(16 << 10, 64),
            delay_depth: 4,
        }
    }
}

/// Builds the shared decoupled skeleton and returns
/// `(adg, main_memory, scratchpad, input_syncs, output_syncs)`.
fn skeleton(
    name: &str,
    scratchpad: MemSpec,
    input_ports: usize,
    output_ports: usize,
    port_lanes: u8,
    sync_depth: u16,
) -> (Adg, NodeId, NodeId, Vec<NodeId>, Vec<NodeId>) {
    let mut adg = Adg::new(name);
    let ctrl = adg.add_labeled(crate::NodeKind::Control(CtrlSpec::new()), "ctrl");
    let main = adg.add_labeled(crate::NodeKind::Memory(MemSpec::main_memory()), "L2");
    let spad = adg.add_labeled(crate::NodeKind::Memory(scratchpad), "spad");
    adg.add_link(ctrl, main).expect("fresh nodes");
    adg.add_link(ctrl, spad).expect("fresh nodes");

    let mut inputs = Vec::with_capacity(input_ports);
    for i in 0..input_ports {
        let sy = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(sync_depth).with_lanes(port_lanes)),
            format!("in{i}"),
        );
        // Every input port can be fed by either memory; the scheduler picks.
        adg.add_link(main, sy).expect("fresh nodes");
        adg.add_link(spad, sy).expect("fresh nodes");
        inputs.push(sy);
    }
    let mut outputs = Vec::with_capacity(output_ports);
    for i in 0..output_ports {
        let sy = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(sync_depth).with_lanes(port_lanes)),
            format!("out{i}"),
        );
        adg.add_link(sy, main).expect("fresh nodes");
        adg.add_link(sy, spad).expect("fresh nodes");
        outputs.push(sy);
    }
    (adg, main, spad, inputs, outputs)
}

/// Builds a generic mesh-fabric accelerator.
///
/// The fabric is a `rows`×`cols` grid of switches with 4-neighbor
/// bidirectional links; each grid point also carries one PE that reads from
/// its own switch and its east/south neighbors (through per-input delay
/// FIFOs when `delay_depth > 0`) and writes to its south neighbor's switch.
/// Input ports feed the top switch row; the bottom row feeds output ports.
#[must_use]
pub fn mesh(cfg: &MeshConfig) -> Adg {
    let (mut adg, _main, _spad, inputs, outputs) = skeleton(
        &cfg.name,
        cfg.scratchpad,
        cfg.input_ports,
        cfg.output_ports,
        cfg.port_lanes,
        cfg.sync_depth,
    );

    let (rows, cols) = (cfg.rows, cfg.cols);
    let mut switches = vec![vec![NodeId::from_index(0); cols]; rows];
    for (r, row) in switches.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = adg.add_labeled(
                crate::NodeKind::Switch(cfg.switch.clone()),
                format!("sw{r}_{c}"),
            );
        }
    }
    // 4-neighbor bidirectional switch links.
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                adg.add_link(switches[r][c], switches[r][c + 1]).unwrap();
                adg.add_link(switches[r][c + 1], switches[r][c]).unwrap();
            }
            if r + 1 < rows {
                adg.add_link(switches[r][c], switches[r + 1][c]).unwrap();
                adg.add_link(switches[r + 1][c], switches[r][c]).unwrap();
            }
        }
    }
    // PEs.
    for r in 0..rows {
        for c in 0..cols {
            let pe = adg.add_labeled(crate::NodeKind::Pe(cfg.pe.clone()), format!("pe{r}_{c}"));
            let own = switches[r][c];
            let east = switches[r][(c + 1) % cols];
            let south = switches[(r + 1) % rows][c];
            // Three operand inputs (Select/MAC need 3).
            for src in [own, east, south] {
                if cfg.delay_depth > 0 && !cfg.pe.scheduling.is_dynamic() {
                    let d = adg.add_delay(DelaySpec::new(cfg.delay_depth));
                    adg.add_link(src, d).unwrap();
                    adg.add_link(d, pe).unwrap();
                } else {
                    adg.add_link(src, pe).unwrap();
                }
            }
            adg.add_link(pe, south).unwrap();
            adg.add_link(pe, own).unwrap();
        }
    }
    // Vector ports onto the fabric edges. Ports are wide (multi-lane), so
    // each connects to several top/bottom-row switches — one physical link
    // per lane group, like Softbrain's wide vector ports.
    let fan = cols.min(usize::from(cfg.port_lanes)).max(1);
    for (i, sy) in inputs.iter().enumerate() {
        for k in 0..fan {
            adg.add_link(*sy, switches[0][(i + k) % cols]).unwrap();
        }
    }
    for (i, sy) in outputs.iter().enumerate() {
        for k in 0..fan {
            adg.add_link(switches[rows - 1][(i + k) % cols], *sy).unwrap();
        }
    }
    adg
}

/// Softbrain (Nowatzki et al., ISCA 2017): a 5×5 mesh of statically-
/// scheduled, dedicated PEs and switches with a single non-banked
/// scratchpad (§VII).
#[must_use]
pub fn softbrain() -> Adg {
    let pe = PeSpec::new(
        Scheduling::Static,
        Sharing::Dedicated,
        OpSet::integer_alu()
            .union(OpSet::integer_mul())
            .union(OpSet::floating_point()),
    );
    mesh(&MeshConfig::new("softbrain", 5, 5, pe))
}

/// MAERI (Kwon et al., ASPLOS 2018), approximated "similarly to Softbrain,
/// but with its novel tree-based topology" (§VII): a distribute tree of
/// switches fanning out to leaf multiplier PEs, whose results merge through
/// a reduce tree of adder PEs.
#[must_use]
pub fn maeri() -> Adg {
    let depth = 4usize; // 16 leaf multipliers + 15 reduce adders
    let leaves = 1usize << depth;
    let (mut adg, _main, _spad, inputs, outputs) = skeleton(
        "maeri",
        MemSpec::scratchpad(16 << 10, 64),
        8,
        3,
        8,
        16,
    );

    // Distribute tree: root switch at level 0 down to `leaves` switches.
    // MAERI's fat links are bidirectional (partial sums flow back up).
    let mut level = vec![adg.add_labeled(
        crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B64)),
        "dist0",
    )];
    let mut all_levels = vec![level.clone()];
    for d in 1..=depth {
        let mut next = Vec::with_capacity(1 << d);
        for (i, parent) in level.iter().enumerate() {
            for side in 0..2 {
                let sw = adg.add_labeled(
                    crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B64)),
                    format!("dist{d}_{}", i * 2 + side),
                );
                // MAERI's distribution tree is *fat* toward the root: the
                // top levels carry one link per downstream leaf group.
                let fatness = (depth - d + 1).min(2);
                for _ in 0..fatness {
                    adg.add_link(*parent, sw).unwrap();
                }
                adg.add_link(sw, *parent).unwrap();
                next.push(sw);
            }
        }
        // MAERI's chubby-tree style lateral links at each level.
        for w in next.windows(2) {
            adg.add_link(w[0], w[1]).unwrap();
            adg.add_link(w[1], w[0]).unwrap();
        }
        level = next;
        all_levels.push(level.clone());
    }
    // Input ports enter the distribution network at staggered levels, so
    // concurrent streams do not all contend for the root's links.
    for (i, sy) in inputs.iter().enumerate() {
        let lvl = &all_levels[(i % 2) + 1];
        adg.add_link(*sy, lvl[i % lvl.len()]).unwrap();
        adg.add_link(*sy, all_levels[0][0]).unwrap();
    }

    // Leaf PEs (multipliers + general ALU so other kernels can map).
    let leaf_ops = OpSet::integer_alu()
        .union(OpSet::integer_mul())
        .union(OpSet::floating_point());
    let mut pes = Vec::with_capacity(leaves);
    for (i, sw) in level.iter().enumerate() {
        let pe = adg.add_labeled(
            crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, leaf_ops)),
            format!("mult{i}"),
        );
        // Operands from the leaf switch (twice) and its lateral neighbor;
        // results can re-enter the network at the leaf switch.
        adg.add_link(*sw, pe).unwrap();
        adg.add_link(*sw, pe).unwrap();
        let lateral = level[(i + 1) % leaves];
        adg.add_link(lateral, pe).unwrap();
        adg.add_link(pe, *sw).unwrap();
        pes.push(pe);
    }

    // Augmented-reduction tree of adder PEs: besides the hard-wired child
    // links, every adder also taps the switch fabric so partial sums can be
    // forwarded flexibly (MAERI's augmented links).
    let mut frontier = pes;
    let mut lvl = 0;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for (i, pair) in frontier.chunks(2).enumerate() {
            let add = adg.add_labeled(
                crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, leaf_ops)),
                format!("red{lvl}_{i}"),
            );
            for p in pair {
                adg.add_link(*p, add).unwrap();
            }
            // Augmented links: operand from / result to the nearest leaf
            // switch, so reductions of any shape can route.
            let near = level[(i * 2) % leaves];
            adg.add_link(near, add).unwrap();
            adg.add_link(add, near).unwrap();
            next.push(add);
        }
        frontier = next;
        lvl += 1;
    }
    adg.add_link(frontier[0], outputs[0]).unwrap();
    // Output ports also collect from the leaf-switch fabric (partial
    // results and non-reduction traffic).
    for sy in &outputs {
        adg.add_link(level[0], *sy).unwrap();
    }
    adg
}

/// Triggered Instructions (Parashar et al., ISCA 2013), approximated with a
/// mesh of dynamically-scheduled shared (temporal) PEs whose groups share a
/// decoupled scratchpad (§VII).
#[must_use]
pub fn triggered() -> Adg {
    let pe = PeSpec::new(
        Scheduling::Dynamic,
        Sharing::Shared {
            max_instructions: 16,
        },
        OpSet::integer_alu()
            .union(OpSet::integer_mul())
            .union(OpSet::floating_point()),
    )
    .with_stream_join(true);
    let mut cfg = MeshConfig::new("triggered", 4, 4, pe);
    cfg.switch = SwitchSpec::new(BitWidth::B64).with_scheduling(Scheduling::Dynamic);
    cfg.delay_depth = 0; // dynamic fabrics self-balance via flow control
    mesh(&cfg)
}

/// SPU (Dadu & Nowatzki, MICRO 2019): dynamically-scheduled dedicated PEs
/// with stream-join support and a banked scratchpad with indirect and
/// atomic-update controllers (§VII).
#[must_use]
pub fn spu() -> Adg {
    let pe = PeSpec::new(
        Scheduling::Dynamic,
        Sharing::Dedicated,
        OpSet::integer_alu()
            .union(OpSet::integer_mul())
            .union(OpSet::floating_point()),
    )
    .with_stream_join(true);
    let mut cfg = MeshConfig::new("spu", 4, 4, pe);
    cfg.switch = SwitchSpec::new(BitWidth::B64).with_scheduling(Scheduling::Dynamic);
    cfg.scratchpad = MemSpec::scratchpad(16 << 10, 64)
        .with_banks(8)
        .with_controllers(MemControllers::full());
    cfg.delay_depth = 0;
    mesh(&cfg)
}

/// REVEL (Weng et al., HPCA 2019): composes statically-scheduled and
/// dynamically-scheduled PEs in one mesh, communicating through
/// synchronization elements (§VII). The top two rows are systolic (static,
/// dedicated); the bottom rows are tagged-dataflow (dynamic, shared).
#[must_use]
pub fn revel() -> Adg {
    let static_pe = PeSpec::new(
        Scheduling::Static,
        Sharing::Dedicated,
        OpSet::integer_alu()
            .union(OpSet::integer_mul())
            .union(OpSet::floating_point()),
    );
    let cfg = MeshConfig::new("revel", 4, 4, static_pe);
    let mut adg = mesh(&cfg);

    // Replace the bottom two rows' PEs with dynamic shared PEs by mutating
    // specs in place (the mesh builder labels PEs "pe{r}_{c}").
    let dynamic_pe = PeSpec::new(
        Scheduling::Dynamic,
        Sharing::Shared {
            max_instructions: 8,
        },
        OpSet::integer_alu()
            .union(OpSet::integer_mul())
            .union(OpSet::floating_point()),
    )
    .with_stream_join(true);
    let targets: Vec<NodeId> = adg
        .nodes()
        .filter(|n| {
            n.label
                .as_deref()
                .is_some_and(|l| l.starts_with("pe2_") || l.starts_with("pe3_"))
        })
        .map(|n| n.id())
        .collect();
    for id in targets.clone() {
        if let Some(node) = adg.node_mut(id) {
            node.kind = crate::NodeKind::Pe(dynamic_pe.clone());
        }
    }
    // The dataflow half's network must be dynamically scheduled too: flip
    // its switches and the delay FIFOs feeding the mutated PEs, or the
    // composition rules (§III-B) wall the halves off entirely.
    let dyn_switches: Vec<NodeId> = adg
        .nodes()
        .filter(|n| {
            n.label
                .as_deref()
                .is_some_and(|l| l.starts_with("sw2_") || l.starts_with("sw3_"))
        })
        .map(|n| n.id())
        .collect();
    for id in dyn_switches {
        if let Some(node) = adg.node_mut(id) {
            if let crate::NodeKind::Switch(sw) = &mut node.kind {
                sw.scheduling = Scheduling::Dynamic;
            }
        }
    }
    let dyn_delays: Vec<NodeId> = targets
        .iter()
        .flat_map(|pe| adg.predecessors(*pe).collect::<Vec<_>>())
        .filter(|n| matches!(adg.kind(*n), Ok(crate::NodeKind::Delay(_))))
        .collect();
    for id in dyn_delays {
        if let Some(node) = adg.node_mut(id) {
            if let crate::NodeKind::Delay(d) = &mut node.kind {
                d.scheduling = Scheduling::Dynamic;
            }
        }
    }
    // Internal sync elements let the static and dynamic halves communicate
    // legally (§III-B). One per column, bridging row 1 → row 2.
    let switch_row1: Vec<NodeId> = (0..cfg.cols)
        .filter_map(|c| {
            adg.nodes()
                .find(|n| n.label.as_deref() == Some(&format!("sw1_{c}")))
                .map(|n| n.id())
        })
        .collect();
    let switch_row2: Vec<NodeId> = (0..cfg.cols)
        .filter_map(|c| {
            adg.nodes()
                .find(|n| n.label.as_deref() == Some(&format!("sw2_{c}")))
                .map(|n| n.id())
        })
        .collect();
    for (c, (up, down)) in switch_row1.iter().zip(&switch_row2).enumerate() {
        // Downward bridge: systolic half → dataflow half.
        let sy = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(16).with_lanes(1)),
            format!("bridge{c}"),
        );
        adg.add_link(*up, sy).unwrap();
        adg.add_link(sy, *down).unwrap();
        // Upward bridge: dataflow results re-enter the systolic half with
        // statically-coordinated release timing.
        let sy_up = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(16).with_lanes(1)),
            format!("bridge_up{c}"),
        );
        adg.add_link(*down, sy_up).unwrap();
        adg.add_link(sy_up, *up).unwrap();
    }
    adg.set_name("revel");
    adg
}

/// CCA (Clark et al., MICRO 2004): a small feed-forward triangle of
/// dedicated static PEs with minimal switching — "the fewest switches, but
/// only limited flexibility" (§III-C, Fig 4b).
#[must_use]
pub fn cca() -> Adg {
    let (mut adg, _main, _spad, inputs, outputs) = skeleton(
        "cca",
        MemSpec::scratchpad(8 << 10, 32),
        2,
        1,
        4,
        8,
    );
    let ops = OpSet::integer_alu().union(OpSet::integer_mul());
    let widths = [4usize, 2, 1];
    let mut prev: Vec<NodeId> = Vec::new();
    let mut entry_switch = None;
    for (lvl, &w) in widths.iter().enumerate() {
        let mut this = Vec::with_capacity(w);
        for i in 0..w {
            let pe = adg.add_labeled(
                crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, ops)),
                format!("cca{lvl}_{i}"),
            );
            this.push(pe);
        }
        if lvl == 0 {
            // One shared entry switch fans inputs out to the first level.
            let sw = adg.add_labeled(
                crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B32)),
                "entry",
            );
            for sy in &inputs {
                adg.add_link(*sy, sw).unwrap();
            }
            for pe in &this {
                adg.add_link(sw, *pe).unwrap();
                adg.add_link(sw, *pe).unwrap(); // two operand links
            }
            entry_switch = Some(sw);
        } else {
            for (i, pe) in this.iter().enumerate() {
                adg.add_link(prev[2 * i], *pe).unwrap();
                adg.add_link(prev[2 * i + 1], *pe).unwrap();
                if let Some(sw) = entry_switch {
                    adg.add_link(sw, *pe).unwrap(); // bypass operand
                }
            }
        }
        prev = this;
    }
    adg.add_link(prev[0], outputs[0]).unwrap();
    adg
}

/// A DianNao-like fixed-function topology (Chen et al., ASPLOS 2014):
/// "two scratchpads and static-scheduled, dedicated PEs with a binary-tree
/// interconnect" (§III-C), used as the domain-specific reference for the
/// DenseNN workload set.
#[must_use]
pub fn diannao_tree() -> Adg {
    let mut adg = Adg::new("diannao");
    let ctrl = adg.add_labeled(crate::NodeKind::Control(CtrlSpec::new()), "ctrl");
    let nbin = adg.add_labeled(
        crate::NodeKind::Memory(MemSpec::scratchpad(8 << 10, 64)),
        "nbin",
    );
    let sb = adg.add_labeled(
        crate::NodeKind::Memory(MemSpec::scratchpad(32 << 10, 64)),
        "sb",
    );
    let nbout = adg.add_labeled(
        crate::NodeKind::Memory(MemSpec::scratchpad(8 << 10, 64)),
        "nbout",
    );
    adg.add_link(ctrl, nbin).unwrap();
    adg.add_link(ctrl, sb).unwrap();
    adg.add_link(ctrl, nbout).unwrap();

    let lanes = 8usize;
    let in_a = adg.add_labeled(
        crate::NodeKind::Sync(SyncSpec::new(16).with_lanes(lanes as u8)),
        "in_neuron",
    );
    let in_b = adg.add_labeled(
        crate::NodeKind::Sync(SyncSpec::new(16).with_lanes(lanes as u8)),
        "in_synapse",
    );
    let out = adg.add_labeled(
        crate::NodeKind::Sync(SyncSpec::new(16).with_lanes(1)),
        "out",
    );
    adg.add_link(nbin, in_a).unwrap();
    adg.add_link(sb, in_b).unwrap();
    adg.add_link(out, nbout).unwrap();

    let ops = OpSet::integer_alu()
        .union(OpSet::integer_mul())
        .union(OpSet::floating_point());
    // Multiplier layer.
    let mut frontier = Vec::with_capacity(lanes);
    for i in 0..lanes {
        let pe = adg.add_labeled(
            crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, ops)),
            format!("nfu1_{i}"),
        );
        adg.add_link(in_a, pe).unwrap();
        adg.add_link(in_b, pe).unwrap();
        frontier.push(pe);
    }
    // Adder tree.
    let mut lvl = 0;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for (i, pair) in frontier.chunks(2).enumerate() {
            let add = adg.add_labeled(
                crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, ops)),
                format!("nfu2_{lvl}_{i}"),
            );
            for p in pair {
                adg.add_link(*p, add).unwrap();
            }
            next.push(add);
        }
        frontier = next;
        lvl += 1;
    }
    // Sigmoid stage.
    let sig = adg.add_labeled(
        crate::NodeKind::Pe(PeSpec::new(Scheduling::Static, Sharing::Dedicated, ops)),
        "nfu3",
    );
    adg.add_link(frontier[0], sig).unwrap();
    adg.add_link(in_a, sig).unwrap();
    adg.add_link(sig, out).unwrap();
    adg
}

/// The initial hardware for all three DSE runs (§VIII-B): a 5×4 mesh "with
/// full capability, including control flow, FU decomposability, and an
/// indirect memory controller".
#[must_use]
pub fn dse_initial() -> Adg {
    let pe = PeSpec::new(
        Scheduling::Dynamic,
        Sharing::Dedicated,
        OpSet::all(),
    )
    .with_stream_join(true)
    .with_decomposable(true);
    let mut cfg = MeshConfig::new("dse-initial", 5, 4, pe);
    cfg.switch = SwitchSpec::new(BitWidth::B64)
        .with_scheduling(Scheduling::Dynamic)
        .with_decompose_to(BitWidth::B8);
    cfg.scratchpad = MemSpec::scratchpad(32 << 10, 64)
        .with_banks(8)
        .with_controllers(MemControllers::full());
    cfg.delay_depth = 0;
    let mut adg = mesh(&cfg);
    // Sprinkle shared PEs: replace one PE per row with a temporal PE so
    // outer-loop work has somewhere cheap to live.
    let shared = PeSpec::new(
        Scheduling::Dynamic,
        Sharing::Shared {
            max_instructions: 8,
        },
        OpSet::all(),
    )
    .with_stream_join(true);
    let targets: Vec<NodeId> = adg
        .nodes()
        .filter(|n| {
            n.label
                .as_deref()
                .is_some_and(|l| l.starts_with("pe") && l.ends_with("_3"))
        })
        .map(|n| n.id())
        .collect();
    for id in targets {
        if let Some(node) = adg.node_mut(id) {
            node.kind = crate::NodeKind::Pe(shared.clone());
        }
    }
    adg
}

/// The Fig 12 baseline: a 4×4 mesh of dedicated static PEs, 64-bit network,
/// 512-bit-wide scratchpad — with three independently toggleable features:
/// `shared` replaces four dedicated PEs with shared PEs, `dynamic` makes the
/// fabric dynamically scheduled with stream-join, `indirect` adds the
/// indirect memory controller (§VIII-A "Modularity").
#[must_use]
pub fn baseline_4x4(shared: bool, dynamic: bool, indirect: bool) -> Adg {
    let scheduling = if dynamic {
        Scheduling::Dynamic
    } else {
        Scheduling::Static
    };
    let ops = OpSet::integer_alu()
        .union(OpSet::integer_mul())
        .union(OpSet::floating_point());
    let pe = PeSpec::new(scheduling, Sharing::Dedicated, ops).with_stream_join(dynamic);
    let mut cfg = MeshConfig::new(
        format!(
            "baseline-shared{}-dyn{}-ind{}",
            u8::from(shared),
            u8::from(dynamic),
            u8::from(indirect)
        ),
        4,
        4,
        pe,
    );
    cfg.switch = SwitchSpec::new(BitWidth::B64).with_scheduling(scheduling);
    // 512-bit-wide scratchpad = 64 bytes/cycle.
    cfg.scratchpad = MemSpec::scratchpad(16 << 10, 64).with_controllers(MemControllers {
        linear: true,
        indirect,
        atomic_update: indirect,
        coalescing: false,
    });
    if dynamic {
        cfg.delay_depth = 0;
    }
    let mut adg = mesh(&cfg);
    if shared {
        // Replace the four corner PEs with shared PEs.
        let shared_pe = PeSpec::new(
            scheduling,
            Sharing::Shared {
                max_instructions: 8,
            },
            ops,
        )
        .with_stream_join(dynamic);
        let corners = ["pe0_0", "pe0_3", "pe3_0", "pe3_3"];
        let targets: Vec<NodeId> = adg
            .nodes()
            .filter(|n| n.label.as_deref().is_some_and(|l| corners.contains(&l)))
            .map(|n| n.id())
            .collect();
        for id in targets {
            if let Some(node) = adg.node_mut(id) {
                node.kind = crate::NodeKind::Pe(shared_pe.clone());
            }
        }
    }
    adg
}

/// Plasticine (Prabhakar et al., ISCA 2017), approximated per §III-C:
/// pattern-compute units (PCUs) are SIMD pipelines of statically-scheduled
/// dedicated PEs with "no memory and a larger datapath"; pattern-memory
/// units (PMUs) combine an address datapath with a banked scratchpad;
/// scalar/vector FIFOs (sync elements) sit at unit boundaries. Nested
/// parallelism is supported by letting the unit dataflow graphs
/// communicate over the inter-unit switch fabric.
#[must_use]
pub fn plasticine() -> Adg {
    let (mut adg, _main, _spad, inputs, outputs) = skeleton(
        "plasticine",
        MemSpec::scratchpad(32 << 10, 64).with_banks(4),
        8,
        4,
        4,
        16,
    );
    let ops = OpSet::integer_alu()
        .union(OpSet::integer_mul())
        .union(OpSet::floating_point());

    // Inter-unit switch fabric: a 2×3 grid (PCU/PMU columns interleaved).
    let (rows, cols) = (2usize, 3usize);
    let mut grid = vec![vec![NodeId::from_index(0); cols]; rows];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = adg.add_labeled(
                crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B64)),
                format!("gs{r}_{c}"),
            );
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                adg.add_link(grid[r][c], grid[r][c + 1]).unwrap();
                adg.add_link(grid[r][c + 1], grid[r][c]).unwrap();
            }
            if r + 1 < rows {
                adg.add_link(grid[r][c], grid[r + 1][c]).unwrap();
                adg.add_link(grid[r + 1][c], grid[r][c]).unwrap();
            }
        }
    }

    // Four PCUs: 4-stage SIMD pipelines behind vector FIFOs.
    let pe = PeSpec::new(Scheduling::Static, Sharing::Dedicated, ops);
    for u in 0..4usize {
        let (r, c) = (u / 2, (u % 2) * 2); // grid columns 0 and 2
        let entry = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(8).with_lanes(4)),
            format!("pcu{u}_fifo"),
        );
        adg.add_link(grid[r][c], entry).unwrap();
        let mut prev: Option<NodeId> = None;
        for s in 0..4usize {
            let stage = adg.add_labeled(
                crate::NodeKind::Pe(pe.clone()),
                format!("pcu{u}_s{s}"),
            );
            // Stage operands: pipeline predecessor + the entry FIFO + the
            // local grid switch (cross-unit operands).
            adg.add_link(entry, stage).unwrap();
            adg.add_link(grid[r][c], stage).unwrap();
            if let Some(p) = prev {
                adg.add_link(p, stage).unwrap();
            }
            prev = Some(stage);
        }
        adg.add_link(prev.expect("four stages"), grid[r][c]).unwrap();
    }

    // Two PMUs: banked scratchpad + address-datapath PE in grid column 1.
    let pmu_switches: Vec<NodeId> = grid.iter().take(2).map(|row| row[1]).collect();
    for (u, &sw) in pmu_switches.iter().enumerate() {
        let pmu_mem = adg.add_labeled(
            crate::NodeKind::Memory(
                MemSpec::scratchpad(16 << 10, 32)
                    .with_banks(4)
                    .with_controllers(MemControllers::linear_only()),
            ),
            format!("pmu{u}_mem"),
        );
        let addr_pe = adg.add_labeled(
            crate::NodeKind::Pe(PeSpec::new(
                Scheduling::Static,
                Sharing::Dedicated,
                OpSet::integer_alu().union(OpSet::integer_mul()),
            )),
            format!("pmu{u}_addr"),
        );
        let in_fifo = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(8).with_lanes(4)),
            format!("pmu{u}_in"),
        );
        let out_fifo = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(8).with_lanes(4)),
            format!("pmu{u}_out"),
        );
        adg.add_link(pmu_mem, in_fifo).unwrap();
        adg.add_link(in_fifo, sw).unwrap();
        adg.add_link(in_fifo, addr_pe).unwrap();
        adg.add_link(sw, addr_pe).unwrap();
        adg.add_link(addr_pe, sw).unwrap();
        adg.add_link(sw, out_fifo).unwrap();
        adg.add_link(out_fifo, pmu_mem).unwrap();
        // The control core must reach the PMU memory for stream commands.
        let ctrl = adg.control().expect("skeleton adds control");
        adg.add_link(ctrl, pmu_mem).unwrap();
    }

    // Main-memory/scratchpad ports attach to the fabric edges.
    for (i, sy) in inputs.iter().enumerate() {
        adg.add_link(*sy, grid[i % rows][i % cols]).unwrap();
    }
    for (i, sy) in outputs.iter().enumerate() {
        adg.add_link(grid[(i + 1) % rows][i % cols], *sy).unwrap();
    }
    adg
}

/// TABLA (Mahajan et al., HPCA 2016), approximated per §III-C: "a
/// hierarchical mesh of static-scheduled temporal PEs, each with their own
/// scratchpad. We could approximate TABLA if we decouple the scratchpad
/// control from the PE datapath control" — so each cluster's scratchpad is
/// a decoupled memory feeding the cluster through sync elements.
#[must_use]
pub fn tabla() -> Adg {
    let (mut adg, _main, _spad, inputs, outputs) = skeleton(
        "tabla",
        MemSpec::scratchpad(8 << 10, 64),
        6,
        3,
        4,
        16,
    );
    // TABLA accelerates statistical ML training: multiply-accumulate on
    // reals plus the usual ALU.
    let ops = OpSet::integer_alu()
        .union(OpSet::integer_mul())
        .union(OpSet::floating_point());
    let ctrl = adg.control().expect("skeleton adds control");

    // Global bus: one spine of switches linking four clusters.
    let spine: Vec<NodeId> = (0..2)
        .map(|i| {
            adg.add_labeled(
                crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B64)),
                format!("bus{i}"),
            )
        })
        .collect();
    // The global bus is wide: several parallel 64-bit lanes.
    for _ in 0..3 {
        adg.add_link(spine[0], spine[1]).unwrap();
        adg.add_link(spine[1], spine[0]).unwrap();
    }

    for cl in 0..4usize {
        // Per-cluster decoupled scratchpad.
        let lmem = adg.add_labeled(
            crate::NodeKind::Memory(MemSpec::scratchpad(2 << 10, 32)),
            format!("cl{cl}_mem"),
        );
        adg.add_link(ctrl, lmem).unwrap();
        let lsync = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(8).with_lanes(2)),
            format!("cl{cl}_port"),
        );
        let osync = adg.add_labeled(
            crate::NodeKind::Sync(SyncSpec::new(8).with_lanes(2)),
            format!("cl{cl}_out"),
        );
        adg.add_link(lmem, lsync).unwrap();
        adg.add_link(osync, lmem).unwrap();
        // Cluster switch + four temporal (shared, static) PEs.
        let csw = adg.add_labeled(
            crate::NodeKind::Switch(SwitchSpec::new(BitWidth::B64)),
            format!("cl{cl}_sw"),
        );
        adg.add_link(lsync, csw).unwrap();
        adg.add_link(csw, osync).unwrap();
        let bus = spine[cl / 2];
        for _ in 0..2 {
            adg.add_link(csw, bus).unwrap();
            adg.add_link(bus, csw).unwrap();
        }
        for p in 0..4usize {
            let pe = adg.add_labeled(
                crate::NodeKind::Pe(PeSpec::new(
                    Scheduling::Static,
                    Sharing::Shared {
                        max_instructions: 8,
                    },
                    ops,
                )),
                format!("cl{cl}_pe{p}"),
            );
            adg.add_link(csw, pe).unwrap();
            adg.add_link(csw, pe).unwrap();
            adg.add_link(pe, csw).unwrap();
        }
    }

    for (i, sy) in inputs.iter().enumerate() {
        adg.add_link(*sy, spine[i % 2]).unwrap();
    }
    for (i, sy) in outputs.iter().enumerate() {
        adg.add_link(spine[i % 2], *sy).unwrap();
    }
    adg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(adg: &Adg) {
        adg.validate()
            .unwrap_or_else(|e| panic!("{} invalid: {e}", adg.name()));
    }

    #[test]
    fn all_presets_validate() {
        for adg in [
            softbrain(),
            maeri(),
            triggered(),
            spu(),
            revel(),
            cca(),
            diannao_tree(),
            dse_initial(),
            plasticine(),
            tabla(),
        ] {
            check(&adg);
        }
        for shared in [false, true] {
            for dynamic in [false, true] {
                for indirect in [false, true] {
                    check(&baseline_4x4(shared, dynamic, indirect));
                }
            }
        }
    }

    #[test]
    fn softbrain_is_static_dedicated() {
        let f = softbrain().features();
        assert_eq!(f.dedicated_static_pes, 25);
        assert!(!f.has_dynamic_pes());
        assert!(!f.has_shared_pes());
        assert!(!f.indirect_memory);
    }

    #[test]
    fn spu_has_sparse_features() {
        let f = spu().features();
        assert_eq!(f.dedicated_dynamic_pes, 16);
        assert!(f.stream_join_pes >= 16);
        assert!(f.indirect_memory);
        assert!(f.atomic_update);
        assert!(f.banked_memory);
    }

    #[test]
    fn triggered_is_shared_dynamic() {
        let f = triggered().features();
        assert_eq!(f.shared_dynamic_pes, 16);
        assert!(f.total_instruction_slots >= 16 * 16);
    }

    #[test]
    fn revel_mixes_execution_models() {
        let f = revel().features();
        assert!(f.dedicated_static_pes > 0);
        assert!(f.shared_dynamic_pes > 0);
    }

    #[test]
    fn maeri_has_tree_shape() {
        let adg = maeri();
        // 16 leaf multipliers + 15 reduce adders.
        assert_eq!(adg.pes().count(), 31);
        // Distribute tree switches: 1 + 2 + 4 + 8 + 16.
        assert_eq!(adg.switches().count(), 31);
    }

    #[test]
    fn cca_has_fewest_switches() {
        assert!(cca().switches().count() < softbrain().switches().count());
    }

    #[test]
    fn dse_initial_is_5x4_full_capability() {
        let adg = dse_initial();
        let f = adg.features();
        assert_eq!(f.total_pes(), 20);
        assert!(f.has_dynamic_pes());
        assert!(f.has_shared_pes());
        assert!(f.indirect_memory);
        assert!(f.decomposable);
    }

    #[test]
    fn baseline_features_toggle() {
        let off = baseline_4x4(false, false, false).features();
        assert!(!off.has_shared_pes() && !off.has_dynamic_pes() && !off.indirect_memory);
        let on = baseline_4x4(true, true, true).features();
        assert!(on.has_shared_pes() && on.has_dynamic_pes() && on.indirect_memory);
        assert!(on.stream_join_pes > 0);
    }

    #[test]
    fn plasticine_has_pcus_and_pmus() {
        let adg = plasticine();
        // 4 PCUs × 4 stages + 2 PMU address PEs.
        assert_eq!(adg.pes().count(), 18);
        // PMU scratchpads are banked; skeleton scratchpad too.
        let banked = adg
            .memories()
            .filter(|m| matches!(adg.kind(*m), Ok(crate::NodeKind::Memory(s)) if s.banks > 1))
            .count();
        assert_eq!(banked, 3);
        assert!(!adg.features().has_dynamic_pes());
    }

    #[test]
    fn tabla_is_hierarchical_temporal() {
        let adg = tabla();
        let f = adg.features();
        // 16 shared static PEs across 4 clusters.
        assert_eq!(f.shared_static_pes, 16);
        assert!(!f.has_dynamic_pes());
        // Per-cluster decoupled scratchpads + skeleton memories.
        assert_eq!(adg.memories().count(), 6);
    }

    #[test]
    fn mesh_port_links_exist() {
        let adg = softbrain();
        for sy in adg.syncs() {
            let degree = adg.in_edges(sy).count() + adg.out_edges(sy).count();
            assert!(degree >= 2, "sync {sy} under-connected");
        }
    }
}
