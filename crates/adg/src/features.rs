//! Hardware feature summary used to gate modular compiler transformations.

use serde::{Deserialize, Serialize};

use crate::{Adg, NodeKind, OpSet, Scheduling};

/// A summary of which ISA-level features an ADG offers.
///
/// The modular compiler (§IV-C) "first inspects if the underlying hardware
/// has the corresponding feature" before applying a hardware-dependent
/// transformation; this type is that inspection's result. The DSE also uses
/// it to prune kernel versions that can never map.
///
/// # Example
///
/// ```
/// use dsagen_adg::presets;
///
/// let spu = presets::spu();
/// let f = spu.features();
/// assert!(f.stream_join_pes > 0);
/// assert!(f.indirect_memory);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Count of statically-scheduled dedicated PEs.
    pub dedicated_static_pes: u32,
    /// Count of statically-scheduled shared (temporal) PEs.
    pub shared_static_pes: u32,
    /// Count of dynamically-scheduled dedicated PEs.
    pub dedicated_dynamic_pes: u32,
    /// Count of dynamically-scheduled shared PEs.
    pub shared_dynamic_pes: u32,
    /// Count of PEs supporting stream-join control.
    pub stream_join_pes: u32,
    /// Whether any memory has an indirect stream controller.
    pub indirect_memory: bool,
    /// Whether any memory supports in-bank atomic update.
    pub atomic_update: bool,
    /// Whether any memory is banked (banks > 1).
    pub banked_memory: bool,
    /// Whether any memory coalesces strided requests (§III-C extension).
    pub coalescing_memory: bool,
    /// Whether the control core is programmable (can run scalar fallback
    /// code); false for the FSM sequencer of §III-C.
    pub programmable_control: bool,
    /// Total instruction slots across all PEs (dedicated PEs contribute 1).
    pub total_instruction_slots: u32,
    /// Union of all PE opcode sets.
    pub op_union: OpSet,
    /// Total sync-element input lanes on the memory→fabric side (bounds the
    /// usable vectorization width).
    pub total_input_lanes: u32,
    /// Total sync-element capacity in bytes (bounds the repetitive-update
    /// buffering optimization, §IV-D).
    pub sync_capacity_bytes: u64,
    /// Widest vector port (sync-element lane count); bounds how many
    /// stencil/filter taps the compiler can group onto one port.
    pub max_port_lanes: u16,
    /// Whether any PE or switch is decomposable to sub-word lanes.
    pub decomposable: bool,
}

impl FeatureSet {
    /// Whether any PE is dynamically scheduled.
    #[must_use]
    pub fn has_dynamic_pes(&self) -> bool {
        self.dedicated_dynamic_pes + self.shared_dynamic_pes > 0
    }

    /// Whether any PE is shared (temporal).
    #[must_use]
    pub fn has_shared_pes(&self) -> bool {
        self.shared_static_pes + self.shared_dynamic_pes > 0
    }

    /// Total number of PEs.
    #[must_use]
    pub fn total_pes(&self) -> u32 {
        self.dedicated_static_pes
            + self.shared_static_pes
            + self.dedicated_dynamic_pes
            + self.shared_dynamic_pes
    }
}

impl Adg {
    /// Summarizes this graph's ISA-level features.
    #[must_use]
    pub fn features(&self) -> FeatureSet {
        let mut f = FeatureSet::default();
        for node in self.nodes() {
            match &node.kind {
                NodeKind::Pe(pe) => {
                    match (pe.scheduling, pe.sharing.is_shared()) {
                        (Scheduling::Static, false) => f.dedicated_static_pes += 1,
                        (Scheduling::Static, true) => f.shared_static_pes += 1,
                        (Scheduling::Dynamic, false) => f.dedicated_dynamic_pes += 1,
                        (Scheduling::Dynamic, true) => f.shared_dynamic_pes += 1,
                    }
                    if pe.supports_stream_join() {
                        f.stream_join_pes += 1;
                    }
                    f.total_instruction_slots += pe.sharing.instruction_slots();
                    f.op_union = f.op_union.union(pe.ops);
                    f.decomposable |= pe.decomposable;
                }
                NodeKind::Switch(sw) => {
                    f.decomposable |= sw.decompose_to.is_some();
                }
                NodeKind::Sync(sy) => {
                    f.sync_capacity_bytes += sy.capacity_bytes();
                    f.max_port_lanes = f.max_port_lanes.max(u16::from(sy.lanes));
                    // Only count sync elements that are fed by a memory as
                    // input ports.
                    let fed_by_mem = self
                        .in_edges(node.id())
                        .any(|e| matches!(self.kind(e.src), Ok(NodeKind::Memory(_))));
                    if fed_by_mem {
                        f.total_input_lanes += u32::from(sy.lanes);
                    }
                }
                NodeKind::Memory(m) => {
                    f.indirect_memory |= m.controllers.indirect;
                    f.atomic_update |= m.controllers.atomic_update;
                    f.banked_memory |= m.banks > 1;
                    f.coalescing_memory |= m.controllers.coalescing;
                }
                NodeKind::Control(ctrl) => {
                    f.programmable_control |= ctrl.is_programmable();
                }
                NodeKind::Delay(_) => {}
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        Adg, CtrlSpec, MemControllers, MemSpec, OpSet, PeSpec, Scheduling, Sharing, SyncSpec,
    };

    #[test]
    fn feature_counts_reflect_graph() {
        let mut adg = Adg::new("f");
        adg.add_control(CtrlSpec::new());
        let mem = adg.add_memory(
            MemSpec::scratchpad(16 << 10, 64)
                .with_banks(8)
                .with_controllers(MemControllers::full()),
        );
        let sy = adg.add_sync(SyncSpec::new(8).with_lanes(4));
        adg.add_link(mem, sy).unwrap();
        adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        adg.add_pe(
            PeSpec::new(
                Scheduling::Dynamic,
                Sharing::Shared { max_instructions: 8 },
                OpSet::floating_point(),
            )
            .with_stream_join(true),
        );

        let f = adg.features();
        assert_eq!(f.dedicated_static_pes, 1);
        assert_eq!(f.shared_dynamic_pes, 1);
        assert_eq!(f.stream_join_pes, 1);
        assert_eq!(f.total_pes(), 2);
        assert_eq!(f.total_instruction_slots, 9);
        assert!(f.indirect_memory);
        assert!(f.atomic_update);
        assert!(f.banked_memory);
        assert_eq!(f.total_input_lanes, 4);
        assert!(f.op_union.is_superset(OpSet::floating_point()));
        assert!(f.has_dynamic_pes());
        assert!(f.has_shared_pes());
    }

    #[test]
    fn empty_graph_has_default_features() {
        let adg = Adg::new("empty");
        assert_eq!(adg.features(), super::FeatureSet::default());
    }

    #[test]
    fn sync_not_fed_by_memory_is_not_an_input_port() {
        let mut adg = Adg::new("f");
        adg.add_sync(SyncSpec::new(8).with_lanes(4));
        assert_eq!(adg.features().total_input_lanes, 0);
        assert_eq!(adg.features().sync_capacity_bytes, 8 * 8 * 4);
    }
}
