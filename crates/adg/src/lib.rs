//! Architecture description graph (ADG) for decoupled spatial accelerators.
//!
//! This crate implements the hardware design space of the DSAGEN framework
//! (Weng et al., ISCA 2020, §III). An accelerator is described as a graph —
//! the [`Adg`] — whose nodes are modular hardware primitives:
//!
//! * [`PeSpec`] — processing elements, parameterized by execution model
//!   (static vs. dynamic scheduling, dedicated vs. shared), functional-unit
//!   capability ([`OpSet`]), datapath width, FU decomposability, and
//!   stream-join support;
//! * [`SwitchSpec`] — network switches with a routing-connectivity matrix,
//!   optional sub-word decomposability, and an optional output flop;
//! * [`SyncSpec`] — synchronization elements (vector ports): FIFOs that
//!   bridge dynamically-timed producers (memories, dynamic PEs) and
//!   statically-scheduled consumers;
//! * [`DelaySpec`] — delay-FIFO elements used for pipeline balancing;
//! * [`MemSpec`] — decoupled memories with linear (inductive 2-D) and
//!   indirect stream controllers, banking, and optional atomic update;
//! * [`CtrlSpec`] — the control core that distributes stream-dataflow
//!   commands to every other component.
//!
//! Edges ([`Edge`]) are direct point-to-point connections with a bit width.
//!
//! The crate also ships the preset topologies used in the paper's
//! evaluation (§VII: Softbrain, MAERI, Triggered Instructions, SPU, REVEL)
//! in [`presets`], a composition-rule validator ([`Adg::validate`], §III-B),
//! and a [`FeatureSet`] summary that the modular compiler uses to gate its
//! hardware-dependent transformations (§IV).
//!
//! # Example
//!
//! ```
//! use dsagen_adg::{presets, Adg};
//!
//! let adg: Adg = presets::softbrain();
//! adg.validate()?;
//! assert!(adg.features().dedicated_static_pes > 0);
//! # Ok::<(), dsagen_adg::AdgError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
mod components;
mod dot;
mod error;
mod features;
mod fingerprint;
mod graph;
mod ids;
mod op;
pub mod presets;
pub mod text;

pub use bits::BitWidth;
pub use components::{
    CtrlKind, CtrlSpec, DelaySpec, MemControllers, MemKind, MemSpec, NodeKind, PeSpec, Routing, Scheduling,
    Sharing, SwitchSpec, SyncSpec,
};
pub use error::AdgError;
pub use features::FeatureSet;
pub use fingerprint::{stable_hash_of, StableHasher};
pub use graph::{Adg, Edge, Node};
pub use ids::{EdgeId, NodeId};
pub use op::{OpSet, Opcode};
