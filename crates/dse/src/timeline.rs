//! Post-run DSE timeline: convergence summary, rejection histogram, and
//! machine-readable artifact.
//!
//! [`DseTimeline::from_result`] folds a [`DseResult`] trace (plus the
//! explorer's [`TelemetrySnapshot`]) into per-run aggregates; [`render`]
//! (see [`DseTimeline::render`]) prints a human-readable convergence
//! report and [`DseTimeline::to_json`] emits the same data as a JSON
//! artifact suitable for CI upload or plotting.
//!
//! Everything here except the wall-clock columns is deterministic for a
//! fixed `(seed, shards)` — the timeline is a pure function of the trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::explorer::{DseResult, IterRecord, TelemetrySnapshot};

/// Aggregates for one exploration shard, folded from its trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard number (0 keeps the configured seed unchanged).
    pub shard: usize,
    /// Trace records produced (0 when the shard panicked wholesale).
    pub iters: usize,
    /// Accepted steps (including the two baseline iter-0 records).
    pub accepted: usize,
    /// Objective of the shard's final accepted design.
    pub final_objective: f64,
    /// Stochastic scheduling passes the shard executed (deterministic).
    pub sched_passes: u64,
    /// Schedule-cache hits the shard observed (deterministic).
    pub cache_hits: u64,
    /// Schedule-cache misses the shard observed (deterministic).
    pub cache_misses: u64,
    /// Shard wall-clock total in milliseconds (non-deterministic).
    pub wall_ms: f64,
}

/// Convergence summary of one DSE run — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DseTimeline {
    /// Winning-shard trace length.
    pub iters: usize,
    /// Winning-shard accepted steps.
    pub accepted: usize,
    /// Rejection histogram over the winning-shard trace, keyed by the
    /// [`RejectReason`](crate::RejectReason) display label, sorted by key.
    pub rejections: Vec<(String, u64)>,
    /// Initial design objective (perf²/mm²).
    pub initial_objective: f64,
    /// Best design objective.
    pub best_objective: f64,
    /// `best / initial` objective ratio.
    pub objective_gain: f64,
    /// Fractional area saved versus the initial hardware.
    pub area_saving: f64,
    /// Explorer work counters at the end of the run (cumulative,
    /// shard-aggregated — see [`TelemetrySnapshot`]).
    pub snapshot: TelemetrySnapshot,
    /// Per-shard aggregates, indexed by shard number.
    pub shards: Vec<ShardSummary>,
}

/// Folds one shard trace into its [`ShardSummary`].
fn fold_shard(shard: usize, trace: &[IterRecord]) -> ShardSummary {
    ShardSummary {
        shard,
        iters: trace.len(),
        accepted: trace.iter().filter(|r| r.accepted).count(),
        final_objective: trace.last().map_or(0.0, |r| r.objective),
        sched_passes: trace.iter().map(|r| r.sched_passes).sum(),
        cache_hits: trace.iter().map(|r| r.cache_hits).sum(),
        cache_misses: trace.iter().map(|r| r.cache_misses).sum(),
        wall_ms: trace.iter().map(|r| r.wall_ms).sum(),
    }
}

impl DseTimeline {
    /// Builds the timeline from a finished run and the explorer's
    /// end-of-run counter snapshot ([`Explorer::telemetry_snapshot`]
    /// (crate::Explorer::telemetry_snapshot)).
    #[must_use]
    pub fn from_result(result: &DseResult, snapshot: TelemetrySnapshot) -> Self {
        let mut rejections: BTreeMap<String, u64> = BTreeMap::new();
        for rec in &result.trace {
            if let Some(reason) = rec.rejected_reason {
                *rejections.entry(reason.to_string()).or_insert(0) += 1;
            }
        }
        DseTimeline {
            iters: result.trace.len(),
            accepted: result.trace.iter().filter(|r| r.accepted).count(),
            rejections: rejections.into_iter().collect(),
            initial_objective: result.initial.objective,
            best_objective: result.best.objective,
            objective_gain: result.objective_gain(),
            area_saving: result.area_saving(),
            snapshot,
            shards: result
                .shard_traces
                .iter()
                .enumerate()
                .map(|(s, t)| fold_shard(s, t))
                .collect(),
        }
    }

    /// Renders the human-readable convergence report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "DSE timeline");
        let _ = writeln!(
            out,
            "  steps {:>5}   accepted {:>4}   objective {:.4} -> {:.4} ({:.2}x)   area saved {:.1}%",
            self.iters,
            self.accepted,
            self.initial_objective,
            self.best_objective,
            self.objective_gain,
            100.0 * self.area_saving,
        );
        let _ = writeln!(out, "  work: {}", self.snapshot);
        if !self.rejections.is_empty() {
            let _ = writeln!(out, "  rejections (winning shard):");
            for (label, n) in &self.rejections {
                let _ = writeln!(out, "    {label:<16} {n:>6}");
            }
        }
        let _ = writeln!(
            out,
            "  {:>5} {:>6} {:>9} {:>14} {:>12} {:>11} {:>13} {:>10}",
            "shard", "iters", "accepted", "final obj", "sched", "cache hit", "cache miss", "wall ms"
        );
        for s in &self.shards {
            let _ = writeln!(
                out,
                "  {:>5} {:>6} {:>9} {:>14.4} {:>12} {:>11} {:>13} {:>10.1}",
                s.shard,
                s.iters,
                s.accepted,
                s.final_objective,
                s.sched_passes,
                s.cache_hits,
                s.cache_misses,
                s.wall_ms,
            );
        }
        out
    }

    /// Emits the timeline as a JSON artifact (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"iters\":{},\"accepted\":{},\"initial_objective\":{},\"best_objective\":{},\
             \"objective_gain\":{},\"area_saving\":{},\"sched_invocations\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"config_rejections\":{},\"rejections\":{{",
            self.iters,
            self.accepted,
            self.initial_objective,
            self.best_objective,
            self.objective_gain,
            self.area_saving,
            self.snapshot.sched_invocations,
            self.snapshot.cache.exact_hits + self.snapshot.cache.footprint_hits,
            self.snapshot.cache.misses,
            self.snapshot.config_rejections,
        );
        for (i, (label, n)) in self.rejections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{label}\":{n}");
        }
        out.push_str("},\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"iters\":{},\"accepted\":{},\"final_objective\":{},\
                 \"sched_passes\":{},\"cache_hits\":{},\"cache_misses\":{},\"wall_ms\":{}}}",
                s.shard,
                s.iters,
                s.accepted,
                s.final_objective,
                s.sched_passes,
                s.cache_hits,
                s.cache_misses,
                s.wall_ms,
            );
        }
        out.push_str("]}");
        out
    }
}
