//! Automated design-space exploration for DSAGEN (§V).
//!
//! The explorer performs hardware/software codesign by iterative graph
//! search: starting from an initial ADG, each step randomly adds/removes/
//! re-parameterizes components (within an area/power budget), re-schedules
//! every kernel version with the §V-A *repairing scheduler* (instead of
//! re-mapping from scratch), estimates performance with the §V-B model and
//! area/power with the §V-C regression model, and keeps the change only if
//! the `perf²/mm²` objective improves.
//!
//! Exploration is *sharded and memoized*: [`DseConfig::shards`] independent
//! deterministic searches run on up to [`DseConfig::threads`] worker
//! threads and merge through a deterministic reduction, so results depend
//! only on `(seed, shards)` — never on thread scheduling. Scheduling work
//! is cached in a [`ScheduleCache`] keyed by `(Adg::fingerprint,
//! CompiledKernel::content_hash)`: reverted mutations replay wholesale and
//! mutations outside a kernel's mapped footprint rebase the previous
//! schedule instead of re-running the stochastic search.
//!
//! # Example
//!
//! ```no_run
//! use dsagen_adg::presets;
//! use dsagen_dse::{explore, DseConfig};
//!
//! let kernels = vec![/* built with dsagen_dfg::KernelBuilder */];
//! let result = explore(presets::dse_initial(), &kernels, DseConfig::default());
//! println!(
//!     "saved {:.0}% area, {:.1}x objective",
//!     100.0 * result.area_saving(),
//!     result.objective_gain()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod explorer;
mod mutate;
mod timeline;

pub use cache::{schedule_footprint, CacheEntry, CacheStats, ScheduleCache};
pub use explorer::{
    explore, max_feature_set, shard_seed, DseConfig, DsePoint, DseResult, Explorer, IterRecord,
    RejectReason, ReliabilityMode, RunControl, StopCause, TelemetrySnapshot,
};
pub use mutate::{mutate, Mutation};
pub use timeline::{DseTimeline, ShardSummary};
