//! Automated design-space exploration for DSAGEN (§V).
//!
//! The explorer performs hardware/software codesign by iterative graph
//! search: starting from an initial ADG, each step randomly adds/removes/
//! re-parameterizes components (within an area/power budget), re-schedules
//! every kernel version with the §V-A *repairing scheduler* (instead of
//! re-mapping from scratch), estimates performance with the §V-B model and
//! area/power with the §V-C regression model, and keeps the change only if
//! the `perf²/mm²` objective improves.
//!
//! # Example
//!
//! ```no_run
//! use dsagen_adg::presets;
//! use dsagen_dse::{explore, DseConfig};
//!
//! let kernels = vec![/* built with dsagen_dfg::KernelBuilder */];
//! let result = explore(presets::dse_initial(), &kernels, DseConfig::default());
//! println!(
//!     "saved {:.0}% area, {:.1}x objective",
//!     100.0 * result.area_saving(),
//!     result.objective_gain()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod explorer;
mod mutate;

pub use explorer::{
    explore, max_feature_set, DseConfig, DsePoint, DseResult, Explorer, IterRecord, RejectReason,
};
pub use mutate::{mutate, Mutation};
