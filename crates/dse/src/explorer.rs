//! The iterative codesign loop (§V).

use std::collections::HashMap;

use dsagen_adg::{Adg, FeatureSet, OpSet};
use dsagen_dfg::{compile_kernel, enumerate_configs, CompiledKernel, Kernel};
use dsagen_hwgen::generate_config_paths;
use dsagen_model::{objective, AreaPowerModel, HwCost, PerfModel};
use dsagen_scheduler::{repair, schedule, Schedule, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mutate::mutate;

/// Explorer tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum exploration steps.
    pub max_iters: u32,
    /// Steps without improvement before exit (the paper uses 750, §VIII-B;
    /// scale down for quick runs).
    pub patience: u32,
    /// Scheduling iterations per repair/initialization (200 in the paper).
    pub sched_iters: u32,
    /// Area budget in mm² (step 2a: mutations must not exceed it).
    pub area_budget_mm2: f64,
    /// Power budget in mW.
    pub power_budget_mw: f64,
    /// Maximum vectorization degree enumerated per kernel.
    pub max_unroll: u16,
    /// Use schedule *repair* across steps (true) or re-map every schedule
    /// from scratch (false) — the Fig 11 comparison.
    pub use_repair: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            seed: 0xD5E,
            max_iters: 150,
            patience: 60,
            sched_iters: 200,
            area_budget_mm2: 5.0,
            power_budget_mw: 2000.0,
            max_unroll: 8,
            use_repair: true,
        }
    }
}

/// One point of the exploration trace (drives Fig 11 and Fig 14).
#[derive(Debug, Clone, PartialEq)]
pub struct IterRecord {
    /// Step number (0 = initial evaluation).
    pub iter: u32,
    /// Estimated area of the *current accepted* design.
    pub area_mm2: f64,
    /// Estimated power.
    pub power_mw: f64,
    /// Objective perf²/mm².
    pub objective: f64,
    /// Aggregate performance (geomean IPC across kernels).
    pub perf: f64,
    /// Whether this step's mutation was accepted.
    pub accepted: bool,
}

/// Final result of an exploration run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The best design found.
    pub best_adg: Adg,
    /// Its evaluation.
    pub best: DsePoint,
    /// The initial design's evaluation.
    pub initial: DsePoint,
    /// Full per-step trace.
    pub trace: Vec<IterRecord>,
}

impl DseResult {
    /// Area saved versus the initial hardware (the paper reports a mean of
    /// 42%, §VIII).
    #[must_use]
    pub fn area_saving(&self) -> f64 {
        1.0 - self.best.cost.area_mm2 / self.initial.cost.area_mm2.max(1e-12)
    }

    /// Objective improvement factor over the initial hardware (mean 12×
    /// in the paper).
    #[must_use]
    pub fn objective_gain(&self) -> f64 {
        self.best.objective / self.initial.objective.max(1e-12)
    }
}

/// Evaluation of one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// perf² / mm².
    pub objective: f64,
    /// Geomean IPC across kernels (best legal version each).
    pub perf: f64,
    /// Area/power estimate from the regression model.
    pub cost: HwCost,
    /// Chosen version and IPC per kernel (`None` when no version mapped).
    pub per_kernel: Vec<Option<(usize, f64)>>,
}

/// The design-space explorer: owns the evolving ADG, the compiled kernel
/// versions, and the persistent schedules being repaired.
#[derive(Debug)]
pub struct Explorer {
    cfg: DseConfig,
    adg: Adg,
    versions: Vec<Vec<CompiledKernel>>,
    schedules: HashMap<(usize, usize), Schedule>,
    rng: StdRng,
    area_model: AreaPowerModel,
    perf_model: PerfModel,
    used_ops: OpSet,
}

impl Explorer {
    /// Compiles every kernel into its candidate versions (against a
    /// maximal feature set, so versions survive hardware mutations) and
    /// prepares the explorer.
    #[must_use]
    pub fn new(adg: Adg, kernels: &[Kernel], cfg: DseConfig) -> Self {
        let mut max_features = adg.features();
        max_features.indirect_memory = true;
        max_features.atomic_update = true;
        max_features.banked_memory = true;
        max_features.stream_join_pes = max_features.stream_join_pes.max(8);
        max_features.op_union = OpSet::all();

        let mut versions = Vec::with_capacity(kernels.len());
        let mut used_ops = OpSet::new();
        for kernel in kernels {
            let mut vs = Vec::new();
            for config in enumerate_configs(kernel, &max_features, cfg.max_unroll) {
                if let Ok(ck) = compile_kernel(kernel, &config, &max_features) {
                    used_ops = used_ops.union(ck.requires.ops);
                    vs.push(ck);
                }
            }
            versions.push(vs);
        }

        Explorer {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            adg,
            versions,
            schedules: HashMap::new(),
            area_model: AreaPowerModel::default(),
            perf_model: PerfModel::default(),
            used_ops,
        }
    }

    /// The current (accepted) design.
    #[must_use]
    pub fn adg(&self) -> &Adg {
        &self.adg
    }

    /// Evaluates the current design: schedules every satisfiable version
    /// of every kernel (repairing previous schedules where enabled), picks
    /// the best legal version per kernel by modeled performance, and
    /// computes perf²/mm² (§V steps 2b–2d).
    pub fn evaluate(&mut self) -> DsePoint {
        let features = self.adg.features();
        let cost = self.area_model.estimate_adg(&self.adg);
        let config_len = generate_config_paths(&self.adg, 4, self.cfg.seed).longest() as u32;

        let sched_cfg = SchedulerConfig {
            max_iters: self.cfg.sched_iters,
            seed: self.cfg.seed ^ 0x5EED,
            ..SchedulerConfig::default()
        };

        let mut per_kernel = Vec::with_capacity(self.versions.len());
        let mut log_perf_sum = 0.0;
        let mut any_unmapped = false;
        for (ki, versions) in self.versions.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for (vi, version) in versions.iter().enumerate() {
                if !version.requires.satisfied_by(&features) {
                    continue;
                }
                let key = (ki, vi);
                let result = if self.cfg.use_repair {
                    match self.schedules.remove(&key) {
                        Some(prev) => repair(&self.adg, version, prev, &sched_cfg),
                        None => schedule(&self.adg, version, &sched_cfg),
                    }
                } else {
                    schedule(&self.adg, version, &sched_cfg)
                };
                if result.is_legal() {
                    let est = self.perf_model.estimate(
                        &self.adg,
                        version,
                        &result.schedule,
                        &result.eval,
                        config_len,
                    );
                    let perf = est.perf();
                    if best.is_none_or(|(_, p)| perf > p) {
                        best = Some((vi, perf));
                    }
                }
                self.schedules.insert(key, result.schedule);
            }
            match best {
                Some((_, perf)) => log_perf_sum += perf.max(1e-9).ln(),
                None => any_unmapped = true,
            }
            per_kernel.push(best);
        }

        let n = self.versions.len().max(1) as f64;
        let perf = if any_unmapped {
            1e-6 // unmappable kernels make the design essentially worthless
        } else {
            (log_perf_sum / n).exp()
        };
        let obj = if cost.area_mm2 > self.cfg.area_budget_mm2
            || cost.power_mw > self.cfg.power_budget_mw
        {
            0.0 // over budget: never accepted
        } else {
            objective(perf, cost.area_mm2)
        };
        DsePoint {
            objective: obj,
            perf,
            cost,
            per_kernel,
        }
    }

    /// Deterministic opening trim (the paper's iteration 2: "the redundant
    /// features, including known unneeded functional units … are removed",
    /// §VIII-B): shrink every PE's opcode set to the union the compiled
    /// kernel versions can ever use. Pure area/power win; performance is
    /// untouched because no needed FU disappears.
    fn trim_redundant_features(&mut self) {
        let used = self.used_ops;
        // Does any compiled version operate on sub-word data? If not, FU
        // and switch decomposability is pure overhead.
        let needs_subword = self.versions.iter().flatten().any(|v| {
            v.regions.iter().any(|r| {
                r.in_streams
                    .iter()
                    .chain(&r.out_streams)
                    .any(|s| s.elem_bytes < 8)
            })
        });
        let pes: Vec<_> = self.adg.pes().collect();
        for id in pes {
            if let Some(node) = self.adg.node_mut(id) {
                if let dsagen_adg::NodeKind::Pe(pe) = &mut node.kind {
                    let trimmed = pe.ops.intersection(used);
                    if !trimmed.is_empty() {
                        pe.ops = trimmed;
                    }
                    if !needs_subword {
                        pe.decomposable = false;
                    }
                }
            }
        }
        if !needs_subword {
            let switches: Vec<_> = self.adg.switches().collect();
            for id in switches {
                if let Some(node) = self.adg.node_mut(id) {
                    if let dsagen_adg::NodeKind::Switch(sw) = &mut node.kind {
                        sw.decompose_to = None;
                    }
                }
            }
        }
    }

    /// Runs the full exploration loop. Starts from the current ADG,
    /// mutates, evaluates with repaired schedules, accepts improvements,
    /// reverts regressions (§V step 2e), and stops after `patience` steps
    /// without improvement or `max_iters` total.
    pub fn run(&mut self) -> DseResult {
        let initial = self.evaluate();
        let mut trace = vec![IterRecord {
            iter: 0,
            area_mm2: initial.cost.area_mm2,
            power_mw: initial.cost.power_mw,
            objective: initial.objective,
            perf: initial.perf,
            accepted: true,
        }];
        // Opening trim, then re-evaluate: this is the loop's baseline.
        self.trim_redundant_features();
        let trimmed = self.evaluate();
        let mut best = if trimmed.objective >= initial.objective {
            trimmed
        } else {
            initial.clone()
        };
        trace.push(IterRecord {
            iter: 0,
            area_mm2: best.cost.area_mm2,
            power_mw: best.cost.power_mw,
            objective: best.objective,
            perf: best.perf,
            accepted: true,
        });
        let mut best_adg = self.adg.clone();
        let mut best_schedules = self.schedules.clone();
        let mut stale = 0u32;

        for iter in 1..=self.cfg.max_iters {
            // Mutate (redraw until something applies, bounded).
            let backup_adg = self.adg.clone();
            let backup_scheds = self.schedules.clone();
            let mut mutated = false;
            for _ in 0..12 {
                if mutate(&mut self.adg, &mut self.rng, &self.used_ops).is_some() {
                    mutated = true;
                    break;
                }
            }
            if !mutated {
                stale += 1;
                continue;
            }

            let point = self.evaluate();
            let accepted = point.objective > best.objective;
            if accepted {
                best = point.clone();
                best_adg = self.adg.clone();
                best_schedules = self.schedules.clone();
                stale = 0;
            } else {
                self.adg = backup_adg;
                self.schedules = backup_scheds;
                stale += 1;
            }
            trace.push(IterRecord {
                iter,
                area_mm2: best.cost.area_mm2,
                power_mw: best.cost.power_mw,
                objective: best.objective,
                perf: best.perf,
                accepted,
            });
            if stale >= self.cfg.patience {
                break;
            }
        }

        self.adg = best_adg.clone();
        self.schedules = best_schedules;
        DseResult {
            best_adg,
            best,
            initial,
            trace,
        }
    }
}

/// Convenience: explore `kernels` starting from `initial`.
pub fn explore(initial: Adg, kernels: &[Kernel], cfg: DseConfig) -> DseResult {
    Explorer::new(initial, kernels, cfg).run()
}

/// Reports which features a maximal compile would use — handy for tests.
#[must_use]
pub fn max_feature_set(adg: &Adg) -> FeatureSet {
    let mut f = adg.features();
    f.indirect_memory = true;
    f.atomic_update = true;
    f.op_union = OpSet::all();
    f
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{AffineExpr, KernelBuilder, MemClass, TripCount};

    use super::*;

    fn small_kernels() -> Vec<Kernel> {
        let mut out = Vec::new();
        // axpy
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let two = r.imm(2);
        let m = r.bin(Opcode::Mul, va, two);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        out.push(k.build().unwrap());
        // dot
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        out.push(k.build().unwrap());
        out
    }

    fn quick_cfg() -> DseConfig {
        DseConfig {
            max_iters: 20,
            patience: 20,
            sched_iters: 40,
            max_unroll: 4,
            ..DseConfig::default()
        }
    }

    #[test]
    fn initial_evaluation_is_feasible() {
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let p = ex.evaluate();
        assert!(p.objective > 0.0, "point: {p:?}");
        assert!(p.per_kernel.iter().all(Option::is_some));
    }

    #[test]
    fn exploration_never_regresses_best() {
        let result = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let mut prev = 0.0;
        for rec in &result.trace {
            assert!(rec.objective + 1e-12 >= prev, "objective regressed");
            prev = rec.objective;
        }
        assert!(result.best.objective >= result.initial.objective);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let b = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        assert_eq!(a.best.objective, b.best.objective);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn budget_zero_rejects_everything() {
        let cfg = DseConfig {
            area_budget_mm2: 0.0,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let p = ex.evaluate();
        assert_eq!(p.objective, 0.0);
    }

    #[test]
    fn opening_trim_strips_decomposability_for_wide_kernels() {
        // All test kernels are 64-bit, so FU/switch decomposability is a
        // redundant feature the opening trim must remove.
        let cfg = DseConfig {
            max_iters: 2,
            patience: 2,
            sched_iters: 30,
            max_unroll: 2,
            ..DseConfig::default()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        assert!(presets::dse_initial().features().decomposable);
        let _ = ex.run();
        assert!(
            !ex.adg().features().decomposable,
            "trim should strip decomposability"
        );
    }

    #[test]
    fn repair_mode_tracks_schedules_across_steps() {
        let cfg = DseConfig {
            max_iters: 6,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let _ = ex.run();
        assert!(!ex.schedules.is_empty());
    }
}
