//! The iterative codesign loop (§V).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use dsagen_adg::{Adg, FeatureSet, OpSet};
use dsagen_dfg::{compile_kernel, enumerate_configs, CompiledKernel, Kernel};
use dsagen_hwgen::generate_config_paths;
use dsagen_model::{objective, AreaPowerModel, HwCost, PerfModel};
use dsagen_scheduler::{repair_with_escalation, schedule, Schedule, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mutate::mutate;

/// Explorer tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum exploration steps.
    pub max_iters: u32,
    /// Steps without improvement before exit (the paper uses 750, §VIII-B;
    /// scale down for quick runs).
    pub patience: u32,
    /// Scheduling iterations per repair/initialization (200 in the paper).
    pub sched_iters: u32,
    /// Area budget in mm² (step 2a: mutations must not exceed it).
    pub area_budget_mm2: f64,
    /// Power budget in mW.
    pub power_budget_mw: f64,
    /// Maximum vectorization degree enumerated per kernel.
    pub max_unroll: u16,
    /// Use schedule *repair* across steps (true) or re-map every schedule
    /// from scratch (false) — the Fig 11 comparison.
    pub use_repair: bool,
    /// Wall-clock budget per candidate evaluation, in milliseconds. A step
    /// that exceeds it is rejected with [`RejectReason::TimedOut`] and the
    /// design reverted, so one pathological candidate cannot stall the
    /// whole exploration. `None` disables the budget.
    pub eval_budget_ms: Option<u64>,
    /// Test hook: deliberately panic inside candidate evaluation at this
    /// exploration step, to exercise the panic isolation without touching
    /// library code. `None` (always, in production) disables it.
    pub panic_at_iter: Option<u32>,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            seed: 0xD5E,
            max_iters: 150,
            patience: 60,
            sched_iters: 200,
            area_budget_mm2: 5.0,
            power_budget_mw: 2000.0,
            max_unroll: 8,
            use_repair: true,
            eval_budget_ms: None,
            panic_at_iter: None,
        }
    }
}

/// Why one exploration step's candidate design was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Candidate evaluation panicked; the panic was caught, the design
    /// reverted, and exploration continued.
    Panicked,
    /// Candidate evaluation exceeded [`DseConfig::eval_budget_ms`].
    TimedOut,
    /// The candidate blew the area or power budget (objective zeroed).
    OverBudget,
    /// Some kernel had no legal version on the candidate hardware.
    Unmappable,
    /// Evaluation succeeded but the objective did not improve on the best.
    WorseObjective,
    /// No mutation applied this step (all redraws failed), so there was no
    /// candidate to evaluate.
    NoMutation,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::Panicked => "panicked",
            RejectReason::TimedOut => "timed-out",
            RejectReason::OverBudget => "over-budget",
            RejectReason::Unmappable => "unmappable",
            RejectReason::WorseObjective => "worse-objective",
            RejectReason::NoMutation => "no-mutation",
        };
        f.write_str(s)
    }
}

/// One point of the exploration trace (drives Fig 11 and Fig 14).
#[derive(Debug, Clone, PartialEq)]
pub struct IterRecord {
    /// Step number (0 = initial evaluation).
    pub iter: u32,
    /// Estimated area of the *current accepted* design.
    pub area_mm2: f64,
    /// Estimated power.
    pub power_mw: f64,
    /// Objective perf²/mm².
    pub objective: f64,
    /// Aggregate performance (geomean IPC across kernels).
    pub perf: f64,
    /// Whether this step's mutation was accepted.
    pub accepted: bool,
    /// Why the step was rejected (`None` when accepted). Lets post-hoc
    /// analysis distinguish "evaluated worse" from "crashed / timed out /
    /// infeasible" candidates.
    pub rejected_reason: Option<RejectReason>,
}

/// Final result of an exploration run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The best design found.
    pub best_adg: Adg,
    /// Its evaluation.
    pub best: DsePoint,
    /// The initial design's evaluation.
    pub initial: DsePoint,
    /// Full per-step trace.
    pub trace: Vec<IterRecord>,
}

impl DseResult {
    /// Area saved versus the initial hardware (the paper reports a mean of
    /// 42%, §VIII).
    #[must_use]
    pub fn area_saving(&self) -> f64 {
        1.0 - self.best.cost.area_mm2 / self.initial.cost.area_mm2.max(1e-12)
    }

    /// Objective improvement factor over the initial hardware (mean 12×
    /// in the paper).
    #[must_use]
    pub fn objective_gain(&self) -> f64 {
        self.best.objective / self.initial.objective.max(1e-12)
    }
}

/// Evaluation of one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// perf² / mm².
    pub objective: f64,
    /// Geomean IPC across kernels (best legal version each).
    pub perf: f64,
    /// Area/power estimate from the regression model.
    pub cost: HwCost,
    /// Chosen version and IPC per kernel (`None` when no version mapped).
    pub per_kernel: Vec<Option<(usize, f64)>>,
}

/// The design-space explorer: owns the evolving ADG, the compiled kernel
/// versions, and the persistent schedules being repaired.
#[derive(Debug)]
pub struct Explorer {
    cfg: DseConfig,
    adg: Adg,
    versions: Vec<Vec<CompiledKernel>>,
    schedules: HashMap<(usize, usize), Schedule>,
    rng: StdRng,
    area_model: AreaPowerModel,
    perf_model: PerfModel,
    used_ops: OpSet,
}

impl Explorer {
    /// Compiles every kernel into its candidate versions (against a
    /// maximal feature set, so versions survive hardware mutations) and
    /// prepares the explorer.
    #[must_use]
    pub fn new(adg: Adg, kernels: &[Kernel], cfg: DseConfig) -> Self {
        let mut max_features = adg.features();
        max_features.indirect_memory = true;
        max_features.atomic_update = true;
        max_features.banked_memory = true;
        max_features.stream_join_pes = max_features.stream_join_pes.max(8);
        max_features.op_union = OpSet::all();

        let mut versions = Vec::with_capacity(kernels.len());
        let mut used_ops = OpSet::new();
        for kernel in kernels {
            let mut vs = Vec::new();
            for config in enumerate_configs(kernel, &max_features, cfg.max_unroll) {
                if let Ok(ck) = compile_kernel(kernel, &config, &max_features) {
                    used_ops = used_ops.union(ck.requires.ops);
                    vs.push(ck);
                }
            }
            versions.push(vs);
        }

        Explorer {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            adg,
            versions,
            schedules: HashMap::new(),
            area_model: AreaPowerModel::default(),
            perf_model: PerfModel::default(),
            used_ops,
        }
    }

    /// The current (accepted) design.
    #[must_use]
    pub fn adg(&self) -> &Adg {
        &self.adg
    }

    /// Evaluates the current design: schedules every satisfiable version
    /// of every kernel (repairing previous schedules where enabled), picks
    /// the best legal version per kernel by modeled performance, and
    /// computes perf²/mm² (§V steps 2b–2d).
    pub fn evaluate(&mut self) -> DsePoint {
        let features = self.adg.features();
        let cost = self.area_model.estimate_adg(&self.adg);
        let config_len = generate_config_paths(&self.adg, 4, self.cfg.seed).longest() as u32;

        let sched_cfg = SchedulerConfig {
            max_iters: self.cfg.sched_iters,
            seed: self.cfg.seed ^ 0x5EED,
            ..SchedulerConfig::default()
        };

        let mut per_kernel = Vec::with_capacity(self.versions.len());
        let mut log_perf_sum = 0.0;
        let mut any_unmapped = false;
        for (ki, versions) in self.versions.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for (vi, version) in versions.iter().enumerate() {
                if !version.requires.satisfied_by(&features) {
                    continue;
                }
                let key = (ki, vi);
                let result = if self.cfg.use_repair {
                    match self.schedules.remove(&key) {
                        // Repair with bounded retry-with-escalation: a
                        // fault- or mutation-degraded graph gets a second,
                        // doubled-budget attempt before the version is
                        // written off as illegal.
                        Some(prev) => {
                            repair_with_escalation(&self.adg, version, &prev, &sched_cfg, 2)
                        }
                        None => schedule(&self.adg, version, &sched_cfg),
                    }
                } else {
                    schedule(&self.adg, version, &sched_cfg)
                };
                if result.is_legal() {
                    let est = self.perf_model.estimate(
                        &self.adg,
                        version,
                        &result.schedule,
                        &result.eval,
                        config_len,
                    );
                    let perf = est.perf();
                    if best.is_none_or(|(_, p)| perf > p) {
                        best = Some((vi, perf));
                    }
                }
                self.schedules.insert(key, result.schedule);
            }
            match best {
                Some((_, perf)) => log_perf_sum += perf.max(1e-9).ln(),
                None => any_unmapped = true,
            }
            per_kernel.push(best);
        }

        let n = self.versions.len().max(1) as f64;
        let perf = if any_unmapped {
            1e-6 // unmappable kernels make the design essentially worthless
        } else {
            (log_perf_sum / n).exp()
        };
        let obj = if cost.area_mm2 > self.cfg.area_budget_mm2
            || cost.power_mw > self.cfg.power_budget_mw
        {
            0.0 // over budget: never accepted
        } else {
            objective(perf, cost.area_mm2)
        };
        DsePoint {
            objective: obj,
            perf,
            cost,
            per_kernel,
        }
    }

    /// Deterministic opening trim (the paper's iteration 2: "the redundant
    /// features, including known unneeded functional units … are removed",
    /// §VIII-B): shrink every PE's opcode set to the union the compiled
    /// kernel versions can ever use. Pure area/power win; performance is
    /// untouched because no needed FU disappears.
    fn trim_redundant_features(&mut self) {
        let used = self.used_ops;
        // Does any compiled version operate on sub-word data? If not, FU
        // and switch decomposability is pure overhead.
        let needs_subword = self.versions.iter().flatten().any(|v| {
            v.regions.iter().any(|r| {
                r.in_streams
                    .iter()
                    .chain(&r.out_streams)
                    .any(|s| s.elem_bytes < 8)
            })
        });
        let pes: Vec<_> = self.adg.pes().collect();
        for id in pes {
            if let Some(node) = self.adg.node_mut(id) {
                if let dsagen_adg::NodeKind::Pe(pe) = &mut node.kind {
                    let trimmed = pe.ops.intersection(used);
                    if !trimmed.is_empty() {
                        pe.ops = trimmed;
                    }
                    if !needs_subword {
                        pe.decomposable = false;
                    }
                }
            }
        }
        if !needs_subword {
            let switches: Vec<_> = self.adg.switches().collect();
            for id in switches {
                if let Some(node) = self.adg.node_mut(id) {
                    if let dsagen_adg::NodeKind::Switch(sw) = &mut node.kind {
                        sw.decompose_to = None;
                    }
                }
            }
        }
    }

    /// Evaluates the current (already mutated) candidate behind a panic
    /// shield and budget checks.
    ///
    /// A panic anywhere in the compile → schedule → model chain is caught
    /// and converted into [`RejectReason::Panicked`]; the caller reverts to
    /// the backed-up design, so one pathological candidate can never abort
    /// the exploration. Evaluations that outrun
    /// [`DseConfig::eval_budget_ms`] are likewise rejected.
    fn evaluate_candidate(&mut self, iter: u32) -> Result<DsePoint, RejectReason> {
        let started = Instant::now();
        let forced_panic = self.cfg.panic_at_iter;
        let point = catch_unwind(AssertUnwindSafe(|| {
            if forced_panic == Some(iter) {
                panic!("dse test hook: forced panic at iteration {iter}");
            }
            self.evaluate()
        }))
        .map_err(|_| RejectReason::Panicked)?;
        if let Some(budget_ms) = self.cfg.eval_budget_ms {
            if started.elapsed() > Duration::from_millis(budget_ms) {
                return Err(RejectReason::TimedOut);
            }
        }
        Ok(point)
    }

    /// Why an evaluated-but-not-accepted candidate lost.
    fn classify_rejection(&self, point: &DsePoint) -> RejectReason {
        if point.cost.area_mm2 > self.cfg.area_budget_mm2
            || point.cost.power_mw > self.cfg.power_budget_mw
        {
            RejectReason::OverBudget
        } else if point.per_kernel.iter().any(Option::is_none) {
            RejectReason::Unmappable
        } else {
            RejectReason::WorseObjective
        }
    }

    /// Runs the full exploration loop. Starts from the current ADG,
    /// mutates, evaluates with repaired schedules, accepts improvements,
    /// reverts regressions (§V step 2e), and stops after `patience` steps
    /// without improvement or `max_iters` total.
    ///
    /// Candidate evaluation is panic-isolated and time-budgeted (see
    /// [`Explorer::evaluate_candidate`]); every rejected step carries a
    /// [`RejectReason`] in its [`IterRecord`], so a run always completes
    /// with a full trace even if individual candidates crash.
    pub fn run(&mut self) -> DseResult {
        let initial = self.evaluate();
        let mut trace = vec![IterRecord {
            iter: 0,
            area_mm2: initial.cost.area_mm2,
            power_mw: initial.cost.power_mw,
            objective: initial.objective,
            perf: initial.perf,
            accepted: true,
            rejected_reason: None,
        }];
        // Opening trim, then re-evaluate: this is the loop's baseline.
        self.trim_redundant_features();
        let trimmed = self.evaluate();
        let mut best = if trimmed.objective >= initial.objective {
            trimmed
        } else {
            initial.clone()
        };
        trace.push(IterRecord {
            iter: 0,
            area_mm2: best.cost.area_mm2,
            power_mw: best.cost.power_mw,
            objective: best.objective,
            perf: best.perf,
            accepted: true,
            rejected_reason: None,
        });
        let mut best_adg = self.adg.clone();
        let mut best_schedules = self.schedules.clone();
        let mut stale = 0u32;

        for iter in 1..=self.cfg.max_iters {
            // Mutate (redraw until something applies, bounded).
            let backup_adg = self.adg.clone();
            let backup_scheds = self.schedules.clone();
            let mut mutated = false;
            for _ in 0..12 {
                if mutate(&mut self.adg, &mut self.rng, &self.used_ops).is_some() {
                    mutated = true;
                    break;
                }
            }
            if !mutated {
                stale += 1;
                trace.push(IterRecord {
                    iter,
                    area_mm2: best.cost.area_mm2,
                    power_mw: best.cost.power_mw,
                    objective: best.objective,
                    perf: best.perf,
                    accepted: false,
                    rejected_reason: Some(RejectReason::NoMutation),
                });
                if stale >= self.cfg.patience {
                    break;
                }
                continue;
            }

            let (accepted, rejected_reason) = match self.evaluate_candidate(iter) {
                Ok(point) if point.objective > best.objective => {
                    best = point;
                    best_adg = self.adg.clone();
                    best_schedules = self.schedules.clone();
                    stale = 0;
                    (true, None)
                }
                Ok(point) => {
                    let reason = self.classify_rejection(&point);
                    self.adg = backup_adg;
                    self.schedules = backup_scheds;
                    stale += 1;
                    (false, Some(reason))
                }
                Err(reason) => {
                    // The candidate crashed or outran its budget mid-way;
                    // the explorer state may be half-updated, so restore
                    // the backed-up design wholesale and move on.
                    self.adg = backup_adg;
                    self.schedules = backup_scheds;
                    stale += 1;
                    (false, Some(reason))
                }
            };
            trace.push(IterRecord {
                iter,
                area_mm2: best.cost.area_mm2,
                power_mw: best.cost.power_mw,
                objective: best.objective,
                perf: best.perf,
                accepted,
                rejected_reason,
            });
            if stale >= self.cfg.patience {
                break;
            }
        }

        self.adg = best_adg.clone();
        self.schedules = best_schedules;
        DseResult {
            best_adg,
            best,
            initial,
            trace,
        }
    }
}

/// Convenience: explore `kernels` starting from `initial`.
pub fn explore(initial: Adg, kernels: &[Kernel], cfg: DseConfig) -> DseResult {
    Explorer::new(initial, kernels, cfg).run()
}

/// Reports which features a maximal compile would use — handy for tests.
#[must_use]
pub fn max_feature_set(adg: &Adg) -> FeatureSet {
    let mut f = adg.features();
    f.indirect_memory = true;
    f.atomic_update = true;
    f.op_union = OpSet::all();
    f
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode};
    use dsagen_dfg::{AffineExpr, KernelBuilder, MemClass, TripCount};

    use super::*;

    /// Builds the two test kernels, propagating builder errors instead of
    /// unwrapping so a malformed fixture reports *what* failed.
    fn try_small_kernels() -> Result<Vec<Kernel>, dsagen_dfg::DfgError> {
        let mut out = Vec::new();
        // axpy
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let two = r.imm(2);
        let m = r.bin(Opcode::Mul, va, two);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        out.push(k.build()?);
        // dot
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        out.push(k.build()?);
        Ok(out)
    }

    fn small_kernels() -> Vec<Kernel> {
        match try_small_kernels() {
            Ok(ks) => ks,
            Err(e) => panic!("test kernel fixture failed to build: {e}"),
        }
    }

    fn quick_cfg() -> DseConfig {
        DseConfig {
            max_iters: 20,
            patience: 20,
            sched_iters: 40,
            max_unroll: 4,
            ..DseConfig::default()
        }
    }

    #[test]
    fn initial_evaluation_is_feasible() {
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let p = ex.evaluate();
        assert!(p.objective > 0.0, "point: {p:?}");
        assert!(p.per_kernel.iter().all(Option::is_some));
    }

    #[test]
    fn exploration_never_regresses_best() {
        let result = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let mut prev = 0.0;
        for rec in &result.trace {
            assert!(rec.objective + 1e-12 >= prev, "objective regressed");
            prev = rec.objective;
        }
        assert!(result.best.objective >= result.initial.objective);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let b = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        assert_eq!(a.best.objective, b.best.objective);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn budget_zero_rejects_everything() {
        let cfg = DseConfig {
            area_budget_mm2: 0.0,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let p = ex.evaluate();
        assert_eq!(p.objective, 0.0);
    }

    #[test]
    fn opening_trim_strips_decomposability_for_wide_kernels() {
        // All test kernels are 64-bit, so FU/switch decomposability is a
        // redundant feature the opening trim must remove.
        let cfg = DseConfig {
            max_iters: 2,
            patience: 2,
            sched_iters: 30,
            max_unroll: 2,
            ..DseConfig::default()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        assert!(presets::dse_initial().features().decomposable);
        let _ = ex.run();
        assert!(
            !ex.adg().features().decomposable,
            "trim should strip decomposability"
        );
    }

    #[test]
    fn repair_mode_tracks_schedules_across_steps() {
        let cfg = DseConfig {
            max_iters: 6,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let _ = ex.run();
        assert!(!ex.schedules.is_empty());
    }

    #[test]
    fn forced_panic_is_isolated_and_recorded_in_trace() {
        // A candidate evaluation that panics must not abort the search: the
        // step is rejected with `RejectReason::Panicked` and exploration
        // continues through the remaining iterations.
        let cfg = DseConfig {
            max_iters: 6,
            panic_at_iter: Some(2),
            ..quick_cfg()
        };
        let result = explore(presets::dse_initial(), &small_kernels(), cfg);
        let panicked: Vec<_> = result
            .trace
            .iter()
            .filter(|r| r.rejected_reason == Some(RejectReason::Panicked))
            .collect();
        assert_eq!(panicked.len(), 1, "exactly one forced panic expected");
        assert_eq!(panicked[0].iter, 2);
        assert!(!panicked[0].accepted);
        // Exploration ran past the panicking iteration.
        let last = result.trace.last().map_or(0, |r| r.iter);
        assert!(last > 2, "search stopped at iter {last}, expected > 2");
        assert!(result.best.objective > 0.0, "best point stays feasible");
    }

    #[test]
    fn panic_rollback_keeps_search_deterministic() {
        // After a caught panic the explorer restores the pre-step ADG and
        // schedules, so the surviving iterations match a panic-free run
        // step-for-step (modulo the panicked record itself).
        let clean = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let cfg = DseConfig {
            panic_at_iter: Some(3),
            ..quick_cfg()
        };
        let faulty = explore(presets::dse_initial(), &small_kernels(), cfg);
        assert_eq!(clean.trace.len(), faulty.trace.len());
        for (c, f) in clean.trace.iter().zip(&faulty.trace) {
            if f.rejected_reason == Some(RejectReason::Panicked) {
                continue; // the panicked step rejects where the clean run may accept
            }
            // Objectives can only diverge if the panicked step would have
            // been accepted in the clean run; the best never regresses.
            assert!(f.objective <= c.objective + 1e-12, "iter {}", f.iter);
        }
        assert!(faulty.best.objective > 0.0);
    }

    #[test]
    fn zero_time_budget_times_out_every_candidate() {
        let cfg = DseConfig {
            max_iters: 4,
            eval_budget_ms: Some(0),
            ..quick_cfg()
        };
        let result = explore(presets::dse_initial(), &small_kernels(), cfg);
        // The initial evaluation is exempt (it seeds the search), but every
        // mutation step must be rejected as timed-out.
        let steps: Vec<_> = result.trace.iter().filter(|r| r.iter > 0).collect();
        assert!(!steps.is_empty());
        for rec in steps {
            assert!(!rec.accepted);
            assert!(
                matches!(
                    rec.rejected_reason,
                    Some(RejectReason::TimedOut) | Some(RejectReason::NoMutation)
                ),
                "iter {}: {:?}",
                rec.iter,
                rec.rejected_reason
            );
        }
        // Only the iter-0 seeding (initial evaluation + opening trim) may
        // have contributed to the best point; no timed-out step did.
        let best_seed = result
            .trace
            .iter()
            .filter(|r| r.iter == 0)
            .map(|r| r.objective)
            .fold(0.0_f64, f64::max);
        assert_eq!(result.best.objective, best_seed);
    }

    #[test]
    fn reject_reasons_render_stable_labels() {
        for (reason, label) in [
            (RejectReason::Panicked, "panicked"),
            (RejectReason::TimedOut, "timed-out"),
            (RejectReason::OverBudget, "over-budget"),
            (RejectReason::Unmappable, "unmappable"),
            (RejectReason::WorseObjective, "worse-objective"),
            (RejectReason::NoMutation, "no-mutation"),
        ] {
            assert_eq!(reason.to_string(), label);
        }
    }
}
