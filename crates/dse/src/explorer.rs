//! The iterative codesign loop (§V), sharded and memoized.
//!
//! [`Explorer::run`] executes one or more *shards* — independent
//! deterministic searches from seed-perturbed frontiers — on a configurable
//! number of worker threads, then merges the shard results with a
//! deterministic reduction. Shard 0 always uses the configured seed
//! unchanged, so `shards = 1` reproduces the classic serial explorer
//! step-for-step, and the merged outcome depends only on `(seed, shards)`,
//! never on thread scheduling.
//!
//! Candidate evaluation memoizes scheduling work in a [`ScheduleCache`]:
//! revisited designs (reverted mutations) replay wholesale, and mutations
//! that leave a kernel's mapped footprint untouched rebase the previous
//! schedule instead of re-running the stochastic search.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsagen_adg::{Adg, FeatureSet, OpSet};
use dsagen_dfg::{compile_kernel, enumerate_configs, CompiledKernel, Kernel};
use dsagen_faults::FaultSchedule;
use dsagen_hwgen::{generate_config_paths, verify_round_trip_timed};
use dsagen_model::{objective, AreaPowerModel, HwCost, PerfModel};
use dsagen_scheduler::{
    evaluate as evaluate_schedule, repair_with_escalation_instrumented, schedule_instrumented,
    Problem, Schedule, SchedulerConfig,
};
use dsagen_store::{Artifact, ArtifactKey, ArtifactStore};
use dsagen_telemetry::{log, EventData, Level, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{schedule_footprint, CacheEntry, CacheStats, ScheduleCache};
use crate::mutate::mutate;

/// Explorer tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum exploration steps.
    pub max_iters: u32,
    /// Steps without improvement before exit (the paper uses 750, §VIII-B;
    /// scale down for quick runs).
    pub patience: u32,
    /// Scheduling iterations per repair/initialization (200 in the paper).
    pub sched_iters: u32,
    /// Area budget in mm² (step 2a: mutations must not exceed it).
    pub area_budget_mm2: f64,
    /// Power budget in mW.
    pub power_budget_mw: f64,
    /// Maximum vectorization degree enumerated per kernel.
    pub max_unroll: u16,
    /// Use schedule *repair* across steps (true) or re-map every schedule
    /// from scratch (false) — the Fig 11 comparison.
    pub use_repair: bool,
    /// Memoize scheduling outcomes in a [`ScheduleCache`] (exact replay of
    /// revisited designs, footprint-based rebasing of untouched mappings).
    /// Disable to measure raw scheduling cost in ablations.
    pub use_cache: bool,
    /// Independent exploration shards. Each shard is a full deterministic
    /// search from a seed-perturbed frontier; shard results merge with a
    /// deterministic reduction, so the outcome depends only on
    /// `(seed, shards)`. `0` means "one shard per worker thread". Shard 0
    /// always keeps `seed` unchanged, so `shards = 1` reproduces the
    /// serial explorer exactly.
    pub shards: usize,
    /// Worker threads executing shards — purely an executor width. For a
    /// fixed `(seed, shards)` the result is byte-identical for any thread
    /// count. Defaults to `DSAGEN_DSE_THREADS` (or 1 when unset).
    pub threads: usize,
    /// Wall-clock budget per candidate evaluation, in milliseconds. A step
    /// that exceeds it is rejected with [`RejectReason::TimedOut`] and the
    /// design reverted, so one pathological candidate cannot stall the
    /// whole exploration. `None` disables the budget.
    pub eval_budget_ms: Option<u64>,
    /// Test hook: deliberately panic inside candidate evaluation at this
    /// exploration step, to exercise the panic isolation without touching
    /// library code. `None` (always, in production) disables it.
    pub panic_at_iter: Option<u32>,
    /// Test hook: report a configuration-integrity failure (as if bitstream
    /// round-trip verification had rejected the candidate's config) at this
    /// exploration step, to exercise the [`RejectReason::ConfigMismatch`]
    /// path deterministically. `None` (always, in production) disables it.
    pub fail_config_at_iter: Option<u32>,
    /// Score candidates by *recovered throughput* under a sampled runtime
    /// fault schedule instead of fault-free performance alone. `None`
    /// (the default) preserves the classic objective exactly.
    pub reliability: Option<ReliabilityMode>,
}

/// Reliability-aware scoring: each candidate's per-kernel performance is
/// multiplied by its *recovered-throughput factor* — the fraction of
/// fault-free throughput the design sustains when a sampled
/// [`FaultSchedule`] strikes mid-execution and the runtime recovery flow
/// (detect → checkpoint → repair → verified reprogram → resume) handles
/// it. Designs that cannot be repaired score near zero; designs with
/// spare routes/PEs that repair cleanly keep most of their performance.
///
/// The factor is a pure function of `(sample seed, hardware fingerprint,
/// kernel hash)`, so sharded/threaded exploration stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityMode {
    /// Base seed for the sampled fault schedules.
    pub seed: u64,
    /// Faults drawn per sampled schedule.
    pub faults: usize,
    /// Arrival horizon in cycles (faults strike uniformly in `[1, horizon)`).
    pub horizon: u64,
    /// Blend weight in `[0, 1]`: the scoring multiplier is
    /// `(1 − weight) + weight × factor`, so `1.0` scores by recovered
    /// throughput alone and `0.0` degenerates to the classic objective.
    pub weight: f64,
    /// Recovered-throughput factor assigned to designs whose recovery
    /// *fails* (unrecoverable / verification / delivery failure).
    pub failure_factor: f64,
    /// Blast-radius pressure in `[0, 1]`: the recovered-throughput factor
    /// is additionally scaled by `(1 − blast_weight) + blast_weight ×
    /// isolation`, where `isolation = (regions − max_domain_regions + 1) /
    /// regions` from the mapping's [`dsagen_sim::RecoveryDomains`]. A
    /// fully-coupled mapping (one domain) scores `isolation = 1/regions`;
    /// fully-isolated (every region its own domain) and single-region
    /// mappings score `1.0`. The scale is always ≤ 1, so blast pressure
    /// can only shrink perceived performance — it rewards designs whose
    /// worst-case recovery scope stays small.
    pub blast_weight: f64,
}

impl Default for ReliabilityMode {
    fn default() -> Self {
        ReliabilityMode {
            seed: 0xFA17,
            faults: 2,
            horizon: 4096,
            weight: 1.0,
            failure_factor: 0.05,
            blast_weight: 0.25,
        }
    }
}

/// Worker-thread default: `DSAGEN_DSE_THREADS`, or 1.
fn env_threads() -> usize {
    std::env::var("DSAGEN_DSE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            seed: 0xD5E,
            max_iters: 150,
            patience: 60,
            sched_iters: 200,
            area_budget_mm2: 5.0,
            power_budget_mw: 2000.0,
            max_unroll: 8,
            use_repair: true,
            use_cache: true,
            shards: 0,
            threads: env_threads(),
            eval_budget_ms: None,
            panic_at_iter: None,
            fail_config_at_iter: None,
            reliability: None,
        }
    }
}

/// Why a run stopped before its natural convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopCause {
    /// The caller's cancellation token was set.
    Cancelled,
    /// The run's wall-clock deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopCause::Cancelled => "cancelled",
            StopCause::DeadlineExceeded => "deadline-exceeded",
        })
    }
}

/// Cooperative run control: an optional cancellation token and an
/// optional wall-clock deadline, both checked at exploration iteration
/// boundaries (never mid-evaluation — a step in flight always finishes,
/// so the trace stays coherent). The default is unrestricted.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Set to `true` (by any thread) to stop the run at the next
    /// iteration boundary.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Stop once this instant passes.
    pub deadline: Option<Instant>,
}

impl RunControl {
    /// Control with only a cancellation token.
    #[must_use]
    pub fn with_cancel(token: Arc<AtomicBool>) -> Self {
        RunControl {
            cancel: Some(token),
            deadline: None,
        }
    }

    /// Control with only a deadline `budget` from now.
    #[must_use]
    pub fn with_deadline_in(budget: Duration) -> Self {
        RunControl {
            cancel: None,
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Whether the run should stop now, and why. Cancellation wins ties.
    #[must_use]
    pub fn should_stop(&self) -> Option<StopCause> {
        if let Some(token) = &self.cancel {
            if token.load(Ordering::Relaxed) {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::DeadlineExceeded);
            }
        }
        None
    }
}

/// splitmix64 — used to derive statistically independent shard seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed shard `shard` explores from. Shard 0 keeps the configured
/// seed unchanged (serial-compatibility invariant); later shards perturb
/// it through splitmix64 so their searches diverge immediately.
#[must_use]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        seed
    } else {
        splitmix64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Why one exploration step's candidate design was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Candidate evaluation panicked; the panic was caught, the design
    /// reverted, and exploration continued.
    Panicked,
    /// Candidate evaluation exceeded [`DseConfig::eval_budget_ms`].
    TimedOut,
    /// The candidate blew the area or power budget (objective zeroed).
    OverBudget,
    /// Some kernel had no legal version on the candidate hardware.
    Unmappable,
    /// Evaluation succeeded but the objective did not improve on the best.
    WorseObjective,
    /// No mutation applied this step (all redraws failed), so there was no
    /// candidate to evaluate.
    NoMutation,
    /// Bitstream round-trip verification rejected the candidate's
    /// configuration: what the encoder emits does not decode back to the
    /// schedule, so simulating the design would model misprogrammed
    /// hardware. The design is reverted, never simulated.
    ConfigMismatch,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::Panicked => "panicked",
            RejectReason::TimedOut => "timed-out",
            RejectReason::OverBudget => "over-budget",
            RejectReason::Unmappable => "unmappable",
            RejectReason::WorseObjective => "worse-objective",
            RejectReason::NoMutation => "no-mutation",
            RejectReason::ConfigMismatch => "config-mismatch",
        };
        f.write_str(s)
    }
}

/// One point of the exploration trace (drives Fig 11 and Fig 14).
///
/// Besides the objective trajectory, each record carries the step's
/// *deterministic* work counters — scheduling passes executed and
/// schedule-cache hits/misses observed during this step — plus its
/// wall-clock time. Equality deliberately ignores `wall_ms` (the one
/// non-deterministic field), preserving the byte-identical-trace
/// contracts across thread counts and reruns.
#[derive(Debug, Clone)]
pub struct IterRecord {
    /// Step number (0 = initial evaluation).
    pub iter: u32,
    /// Estimated area of the *current accepted* design.
    pub area_mm2: f64,
    /// Estimated power.
    pub power_mw: f64,
    /// Objective perf²/mm².
    pub objective: f64,
    /// Aggregate performance (geomean IPC across kernels).
    pub perf: f64,
    /// Whether this step's mutation was accepted.
    pub accepted: bool,
    /// Why the step was rejected (`None` when accepted). Lets post-hoc
    /// analysis distinguish "evaluated worse" from "crashed / timed out /
    /// infeasible" candidates.
    pub rejected_reason: Option<RejectReason>,
    /// Stochastic scheduling passes executed during this step
    /// (deterministic).
    pub sched_passes: u64,
    /// Schedule-cache hits (exact + footprint) observed during this step
    /// (deterministic).
    pub cache_hits: u64,
    /// Schedule-cache misses observed during this step (deterministic).
    pub cache_misses: u64,
    /// Wall-clock time of this step in milliseconds. **Excluded from
    /// equality** — timing is the one field allowed to differ between
    /// otherwise identical runs.
    pub wall_ms: f64,
}

impl PartialEq for IterRecord {
    /// All fields except `wall_ms` (see the type-level docs).
    fn eq(&self, other: &Self) -> bool {
        self.iter == other.iter
            && self.area_mm2 == other.area_mm2
            && self.power_mw == other.power_mw
            && self.objective == other.objective
            && self.perf == other.perf
            && self.accepted == other.accepted
            && self.rejected_reason == other.rejected_reason
            && self.sched_passes == other.sched_passes
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
    }
}

/// Work-counter snapshot taken at the top of a step; see
/// [`Explorer::mark`] / [`Explorer::since`].
#[derive(Clone, Copy)]
struct StepMark {
    at: Instant,
    sched: u64,
    hits: u64,
    misses: u64,
}

/// Final result of an exploration run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// The best design found (across all shards).
    pub best_adg: Adg,
    /// Its evaluation.
    pub best: DsePoint,
    /// The initial design's evaluation (as seen by the winning shard).
    pub initial: DsePoint,
    /// Full per-step trace of the winning shard.
    pub trace: Vec<IterRecord>,
    /// Every shard's full trace, indexed by shard number (a shard that
    /// panicked wholesale contributes an empty trace). For a serial run
    /// this is a single-element vector equal to [`DseResult::trace`].
    pub shard_traces: Vec<Vec<IterRecord>>,
    /// `Some` when the run stopped early at a [`RunControl`] boundary
    /// (cancellation or deadline) rather than converging naturally. The
    /// result is still a coherent best-so-far.
    pub stopped: Option<StopCause>,
}

impl DseResult {
    /// Area saved versus the initial hardware (the paper reports a mean of
    /// 42%, §VIII).
    #[must_use]
    pub fn area_saving(&self) -> f64 {
        1.0 - self.best.cost.area_mm2 / self.initial.cost.area_mm2.max(1e-12)
    }

    /// Objective improvement factor over the initial hardware (mean 12×
    /// in the paper).
    #[must_use]
    pub fn objective_gain(&self) -> f64 {
        self.best.objective / self.initial.objective.max(1e-12)
    }
}

/// Evaluation of one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// perf² / mm².
    pub objective: f64,
    /// Geomean IPC across kernels (best legal version each).
    pub perf: f64,
    /// Area/power estimate from the regression model.
    pub cost: HwCost,
    /// Chosen version and IPC per kernel (`None` when no version mapped).
    pub per_kernel: Vec<Option<(usize, f64)>>,
}

/// The design-space explorer: owns the evolving ADG, the compiled kernel
/// versions, the persistent schedules being repaired, and the schedule
/// memoization cache.
#[derive(Debug)]
pub struct Explorer {
    cfg: DseConfig,
    adg: Adg,
    versions: Vec<Vec<CompiledKernel>>,
    /// `CompiledKernel::content_hash` per version — half the cache key.
    version_hashes: Vec<Vec<u64>>,
    schedules: HashMap<(usize, usize), Schedule>,
    /// Footprint fingerprint of the last *legal* schedule per version,
    /// minted on the ADG it was scheduled against.
    footprints: HashMap<(usize, usize), u64>,
    cache: ScheduleCache,
    /// Stochastic scheduling passes actually executed (cache misses).
    sched_invocations: u64,
    /// Schedules whose encoded configuration failed bitstream round-trip
    /// verification (each one a version written off, never simulated).
    config_rejections: u64,
    /// Memoized recovered-throughput factors, keyed by
    /// `(adg fingerprint, kernel hash)` — content-addressed, never stale.
    reliability_cache: HashMap<(u64, u64), f64>,
    rng: StdRng,
    area_model: AreaPowerModel,
    perf_model: PerfModel,
    used_ops: OpSet,
    /// Which shard this explorer is (0 for the serial / root explorer);
    /// stamped onto telemetry events.
    shard_index: usize,
    /// Telemetry handle — disabled by default, so instrumentation costs
    /// one branch per emission site. Cloned into every forked shard.
    telemetry: Telemetry,
    /// Disk-backed artifact-store tier for the schedule cache (warm start
    /// across processes). `None` (the default) keeps the explorer purely
    /// in-memory. Shared by every forked shard — sound because the
    /// scheduler seed is part of the store key.
    store: Option<ArtifactStore>,
    /// Cooperative cancellation/deadline control, checked at iteration
    /// boundaries. Shared (cloned) into every forked shard.
    control: RunControl,
}

/// A coherent snapshot of every explorer statistic, taken at one instant.
///
/// All counters are **cumulative since [`Explorer::new`]** and, after a
/// sharded [`Explorer::run`], **aggregated across every shard** (each
/// shard starts from fresh counters; the reduction absorbs them all, so
/// totals cover the whole run regardless of shard/thread layout).
/// Calling [`Explorer::run`] or [`Explorer::evaluate`] again keeps
/// accumulating — subtract two snapshots for per-run deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Schedule-cache hit/miss counters.
    pub cache: CacheStats,
    /// Stochastic scheduling passes executed (every cache hit is a pass
    /// *not* counted here).
    pub sched_invocations: u64,
    /// Schedules rejected by bitstream round-trip verification.
    pub config_rejections: u64,
}

impl TelemetrySnapshot {
    /// Field-wise difference (`self − earlier`) for per-run deltas.
    #[must_use]
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            cache: CacheStats {
                exact_hits: self.cache.exact_hits - earlier.cache.exact_hits,
                footprint_hits: self.cache.footprint_hits - earlier.cache.footprint_hits,
                store_hits: self.cache.store_hits - earlier.cache.store_hits,
                misses: self.cache.misses - earlier.cache.misses,
                insertions: self.cache.insertions - earlier.cache.insertions,
            },
            sched_invocations: self.sched_invocations - earlier.sched_invocations,
            config_rejections: self.config_rejections - earlier.config_rejections,
        }
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sched passes {} · cache {:.1}% hit ({} exact + {} footprint / {} lookups) · \
config rejections {}",
            self.sched_invocations,
            self.cache.hit_rate() * 100.0,
            self.cache.exact_hits,
            self.cache.footprint_hits,
            self.cache.lookups(),
            self.config_rejections
        )
    }
}

impl Explorer {
    /// Compiles every kernel into its candidate versions (against a
    /// maximal feature set, so versions survive hardware mutations) and
    /// prepares the explorer.
    #[must_use]
    pub fn new(adg: Adg, kernels: &[Kernel], cfg: DseConfig) -> Self {
        let mut max_features = adg.features();
        max_features.indirect_memory = true;
        max_features.atomic_update = true;
        max_features.banked_memory = true;
        max_features.stream_join_pes = max_features.stream_join_pes.max(8);
        max_features.op_union = OpSet::all();

        let mut versions = Vec::with_capacity(kernels.len());
        let mut used_ops = OpSet::new();
        for kernel in kernels {
            let mut vs = Vec::new();
            for config in enumerate_configs(kernel, &max_features, cfg.max_unroll) {
                if let Ok(ck) = compile_kernel(kernel, &config, &max_features) {
                    used_ops = used_ops.union(ck.requires.ops);
                    vs.push(ck);
                }
            }
            versions.push(vs);
        }
        let version_hashes = versions
            .iter()
            .map(|vs| vs.iter().map(CompiledKernel::content_hash).collect())
            .collect();

        Explorer {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            adg,
            versions,
            version_hashes,
            schedules: HashMap::new(),
            footprints: HashMap::new(),
            cache: ScheduleCache::new(),
            sched_invocations: 0,
            config_rejections: 0,
            reliability_cache: HashMap::new(),
            area_model: AreaPowerModel::default(),
            perf_model: PerfModel::default(),
            used_ops,
            shard_index: 0,
            telemetry: Telemetry::disabled(),
            store: None,
            control: RunControl::default(),
        }
    }

    /// Attaches a telemetry handle. The handle is cloned into every
    /// forked shard, so events from a sharded run share one sink (Chrome
    /// traces get one lane per worker thread). Instrumentation never
    /// changes exploration results — only observes them.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    /// Builder-style [`Explorer::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// Attaches a disk-backed artifact store as an extra schedule-cache
    /// tier: in-memory misses consult the store (and re-verify whatever
    /// they load), and fresh scheduling results are persisted back.
    /// Entries are keyed by `(adg fingerprint, kernel hash, scheduler
    /// seed)`, so determinism in `(seed, shards)` is preserved — a store
    /// can never replay a schedule minted under a different seed.
    pub fn attach_store(&mut self, store: ArtifactStore) {
        self.store = Some(store);
    }

    /// Builder-style [`Explorer::attach_store`].
    #[must_use]
    pub fn with_store(mut self, store: ArtifactStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Installs cooperative run control (cancellation token and/or
    /// deadline), checked at iteration boundaries of every shard.
    pub fn set_control(&mut self, control: RunControl) {
        self.control = control;
    }

    /// Builder-style [`Explorer::set_control`].
    #[must_use]
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// The current (accepted) design.
    #[must_use]
    pub fn adg(&self) -> &Adg {
        &self.adg
    }

    /// Schedule-cache hit/miss counters — cumulative since
    /// [`Explorer::new`], aggregated across shards after a sharded
    /// [`Explorer::run`] (see [`TelemetrySnapshot`] for the exact
    /// semantics shared by all three getters).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Stochastic scheduling passes executed — cumulative since
    /// [`Explorer::new`], aggregated across shards after a sharded run.
    /// Every cache hit is a pass *not* counted here — the quantity the
    /// memoization exists to minimize.
    #[must_use]
    pub fn sched_invocations(&self) -> u64 {
        self.sched_invocations
    }

    /// Schedules rejected by bitstream round-trip verification —
    /// cumulative since [`Explorer::new`], aggregated across shards after
    /// a sharded run. Always zero unless the encoder/decoder pair
    /// disagrees — every count here is a design the explorer refused to
    /// simulate on integrity grounds.
    #[must_use]
    pub fn config_rejections(&self) -> u64 {
        self.config_rejections
    }

    /// All explorer statistics read at one instant, with one shared
    /// semantics (cumulative, shard-aggregated — see
    /// [`TelemetrySnapshot`]). Prefer this over calling the individual
    /// getters when reporting, so counters can never be mixed across
    /// moments.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            cache: self.cache.stats(),
            sched_invocations: self.sched_invocations,
            config_rejections: self.config_rejections,
        }
    }

    /// Marks the current instant and deterministic work counters, so a
    /// step's [`IterRecord`] deltas can be computed with
    /// [`Explorer::since`].
    fn mark(&self) -> StepMark {
        let s = self.cache.stats();
        StepMark {
            at: Instant::now(),
            sched: self.sched_invocations,
            hits: s.exact_hits + s.footprint_hits,
            misses: s.misses,
        }
    }

    /// `(sched_passes, cache_hits, cache_misses, wall_ms)` accrued since
    /// `mark` was taken. The first three are deterministic; `wall_ms` is
    /// wall-clock and excluded from trace equality.
    fn since(&self, mark: StepMark) -> (u64, u64, u64, f64) {
        let s = self.cache.stats();
        (
            self.sched_invocations - mark.sched,
            (s.exact_hits + s.footprint_hits) - mark.hits,
            s.misses - mark.misses,
            mark.at.elapsed().as_secs_f64() * 1e3,
        )
    }

    /// Emits one `dse/iteration` event for a completed step. Free when
    /// telemetry is disabled (a single branch; the closure never runs).
    fn emit_iter(&self, rec: &IterRecord) {
        let m = self.telemetry.metrics();
        if m.is_enabled() {
            m.add("dse.iterations", 1);
            if rec.accepted {
                m.add("dse.accepted", 1);
            }
            if let Some(reason) = rec.rejected_reason {
                m.add(&format!("dse.rejections.{reason}"), 1);
            }
        }
        if let Some(reason) = rec.rejected_reason {
            self.telemetry.recorder().record("dse", || {
                (
                    "rejected".to_string(),
                    format!(
                        "iter={} shard={} reason={reason} objective={:.6}",
                        rec.iter, self.shard_index, rec.objective
                    ),
                )
            });
        }
        let shard = self.shard_index;
        self.telemetry.emit(|| {
            let mut ev = EventData::new("dse", "iteration")
                .arg("iter", u64::from(rec.iter))
                .arg("shard", shard as u64)
                .arg("accepted", rec.accepted)
                .arg("objective", rec.objective)
                .arg("area_mm2", rec.area_mm2)
                .arg("perf", rec.perf)
                .arg("sched_passes", rec.sched_passes)
                .arg("cache_hits", rec.cache_hits)
                .arg("cache_misses", rec.cache_misses)
                .arg("wall_ms", rec.wall_ms);
            if let Some(reason) = rec.rejected_reason {
                ev = ev.arg("rejected", reason.to_string());
            }
            ev
        });
    }

    /// Evaluates the current design: schedules every satisfiable version
    /// of every kernel (repairing previous schedules where enabled), picks
    /// the best legal version per kernel by modeled performance, and
    /// computes perf²/mm² (§V steps 2b–2d).
    ///
    /// Scheduling work is memoized (see [`ScheduleCache`]): a revisited
    /// `(hardware, kernel)` pair replays its cached outcome, and a
    /// mutation that leaves a kernel's mapped footprint byte-identical
    /// rebases the previous schedule (recomputing its evaluation and
    /// modeled performance honestly) instead of re-running the search.
    pub fn evaluate(&mut self) -> DsePoint {
        let features = self.adg.features();
        let cost = self.area_model.estimate_adg(&self.adg);
        let config_len = generate_config_paths(&self.adg, 4, self.cfg.seed).longest() as u32;
        let adg_fp = self.adg.fingerprint();

        let sched_cfg = SchedulerConfig {
            max_iters: self.cfg.sched_iters,
            seed: self.cfg.seed ^ 0x5EED,
            ..SchedulerConfig::default()
        };

        let mut per_kernel = Vec::with_capacity(self.versions.len());
        let mut log_perf_sum = 0.0;
        let mut any_unmapped = false;
        for (ki, versions) in self.versions.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for (vi, version) in versions.iter().enumerate() {
                if !version.requires.satisfied_by(&features) {
                    continue;
                }
                let key = (ki, vi);
                let ck_hash = self.version_hashes[ki][vi];

                // 1) Exact replay: this (hardware, kernel) pair has been
                //    scheduled before — typically right after a reverted
                //    mutation restored the previous fingerprint.
                if self.cfg.use_cache {
                    if let Some(entry) = self.cache.lookup(adg_fp, ck_hash) {
                        self.telemetry.metrics().add("dse.cache.hits", 1);
                        self.telemetry.recorder().record("dse", || {
                            (
                                "cache_hit".to_string(),
                                format!("kernel={ki} version={vi} kind=exact"),
                            )
                        });
                        let cached_sched = entry.schedule.clone();
                        let cached_perf = entry.perf;
                        let cached_fp = entry.footprint;
                        self.schedules.insert(key, cached_sched);
                        match cached_fp {
                            Some(f) => {
                                self.footprints.insert(key, f);
                            }
                            None => {
                                self.footprints.remove(&key);
                            }
                        }
                        if let Some(perf) = cached_perf {
                            if best.is_none_or(|(_, p)| perf > p) {
                                best = Some((vi, perf));
                            }
                        }
                        continue;
                    }
                }

                // 2) Store tier: a previous *process* scheduled this exact
                //    (hardware, kernel, scheduler seed) triple and
                //    persisted the result. Nothing loaded is trusted:
                //    the store already re-verified framing, key, and
                //    schedule digest, and here the schedule must still
                //    evaluate feasible and round-trip its bitstream on
                //    this ADG before it counts. Anything less falls
                //    through to the normal tiers.
                if self.cfg.use_cache && self.store.is_some() {
                    let store_key = ArtifactKey {
                        adg_fp,
                        kernel_hash: ck_hash,
                        sched_seed: sched_cfg.seed,
                    };
                    let loaded = self
                        .store
                        .as_ref()
                        .and_then(|s| s.get(store_key).ok().flatten());
                    if let Some(art) = loaded {
                        let problem = Problem::new(&self.adg, version);
                        let eval = evaluate_schedule(&problem, &art.schedule, &sched_cfg.weights);
                        if eval.feasible
                            && verify_round_trip_timed(&problem, &art.schedule, &eval).is_ok()
                        {
                            let est = self.perf_model.estimate(
                                &self.adg,
                                version,
                                &art.schedule,
                                &eval,
                                config_len,
                            );
                            let perf = est.perf();
                            let fp = schedule_footprint(&self.adg, &art.schedule);
                            self.cache.note_store_hit();
                            self.telemetry.metrics().add("dse.cache.store_hits", 1);
                            self.telemetry.recorder().record("dse", || {
                                (
                                    "cache_hit".to_string(),
                                    format!("kernel={ki} version={vi} kind=store"),
                                )
                            });
                            self.cache.insert(
                                adg_fp,
                                ck_hash,
                                CacheEntry {
                                    schedule: art.schedule.clone(),
                                    perf: Some(perf),
                                    footprint: fp,
                                },
                            );
                            match fp {
                                Some(f) => {
                                    self.footprints.insert(key, f);
                                }
                                None => {
                                    self.footprints.remove(&key);
                                }
                            }
                            self.schedules.insert(key, art.schedule);
                            if best.is_none_or(|(_, p)| perf > p) {
                                best = Some((vi, perf));
                            }
                            continue;
                        }
                        log(
                            Level::Warn,
                            format!(
                                "dse: store artifact for {store_key} failed re-verification; \
falling through to a full scheduling pass"
                            ),
                        );
                    }
                }

                // 3) Footprint rebase: the hardware changed, but every
                //    node/edge this version's previous legal schedule
                //    occupies is byte-identical. Skip the stochastic
                //    search; re-check legality and recompute the modeled
                //    performance honestly on the mutated graph.
                if self.cfg.use_cache {
                    let rebased = match (self.schedules.get(&key), self.footprints.get(&key)) {
                        (Some(prev), Some(&want))
                            if schedule_footprint(&self.adg, prev) == Some(want) =>
                        {
                            let problem = Problem::new(&self.adg, version);
                            let eval = evaluate_schedule(&problem, prev, &sched_cfg.weights);
                            if !eval.feasible {
                                None
                            } else if verify_round_trip_timed(&problem, prev, &eval).is_err() {
                                // Encoder/decoder disagreement on the rebased
                                // schedule: refuse the fast path and fall
                                // through to a full pass (whose result is
                                // verified again below).
                                self.config_rejections += 1;
                                self.telemetry.metrics().add("dse.config_rejections", 1);
                                None
                            } else {
                                let est = self.perf_model.estimate(
                                    &self.adg,
                                    version,
                                    prev,
                                    &eval,
                                    config_len,
                                );
                                Some((prev.clone(), est.perf(), want))
                            }
                        }
                        _ => None,
                    };
                    if let Some((sched, perf, fp)) = rebased {
                        self.cache.note_footprint_hit();
                        self.telemetry.metrics().add("dse.cache.hits", 1);
                        self.telemetry.recorder().record("dse", || {
                            (
                                "cache_hit".to_string(),
                                format!("kernel={ki} version={vi} kind=footprint"),
                            )
                        });
                        self.cache.insert(
                            adg_fp,
                            ck_hash,
                            CacheEntry {
                                schedule: sched,
                                perf: Some(perf),
                                footprint: Some(fp),
                            },
                        );
                        if best.is_none_or(|(_, p)| perf > p) {
                            best = Some((vi, perf));
                        }
                        continue;
                    }
                    self.cache.note_miss();
                    self.telemetry.metrics().add("dse.cache.misses", 1);
                }

                // 4) Full stochastic scheduling pass.
                self.sched_invocations += 1;
                self.telemetry.metrics().add("dse.sched_invocations", 1);
                let result = if self.cfg.use_repair {
                    match self.schedules.remove(&key) {
                        // Repair with bounded retry-with-escalation: a
                        // fault- or mutation-degraded graph gets a second,
                        // doubled-budget attempt before the version is
                        // written off as illegal.
                        Some(prev) => repair_with_escalation_instrumented(
                            &self.adg,
                            version,
                            &prev,
                            &sched_cfg,
                            2,
                            &self.telemetry,
                        ),
                        None => {
                            schedule_instrumented(&self.adg, version, &sched_cfg, &self.telemetry)
                        }
                    }
                } else {
                    schedule_instrumented(&self.adg, version, &sched_cfg, &self.telemetry)
                };
                let mut perf_out = None;
                let mut config_words: Option<Vec<u64>> = None;
                if result.is_legal() {
                    // Integrity gate (§VI): the schedule may only count if
                    // its encoded bitstream decodes back to exactly this
                    // configuration. A disagreement writes the version off
                    // as a first-class config rejection, never an undefined
                    // simulation.
                    let problem = Problem::new(&self.adg, version);
                    let verified = {
                        let _vs = self.telemetry.span("config", "verify");
                        verify_round_trip_timed(&problem, &result.schedule, &result.eval)
                    };
                    if let Ok(vc) = verified {
                        config_words = Some(vc.words().to_vec());
                        let est = {
                            let _ms = self.telemetry.span("model", "estimate");
                            self.perf_model.estimate(
                                &self.adg,
                                version,
                                &result.schedule,
                                &result.eval,
                                config_len,
                            )
                        };
                        let perf = est.perf();
                        perf_out = Some(perf);
                        if best.is_none_or(|(_, p)| perf > p) {
                            best = Some((vi, perf));
                        }
                    } else {
                        self.config_rejections += 1;
                        self.telemetry.metrics().add("dse.config_rejections", 1);
                    }
                }
                let fp = if perf_out.is_some() {
                    schedule_footprint(&self.adg, &result.schedule)
                } else {
                    None
                };
                match fp {
                    Some(f) => {
                        self.footprints.insert(key, f);
                    }
                    None => {
                        self.footprints.remove(&key);
                    }
                }
                if self.cfg.use_cache {
                    self.cache.insert(
                        adg_fp,
                        ck_hash,
                        CacheEntry {
                            schedule: result.schedule.clone(),
                            perf: perf_out,
                            footprint: fp,
                        },
                    );
                }
                // Persist verified outcomes so a future process warm-starts
                // from them. Best-effort: a store failure (including an
                // injected crash) costs only the warm start, never the run.
                if let (Some(store), Some(words), Some(_)) =
                    (&self.store, &config_words, perf_out)
                {
                    let art = Artifact {
                        key: ArtifactKey {
                            adg_fp,
                            kernel_hash: ck_hash,
                            sched_seed: sched_cfg.seed,
                        },
                        schedule: result.schedule.clone(),
                        perf: perf_out,
                        footprint: fp,
                        config_words: words.clone(),
                    };
                    if let Err(e) = store.put(&art) {
                        log(Level::Warn, format!("dse: artifact put failed: {e}"));
                    }
                }
                self.schedules.insert(key, result.schedule);
            }
            if best.is_none() {
                any_unmapped = true;
            }
            per_kernel.push(best);
        }

        // Aggregate after the version loop so reliability scoring (which
        // needs `&mut self` for its memo cache) can run per winner.
        for (ki, entry) in per_kernel.iter().enumerate() {
            if let Some((vi, perf)) = *entry {
                let mult = match self.cfg.reliability {
                    Some(mode) => {
                        self.reliability_multiplier(ki, vi, config_len, &sched_cfg, mode, adg_fp)
                    }
                    None => 1.0,
                };
                log_perf_sum += (perf * mult).max(1e-9).ln();
            }
        }

        let n = self.versions.len().max(1) as f64;
        let perf = if any_unmapped {
            1e-6 // unmappable kernels make the design essentially worthless
        } else {
            (log_perf_sum / n).exp()
        };
        let obj = if cost.area_mm2 > self.cfg.area_budget_mm2
            || cost.power_mw > self.cfg.power_budget_mw
        {
            0.0 // over budget: never accepted
        } else {
            objective(perf, cost.area_mm2)
        };
        DsePoint {
            objective: obj,
            perf,
            cost,
            per_kernel,
        }
    }

    /// The reliability-mode scoring multiplier for kernel `ki`'s winning
    /// version `vi`: `(1 − weight) + weight × factor`, where `factor` is
    /// the recovered-throughput fraction
    /// `fault-free cycles / recovered total cycles` of the design under a
    /// sampled fault schedule ([`ReliabilityMode::failure_factor`] when
    /// recovery fails). Memoized by `(adg fingerprint, kernel hash)`;
    /// deterministic regardless of shard/thread layout.
    fn reliability_multiplier(
        &mut self,
        ki: usize,
        vi: usize,
        config_len: u32,
        sched_cfg: &SchedulerConfig,
        mode: ReliabilityMode,
        adg_fp: u64,
    ) -> f64 {
        let ck_hash = self.version_hashes[ki][vi];
        let factor = match self.reliability_cache.get(&(adg_fp, ck_hash)) {
            Some(&f) => f,
            None => {
                let f = self.recovered_throughput(ki, vi, config_len, sched_cfg, mode, ck_hash);
                self.reliability_cache.insert((adg_fp, ck_hash), f);
                f
            }
        };
        let w = mode.weight.clamp(0.0, 1.0);
        (1.0 - w) + w * factor
    }

    /// Simulates kernel `ki` version `vi` under a sampled runtime fault
    /// schedule with the full recovery flow and returns the fraction of
    /// fault-free throughput that survives.
    fn recovered_throughput(
        &self,
        ki: usize,
        vi: usize,
        config_len: u32,
        sched_cfg: &SchedulerConfig,
        mode: ReliabilityMode,
        ck_hash: u64,
    ) -> f64 {
        let version = &self.versions[ki][vi];
        let Some(sched) = self.schedules.get(&(ki, vi)) else {
            return mode.failure_factor.clamp(0.0, 1.0);
        };
        let problem = Problem::new(&self.adg, version);
        let eval = evaluate_schedule(&problem, sched, &sched_cfg.weights);
        if !eval.feasible {
            return mode.failure_factor.clamp(0.0, 1.0);
        }
        let sim_cfg = dsagen_sim::SimConfig::default();
        let Ok(fault_free) =
            dsagen_sim::try_simulate(&self.adg, version, sched, &eval, config_len, &sim_cfg)
        else {
            return mode.failure_factor.clamp(0.0, 1.0);
        };
        // Sample deterministically per design point; arrivals beyond the
        // run length strike after completion and cost nothing, which is
        // honest — short kernels dodge late faults.
        let horizon = mode.horizon.max(2).min(fault_free.cycles.max(2));
        let faults = FaultSchedule::random(mode.seed ^ ck_hash, mode.faults, horizon);
        let policy = dsagen_sim::RecoveryPolicy {
            scheduler: SchedulerConfig {
                max_iters: sched_cfg.max_iters,
                seed: sched_cfg.seed ^ 0xFA17,
                ..SchedulerConfig::default()
            },
            repair_attempts: 2,
            ..dsagen_sim::RecoveryPolicy::default()
        };
        let raw = match dsagen_sim::run_with_degradation(
            &self.adg,
            version,
            sched,
            &eval,
            config_len,
            &sim_cfg,
            &faults,
            &policy,
            &self.telemetry,
        ) {
            // A degraded-mode finish is scored by what actually survives
            // — the measured throughput fraction — rather than the blunt
            // `failure_factor` the fail-stop path used to charge.
            Ok(out) => {
                let rep = out.report();
                if rep.total_cycles > 0 {
                    (fault_free.cycles as f64 / rep.total_cycles as f64).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
            Err(_) => mode.failure_factor.clamp(0.0, 1.0),
        };
        // Blast-radius pressure: scale by how well the mapping isolates
        // faults. Deterministic in the same (adg, kernel, schedule)
        // triple that keys the cache, so memoization stays sound.
        let bw = mode.blast_weight.clamp(0.0, 1.0);
        if bw <= 0.0 {
            return raw;
        }
        let doms = dsagen_sim::RecoveryDomains::derive(&self.adg, version, sched);
        let regions = doms.region_count().max(1) as f64;
        let worst = doms.max_domain_regions().max(1) as f64;
        let isolation = (regions - worst + 1.0) / regions;
        raw * ((1.0 - bw) + bw * isolation)
    }

    /// Deterministic opening trim (the paper's iteration 2: "the redundant
    /// features, including known unneeded functional units … are removed",
    /// §VIII-B): shrink every PE's opcode set to the union the compiled
    /// kernel versions can ever use. Pure area/power win; performance is
    /// untouched because no needed FU disappears.
    fn trim_redundant_features(&mut self) {
        let used = self.used_ops;
        // Does any compiled version operate on sub-word data? If not, FU
        // and switch decomposability is pure overhead.
        let needs_subword = self.versions.iter().flatten().any(|v| {
            v.regions.iter().any(|r| {
                r.in_streams
                    .iter()
                    .chain(&r.out_streams)
                    .any(|s| s.elem_bytes < 8)
            })
        });
        let pes: Vec<_> = self.adg.pes().collect();
        for id in pes {
            if let Some(node) = self.adg.node_mut(id) {
                if let dsagen_adg::NodeKind::Pe(pe) = &mut node.kind {
                    let trimmed = pe.ops.intersection(used);
                    if !trimmed.is_empty() {
                        pe.ops = trimmed;
                    }
                    if !needs_subword {
                        pe.decomposable = false;
                    }
                }
            }
        }
        if !needs_subword {
            let switches: Vec<_> = self.adg.switches().collect();
            for id in switches {
                if let Some(node) = self.adg.node_mut(id) {
                    if let dsagen_adg::NodeKind::Switch(sw) = &mut node.kind {
                        sw.decompose_to = None;
                    }
                }
            }
        }
    }

    /// Evaluates the current (already mutated) candidate behind a panic
    /// shield and budget checks.
    ///
    /// A panic anywhere in the compile → schedule → model chain is caught
    /// and converted into [`RejectReason::Panicked`]; the caller reverts to
    /// the backed-up design, so one pathological candidate can never abort
    /// the exploration. Evaluations that outrun
    /// [`DseConfig::eval_budget_ms`] are likewise rejected.
    fn evaluate_candidate(&mut self, iter: u32) -> Result<DsePoint, RejectReason> {
        let started = Instant::now();
        // Test hook: stand in for a bitstream round-trip failure without
        // needing a genuinely buggy encoder.
        if self.cfg.fail_config_at_iter == Some(iter) {
            self.config_rejections += 1;
            return Err(RejectReason::ConfigMismatch);
        }
        let config_rejections_before = self.config_rejections;
        let forced_panic = self.cfg.panic_at_iter;
        let point = match catch_unwind(AssertUnwindSafe(|| {
            if forced_panic == Some(iter) {
                panic!("dse test hook: forced panic at iteration {iter}");
            }
            self.evaluate()
        })) {
            Ok(point) => point,
            Err(_) => {
                self.telemetry
                    .recorder()
                    .record("dse", || ("panicked".to_string(), format!("iter={iter}")));
                let _ = self.telemetry.recorder().dump_on_error("dse_panicked");
                return Err(RejectReason::Panicked);
            }
        };
        // Any encoder/decoder disagreement during this evaluation rejects
        // the whole candidate: a design we cannot provably program is a
        // design we refuse to score.
        if self.config_rejections > config_rejections_before {
            return Err(RejectReason::ConfigMismatch);
        }
        if let Some(budget_ms) = self.cfg.eval_budget_ms {
            if started.elapsed() > Duration::from_millis(budget_ms) {
                self.telemetry.recorder().record("dse", || {
                    (
                        "timed_out".to_string(),
                        format!("iter={iter} budget_ms={budget_ms}"),
                    )
                });
                let _ = self.telemetry.recorder().dump_on_error("dse_timed_out");
                return Err(RejectReason::TimedOut);
            }
        }
        Ok(point)
    }

    /// Why an evaluated-but-not-accepted candidate lost.
    fn classify_rejection(&self, point: &DsePoint) -> RejectReason {
        if point.cost.area_mm2 > self.cfg.area_budget_mm2
            || point.cost.power_mw > self.cfg.power_budget_mw
        {
            RejectReason::OverBudget
        } else if point.per_kernel.iter().any(Option::is_none) {
            RejectReason::Unmappable
        } else {
            RejectReason::WorseObjective
        }
    }

    /// Runs the exploration. With one (effective) shard this is the classic
    /// serial loop; with more, shards run as independent deterministic
    /// searches on up to [`DseConfig::threads`] worker threads and merge
    /// through [`Explorer::reduce_shards`]. Either way the result depends
    /// only on `(seed, shards)` — never on thread count or scheduling.
    pub fn run(&mut self) -> DseResult {
        let shards = if self.cfg.shards == 0 {
            self.cfg.threads.max(1)
        } else {
            self.cfg.shards
        };
        let mut span = self.telemetry.span("phase", "dse");
        span.arg("shards", shards);
        span.arg("seed", self.cfg.seed);
        let result = if shards <= 1 {
            self.run_serial()
        } else {
            self.run_sharded(shards)
        };
        span.arg("iters", result.trace.len());
        span.arg("best_objective", result.best.objective);
        span.arg("objective_gain", result.objective_gain());
        span.end();
        result
    }

    /// The serial exploration loop (§V steps 1–2e): mutate, evaluate with
    /// repaired + memoized schedules, accept improvements, revert
    /// regressions, stop after `patience` stale steps or `max_iters`.
    ///
    /// Candidate evaluation is panic-isolated and time-budgeted (see
    /// [`Explorer::evaluate_candidate`]); every rejected step carries a
    /// [`RejectReason`] in its [`IterRecord`], so a run always completes
    /// with a full trace even if individual candidates crash.
    fn run_serial(&mut self) -> DseResult {
        let mark = self.mark();
        let initial = self.evaluate();
        let (sched_passes, cache_hits, cache_misses, wall_ms) = self.since(mark);
        let mut trace = vec![IterRecord {
            iter: 0,
            area_mm2: initial.cost.area_mm2,
            power_mw: initial.cost.power_mw,
            objective: initial.objective,
            perf: initial.perf,
            accepted: true,
            rejected_reason: None,
            sched_passes,
            cache_hits,
            cache_misses,
            wall_ms,
        }];
        self.emit_iter(&trace[0]);
        // Opening trim, then re-evaluate: this is the loop's baseline.
        let mark = self.mark();
        self.trim_redundant_features();
        let trimmed = self.evaluate();
        let (sched_passes, cache_hits, cache_misses, wall_ms) = self.since(mark);
        let mut best = if trimmed.objective >= initial.objective {
            trimmed
        } else {
            initial.clone()
        };
        trace.push(IterRecord {
            iter: 0,
            area_mm2: best.cost.area_mm2,
            power_mw: best.cost.power_mw,
            objective: best.objective,
            perf: best.perf,
            accepted: true,
            rejected_reason: None,
            sched_passes,
            cache_hits,
            cache_misses,
            wall_ms,
        });
        self.emit_iter(&trace[1]);
        let mut best_adg = self.adg.clone();
        let mut best_schedules = self.schedules.clone();
        let mut best_footprints = self.footprints.clone();
        let mut stale = 0u32;
        let mut stopped = None;

        for iter in 1..=self.cfg.max_iters {
            // Cooperative stop: cancellation and deadline are honored at
            // iteration boundaries only, so the trace never ends inside a
            // half-evaluated step.
            if let Some(cause) = self.control.should_stop() {
                stopped = Some(cause);
                self.telemetry.metrics().add("dse.stopped", 1);
                self.telemetry.recorder().record("dse", || {
                    (
                        "stopped".to_string(),
                        format!("iter={iter} shard={} cause={cause}", self.shard_index),
                    )
                });
                break;
            }
            let mark = self.mark();
            // Mutate (redraw until something applies, bounded).
            let backup_adg = self.adg.clone();
            let backup_scheds = self.schedules.clone();
            let backup_fps = self.footprints.clone();
            let mut mutated = false;
            for _ in 0..12 {
                if mutate(&mut self.adg, &mut self.rng, &self.used_ops).is_some() {
                    mutated = true;
                    break;
                }
            }
            if !mutated {
                stale += 1;
                let (sched_passes, cache_hits, cache_misses, wall_ms) = self.since(mark);
                trace.push(IterRecord {
                    iter,
                    area_mm2: best.cost.area_mm2,
                    power_mw: best.cost.power_mw,
                    objective: best.objective,
                    perf: best.perf,
                    accepted: false,
                    rejected_reason: Some(RejectReason::NoMutation),
                    sched_passes,
                    cache_hits,
                    cache_misses,
                    wall_ms,
                });
                self.emit_iter(trace.last().expect("just pushed"));
                if stale >= self.cfg.patience {
                    break;
                }
                continue;
            }

            let (accepted, rejected_reason) = match self.evaluate_candidate(iter) {
                Ok(point) if point.objective > best.objective => {
                    best = point;
                    best_adg = self.adg.clone();
                    best_schedules = self.schedules.clone();
                    best_footprints = self.footprints.clone();
                    stale = 0;
                    (true, None)
                }
                Ok(point) => {
                    let reason = self.classify_rejection(&point);
                    self.adg = backup_adg;
                    self.schedules = backup_scheds;
                    self.footprints = backup_fps;
                    stale += 1;
                    (false, Some(reason))
                }
                Err(reason) => {
                    // The candidate crashed or outran its budget mid-way;
                    // the explorer state may be half-updated, so restore
                    // the backed-up design wholesale and move on.
                    self.adg = backup_adg;
                    self.schedules = backup_scheds;
                    self.footprints = backup_fps;
                    stale += 1;
                    (false, Some(reason))
                }
            };
            let (sched_passes, cache_hits, cache_misses, wall_ms) = self.since(mark);
            trace.push(IterRecord {
                iter,
                area_mm2: best.cost.area_mm2,
                power_mw: best.cost.power_mw,
                objective: best.objective,
                perf: best.perf,
                accepted,
                rejected_reason,
                sched_passes,
                cache_hits,
                cache_misses,
                wall_ms,
            });
            self.emit_iter(trace.last().expect("just pushed"));
            if stale >= self.cfg.patience {
                break;
            }
        }

        self.adg = best_adg.clone();
        self.schedules = best_schedules;
        self.footprints = best_footprints;
        DseResult {
            best_adg,
            best,
            initial,
            shard_traces: vec![trace.clone()],
            trace,
            stopped,
        }
    }

    /// Builds the independent explorer that shard `shard` runs: same
    /// prepared kernel versions and starting ADG, fresh schedules/cache,
    /// and the shard-perturbed seed (see [`shard_seed`]).
    fn fork_shard(&self, shard: usize) -> Explorer {
        let seed = shard_seed(self.cfg.seed, shard);
        let cfg = DseConfig {
            seed,
            shards: 1,
            threads: 1,
            ..self.cfg
        };
        Explorer {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            adg: self.adg.clone(),
            versions: self.versions.clone(),
            version_hashes: self.version_hashes.clone(),
            schedules: HashMap::new(),
            footprints: HashMap::new(),
            cache: ScheduleCache::new(),
            sched_invocations: 0,
            config_rejections: 0,
            reliability_cache: HashMap::new(),
            area_model: AreaPowerModel::default(),
            perf_model: PerfModel::default(),
            used_ops: self.used_ops,
            shard_index: shard,
            // Shards share the event sink and flight recorder but fork the
            // metrics registry, so per-shard counters merge deterministically
            // in shard index order at reduction time.
            telemetry: self.telemetry.fork_shard(),
            // The store is shared (clones share one directory and counter
            // set) — sound because the scheduler seed is in the store key,
            // and each shard schedules under its own perturbed seed.
            store: self.store.clone(),
            control: self.control.clone(),
        }
    }

    /// Runs `shards` independent searches on up to `cfg.threads` worker
    /// threads (static round-robin shard→worker assignment; shard results
    /// are independent of which worker ran them) and reduces.
    fn run_sharded(&mut self, shards: usize) -> DseResult {
        let threads = self.cfg.threads.max(1).min(shards);
        let shard_exs: Vec<Explorer> = (0..shards).map(|s| self.fork_shard(s)).collect();

        let mut outcomes: Vec<(usize, Option<(Explorer, DseResult)>)> = if threads == 1 {
            shard_exs
                .into_iter()
                .enumerate()
                .map(|(s, mut ex)| {
                    let out = catch_unwind(AssertUnwindSafe(|| ex.run_serial())).ok();
                    (s, out.map(|r| (ex, r)))
                })
                .collect()
        } else {
            let mut buckets: Vec<Vec<(usize, Explorer)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (s, ex) in shard_exs.into_iter().enumerate() {
                buckets[s % threads].push((s, ex));
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(s, mut ex)| {
                                    let out =
                                        catch_unwind(AssertUnwindSafe(|| ex.run_serial())).ok();
                                    (s, out.map(|r| (ex, r)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_default())
                    .collect()
            })
        };
        outcomes.sort_by_key(|(s, _)| *s);
        self.reduce_shards(shards, outcomes)
    }

    /// Deterministic shard reduction: the winner is the shard with the
    /// highest best objective; ties break toward the smaller shard seed,
    /// then the earlier accepting iteration — an ordering independent of
    /// which thread finished first. The explorer adopts the winner's
    /// design/schedules and aggregates every shard's cache counters.
    fn reduce_shards(
        &mut self,
        shards: usize,
        outcomes: Vec<(usize, Option<(Explorer, DseResult)>)>,
    ) -> DseResult {
        let mut shard_traces: Vec<Vec<IterRecord>> = vec![Vec::new(); shards];
        let mut survivors: Vec<(usize, Explorer, DseResult)> = Vec::new();
        for (s, out) in outcomes {
            if let Some((ex, res)) = out {
                shard_traces[s] = res.trace.clone();
                survivors.push((s, ex, res));
            }
        }
        assert!(
            !survivors.is_empty(),
            "all {shards} DSE shards panicked wholesale"
        );

        // Last iteration at which a shard's best improved — the final
        // tie-break key.
        let accept_iter = |res: &DseResult| -> u32 {
            res.trace
                .iter()
                .filter(|r| r.accepted)
                .map(|r| r.iter)
                .next_back()
                .unwrap_or(0)
        };
        let mut win = 0usize;
        for i in 1..survivors.len() {
            let (ws, _, wr) = &survivors[win];
            let (cs, _, cr) = &survivors[i];
            let (wobj, cobj) = (wr.best.objective, cr.best.objective);
            let better = cobj > wobj
                || (cobj == wobj
                    && (shard_seed(self.cfg.seed, *cs) < shard_seed(self.cfg.seed, *ws)
                        || (shard_seed(self.cfg.seed, *cs) == shard_seed(self.cfg.seed, *ws)
                            && accept_iter(cr) < accept_iter(wr))));
            if better {
                win = i;
            }
        }

        // Aggregate counters from every shard, then adopt the winner.
        // Survivors are sorted by shard index, so metric absorption is
        // order-deterministic (and every merge operator commutes anyway).
        for (_, ex, _) in &survivors {
            self.cache.absorb_stats(&ex.cache.stats());
            self.sched_invocations += ex.sched_invocations();
            self.config_rejections += ex.config_rejections();
            self.telemetry
                .metrics()
                .absorb(&ex.telemetry.metrics().snapshot());
        }
        // Any shard observing a stop is reported (shards share one
        // control, so normally all agree); the winner's cause wins ties.
        let any_stopped = survivors.iter().find_map(|(_, _, r)| r.stopped);
        let (_, wex, wres) = survivors.swap_remove(win);
        self.adg = wex.adg;
        self.schedules = wex.schedules;
        self.footprints = wex.footprints;
        DseResult {
            best_adg: wres.best_adg,
            best: wres.best,
            initial: wres.initial,
            trace: wres.trace,
            shard_traces,
            stopped: wres.stopped.or(any_stopped),
        }
    }
}

/// Convenience: explore `kernels` starting from `initial`.
pub fn explore(initial: Adg, kernels: &[Kernel], cfg: DseConfig) -> DseResult {
    Explorer::new(initial, kernels, cfg).run()
}

/// Reports which features a maximal compile would use — handy for tests.
#[must_use]
pub fn max_feature_set(adg: &Adg) -> FeatureSet {
    let mut f = adg.features();
    f.indirect_memory = true;
    f.atomic_update = true;
    f.op_union = OpSet::all();
    f
}

#[cfg(test)]
pub(crate) mod tests {
    use dsagen_adg::{presets, BitWidth, Opcode, SwitchSpec};
    use dsagen_dfg::{AffineExpr, KernelBuilder, MemClass, TripCount};

    use super::*;

    /// Builds the two test kernels, propagating builder errors instead of
    /// unwrapping so a malformed fixture reports *what* failed.
    fn try_small_kernels() -> Result<Vec<Kernel>, dsagen_dfg::DfgError> {
        let mut out = Vec::new();
        // axpy
        let mut k = KernelBuilder::new("axpy");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let two = r.imm(2);
        let m = r.bin(Opcode::Mul, va, two);
        let s = r.bin(Opcode::Add, m, vb);
        r.store(b, AffineExpr::var(i), s);
        k.finish_region(r);
        out.push(k.build()?);
        // dot
        let mut k = KernelBuilder::new("dot");
        let a = k.array("a", BitWidth::B64, 256, MemClass::MainMemory);
        let b = k.array("b", BitWidth::B64, 256, MemClass::MainMemory);
        let c = k.array("c", BitWidth::B64, 1, MemClass::MainMemory);
        let mut r = k.region("body", 1.0);
        let i = r.for_loop(TripCount::fixed(256), true);
        let va = r.load(a, AffineExpr::var(i));
        let vb = r.load(b, AffineExpr::var(i));
        let p = r.bin(Opcode::Mul, va, vb);
        let acc = r.reduce(Opcode::Add, p, i);
        r.store(c, AffineExpr::constant(0), acc);
        k.finish_region(r);
        out.push(k.build()?);
        Ok(out)
    }

    pub(crate) fn small_kernels() -> Vec<Kernel> {
        match try_small_kernels() {
            Ok(ks) => ks,
            Err(e) => panic!("test kernel fixture failed to build: {e}"),
        }
    }

    fn quick_cfg() -> DseConfig {
        DseConfig {
            max_iters: 20,
            patience: 20,
            sched_iters: 40,
            max_unroll: 4,
            ..DseConfig::default()
        }
    }

    /// `quick_cfg` pinned to a single serial shard regardless of the
    /// `DSAGEN_DSE_THREADS` environment — for tests whose assertions are
    /// about the serial trace shape.
    fn serial_cfg() -> DseConfig {
        DseConfig {
            shards: 1,
            threads: 1,
            ..quick_cfg()
        }
    }

    #[test]
    fn initial_evaluation_is_feasible() {
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let p = ex.evaluate();
        assert!(p.objective > 0.0, "point: {p:?}");
        assert!(p.per_kernel.iter().all(Option::is_some));
    }

    #[test]
    fn reliability_mode_is_deterministic_and_only_shrinks_perf() {
        let mode = ReliabilityMode {
            faults: 1,
            horizon: 1024,
            ..ReliabilityMode::default()
        };
        let cfg = DseConfig {
            reliability: Some(mode),
            ..serial_cfg()
        };
        let pa = Explorer::new(presets::dse_initial(), &small_kernels(), cfg).evaluate();
        let pb = Explorer::new(presets::dse_initial(), &small_kernels(), cfg).evaluate();
        assert_eq!(pa.objective, pb.objective, "reliability scoring must be deterministic");
        assert_eq!(pa.perf, pb.perf);
        assert!(pa.objective.is_finite() && pa.objective >= 0.0);

        // Recovered throughput can never exceed fault-free throughput.
        let plain_cfg = DseConfig {
            reliability: None,
            ..cfg
        };
        let pc = Explorer::new(presets::dse_initial(), &small_kernels(), plain_cfg).evaluate();
        assert!(
            pa.perf <= pc.perf + 1e-9,
            "reliability perf {} exceeds fault-free perf {}",
            pa.perf,
            pc.perf
        );

        // weight = 0 degenerates to the classic objective exactly.
        let neutral_cfg = DseConfig {
            reliability: Some(ReliabilityMode {
                weight: 0.0,
                ..mode
            }),
            ..cfg
        };
        let pn = Explorer::new(presets::dse_initial(), &small_kernels(), neutral_cfg).evaluate();
        assert_eq!(pn.perf, pc.perf, "weight=0 must not perturb the objective");
        assert_eq!(pn.objective, pc.objective);
    }

    #[test]
    fn blast_radius_pressure_is_deterministic_and_only_shrinks_perf() {
        let base = ReliabilityMode {
            faults: 1,
            horizon: 1024,
            blast_weight: 0.0,
            ..ReliabilityMode::default()
        };
        let pressured = ReliabilityMode {
            blast_weight: 1.0,
            ..base
        };
        let eval_with = |mode| {
            Explorer::new(
                presets::dse_initial(),
                &small_kernels(),
                DseConfig {
                    reliability: Some(mode),
                    ..serial_cfg()
                },
            )
            .evaluate()
        };
        let plain = eval_with(base);
        let blast = eval_with(pressured);
        // The isolation scale is ≤ 1, so blast pressure can only shrink
        // perceived performance, never inflate it.
        assert!(
            blast.perf <= plain.perf + 1e-9,
            "blast-pressured perf {} exceeds unpressured perf {}",
            blast.perf,
            plain.perf
        );
        assert!(blast.objective.is_finite() && blast.objective >= 0.0);
        let again = eval_with(pressured);
        assert_eq!(blast.objective, again.objective, "blast scoring must be deterministic");
    }

    #[test]
    fn exploration_never_regresses_best() {
        let result = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let mut prev = 0.0;
        for rec in &result.trace {
            assert!(rec.objective + 1e-12 >= prev, "objective regressed");
            prev = rec.objective;
        }
        assert!(result.best.objective >= result.initial.objective);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        let b = explore(presets::dse_initial(), &small_kernels(), quick_cfg());
        assert_eq!(a.best.objective, b.best.objective);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn budget_zero_rejects_everything() {
        let cfg = DseConfig {
            area_budget_mm2: 0.0,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let p = ex.evaluate();
        assert_eq!(p.objective, 0.0);
    }

    #[test]
    fn opening_trim_strips_decomposability_for_wide_kernels() {
        // All test kernels are 64-bit, so FU/switch decomposability is a
        // redundant feature the opening trim must remove.
        let cfg = DseConfig {
            max_iters: 2,
            patience: 2,
            sched_iters: 30,
            max_unroll: 2,
            ..DseConfig::default()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        assert!(presets::dse_initial().features().decomposable);
        let _ = ex.run();
        assert!(
            !ex.adg().features().decomposable,
            "trim should strip decomposability"
        );
    }

    #[test]
    fn repair_mode_tracks_schedules_across_steps() {
        let cfg = DseConfig {
            max_iters: 6,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let _ = ex.run();
        assert!(!ex.schedules.is_empty());
    }

    #[test]
    fn forced_panic_is_isolated_and_recorded_in_trace() {
        // A candidate evaluation that panics must not abort the search: the
        // step is rejected with `RejectReason::Panicked` and exploration
        // continues through the remaining iterations.
        let cfg = DseConfig {
            max_iters: 6,
            panic_at_iter: Some(2),
            ..serial_cfg()
        };
        let result = explore(presets::dse_initial(), &small_kernels(), cfg);
        let panicked: Vec<_> = result
            .trace
            .iter()
            .filter(|r| r.rejected_reason == Some(RejectReason::Panicked))
            .collect();
        assert_eq!(panicked.len(), 1, "exactly one forced panic expected");
        assert_eq!(panicked[0].iter, 2);
        assert!(!panicked[0].accepted);
        // Exploration ran past the panicking iteration.
        let last = result.trace.last().map_or(0, |r| r.iter);
        assert!(last > 2, "search stopped at iter {last}, expected > 2");
        assert!(result.best.objective > 0.0, "best point stays feasible");
    }

    #[test]
    fn panic_rollback_keeps_search_deterministic() {
        // After a caught panic the explorer restores the pre-step ADG and
        // schedules, so the surviving iterations match a panic-free run
        // step-for-step (modulo the panicked record itself). Pinned to a
        // single serial shard: the comparison is about one search's
        // history, not about shard reduction.
        let clean = explore(presets::dse_initial(), &small_kernels(), serial_cfg());
        let cfg = DseConfig {
            panic_at_iter: Some(3),
            ..serial_cfg()
        };
        let faulty = explore(presets::dse_initial(), &small_kernels(), cfg);
        assert_eq!(clean.trace.len(), faulty.trace.len());
        for (c, f) in clean.trace.iter().zip(&faulty.trace) {
            if f.rejected_reason == Some(RejectReason::Panicked) {
                continue; // the panicked step rejects where the clean run may accept
            }
            // Objectives can only diverge if the panicked step would have
            // been accepted in the clean run; the best never regresses.
            assert!(f.objective <= c.objective + 1e-12, "iter {}", f.iter);
        }
        assert!(faulty.best.objective > 0.0);
    }

    #[test]
    fn zero_time_budget_times_out_every_candidate() {
        let cfg = DseConfig {
            max_iters: 4,
            eval_budget_ms: Some(0),
            ..serial_cfg()
        };
        let result = explore(presets::dse_initial(), &small_kernels(), cfg);
        // The initial evaluation is exempt (it seeds the search), but every
        // mutation step must be rejected as timed-out.
        let steps: Vec<_> = result.trace.iter().filter(|r| r.iter > 0).collect();
        assert!(!steps.is_empty());
        for rec in steps {
            assert!(!rec.accepted);
            assert!(
                matches!(
                    rec.rejected_reason,
                    Some(RejectReason::TimedOut) | Some(RejectReason::NoMutation)
                ),
                "iter {}: {:?}",
                rec.iter,
                rec.rejected_reason
            );
        }
        // Only the iter-0 seeding (initial evaluation + opening trim) may
        // have contributed to the best point; no timed-out step did.
        let best_seed = result
            .trace
            .iter()
            .filter(|r| r.iter == 0)
            .map(|r| r.objective)
            .fold(0.0_f64, f64::max);
        assert_eq!(result.best.objective, best_seed);
    }

    #[test]
    fn reject_reasons_render_stable_labels() {
        for (reason, label) in [
            (RejectReason::Panicked, "panicked"),
            (RejectReason::TimedOut, "timed-out"),
            (RejectReason::OverBudget, "over-budget"),
            (RejectReason::Unmappable, "unmappable"),
            (RejectReason::WorseObjective, "worse-objective"),
            (RejectReason::NoMutation, "no-mutation"),
            (RejectReason::ConfigMismatch, "config-mismatch"),
        ] {
            assert_eq!(reason.to_string(), label);
        }
    }

    #[test]
    fn healthy_exploration_never_rejects_on_config_integrity() {
        // Every schedule the explorer accepts has passed bitstream
        // round-trip verification; on a sane encoder/decoder pair the
        // rejection counter stays at zero.
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let p = ex.evaluate();
        assert!(p.per_kernel.iter().all(Option::is_some));
        assert_eq!(
            ex.config_rejections(),
            0,
            "encoder/decoder disagreed on a healthy design"
        );
    }

    #[test]
    fn forced_config_failure_is_a_first_class_rejection() {
        // The fail_config_at_iter hook stands in for a round-trip
        // verification failure: the step must be rejected with
        // `ConfigMismatch`, the design reverted, and the search continue.
        let cfg = DseConfig {
            max_iters: 6,
            fail_config_at_iter: Some(2),
            ..serial_cfg()
        };
        let result = explore(presets::dse_initial(), &small_kernels(), cfg);
        let rejected: Vec<_> = result
            .trace
            .iter()
            .filter(|r| r.rejected_reason == Some(RejectReason::ConfigMismatch))
            .collect();
        assert_eq!(rejected.len(), 1, "exactly one forced config failure");
        assert_eq!(rejected[0].iter, 2);
        assert!(!rejected[0].accepted);
        let last = result.trace.last().map_or(0, |r| r.iter);
        assert!(last > 2, "search stopped at iter {last}, expected > 2");
        assert!(result.best.objective > 0.0, "best point stays feasible");
    }

    #[test]
    fn config_failure_rollback_keeps_search_deterministic() {
        // After a config rejection the explorer restores the pre-step
        // design, so the surviving iterations match a clean run's best
        // trajectory (the rejected step can only lose an acceptance).
        let clean = explore(presets::dse_initial(), &small_kernels(), serial_cfg());
        let cfg = DseConfig {
            fail_config_at_iter: Some(3),
            ..serial_cfg()
        };
        let faulty = explore(presets::dse_initial(), &small_kernels(), cfg);
        assert_eq!(clean.trace.len(), faulty.trace.len());
        for (c, f) in clean.trace.iter().zip(&faulty.trace) {
            if f.rejected_reason == Some(RejectReason::ConfigMismatch) {
                continue;
            }
            assert!(f.objective <= c.objective + 1e-12, "iter {}", f.iter);
        }
        assert!(faulty.best.objective > 0.0);
    }

    #[test]
    fn shard_zero_keeps_the_configured_seed() {
        assert_eq!(shard_seed(0xD5E, 0), 0xD5E);
        // Later shards diverge, and distinct shards get distinct seeds.
        let seeds: Vec<u64> = (0..8).map(|s| shard_seed(0xD5E, s)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "shard seeds must not collide");
            }
        }
    }

    #[test]
    fn single_shard_run_matches_legacy_serial_run() {
        // `shards = 1` must reproduce the serial explorer exactly — the
        // compatibility contract that keeps historical traces comparable.
        let serial = explore(presets::dse_initial(), &small_kernels(), serial_cfg());
        let auto = explore(
            presets::dse_initial(),
            &small_kernels(),
            DseConfig {
                shards: 1,
                threads: 4, // executor width is irrelevant at one shard
                ..quick_cfg()
            },
        );
        assert_eq!(serial.trace, auto.trace);
        assert_eq!(serial.best.objective, auto.best.objective);
        assert_eq!(auto.shard_traces.len(), 1);
        assert_eq!(auto.shard_traces[0], auto.trace);
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        // Same (seed, shards), different executor widths: byte-identical.
        let mk = |threads: usize| {
            explore(
                presets::dse_initial(),
                &small_kernels(),
                DseConfig {
                    shards: 3,
                    threads,
                    max_iters: 8,
                    patience: 8,
                    ..quick_cfg()
                },
            )
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(one.trace, four.trace);
        assert_eq!(one.shard_traces, four.shard_traces);
        assert_eq!(one.best.objective.to_bits(), four.best.objective.to_bits());
        assert_eq!(one.best_adg, four.best_adg);
        assert_eq!(one.shard_traces.len(), 3);
    }

    #[test]
    fn sharded_best_is_at_least_the_serial_best() {
        // Shard 0 *is* the serial search, so adding shards can only help.
        let serial = explore(presets::dse_initial(), &small_kernels(), serial_cfg());
        let sharded = explore(
            presets::dse_initial(),
            &small_kernels(),
            DseConfig {
                shards: 2,
                threads: 2,
                ..quick_cfg()
            },
        );
        assert!(
            sharded.best.objective >= serial.best.objective - 1e-12,
            "sharded {} < serial {}",
            sharded.best.objective,
            serial.best.objective
        );
    }

    #[test]
    fn revisited_designs_replay_from_the_cache() {
        // Evaluating the same design twice must answer every version
        // lookup from the cache the second time, with an identical point
        // and no extra stochastic scheduling passes.
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let first = ex.evaluate();
        let invocations = ex.sched_invocations();
        assert!(invocations > 0);
        let second = ex.evaluate();
        assert_eq!(first, second, "cached replay must be bit-identical");
        assert_eq!(
            ex.sched_invocations(),
            invocations,
            "no new scheduling passes on a revisited design"
        );
        assert!(ex.cache_stats().exact_hits > 0);
    }

    #[test]
    fn mutation_outside_mapped_footprint_skips_rescheduling() {
        // Regression: `evaluate` used to re-run the stochastic scheduler
        // for every kernel even when a mutation only touched components no
        // schedule was mapped onto. Now the footprint fast path rebases
        // the previous schedules and the scheduling-pass count stays flat.
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
        let first = ex.evaluate();
        assert!(first.per_kernel.iter().all(Option::is_some));
        let invocations = ex.sched_invocations();

        // Mutate hardware no kernel can be mapped onto: an unconnected
        // switch changes the graph fingerprint but no schedule footprint.
        ex.adg.add_switch(SwitchSpec::new(BitWidth::B64));
        let second = ex.evaluate();
        assert!(second.per_kernel.iter().all(Option::is_some));
        assert_eq!(
            ex.sched_invocations(),
            invocations,
            "footprint-intact mutation must not re-run the scheduler"
        );
        let stats = ex.cache_stats();
        assert!(
            stats.footprint_hits > 0,
            "expected footprint rebases, got {stats:?}"
        );
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn disabling_the_cache_restores_raw_scheduling() {
        let cfg = DseConfig {
            use_cache: false,
            ..quick_cfg()
        };
        let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), cfg);
        let _ = ex.evaluate();
        let invocations = ex.sched_invocations();
        let _ = ex.evaluate();
        assert!(
            ex.sched_invocations() > invocations,
            "cache disabled: every evaluation schedules afresh"
        );
        assert_eq!(ex.cache_stats().lookups(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(6))]

        /// Footprint-rebase negative path: a memoized schedule whose
        /// footprint *fingerprint* still matches the mutated ADG but which
        /// is not actually rebasable (here: an impostor piling every op
        /// onto one node, simulating a fingerprint collision) must fall
        /// through to a cache miss and a fresh scheduling pass — never be
        /// served as a footprint hit.
        #[test]
        fn poisoned_footprint_collision_falls_through_to_miss(seed in 0u64..64) {
            use rand::SeedableRng;

            let mut ex = Explorer::new(presets::dse_initial(), &small_kernels(), quick_cfg());
            let clean = ex.evaluate();
            proptest::prop_assert!(clean.per_kernel.iter().all(Option::is_some));

            // Mutate the hardware with the explorer's own operator so the
            // graph fingerprint changes (no exact replay is possible).
            let original_fp = ex.adg.fingerprint();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut mutated = false;
            for _ in 0..3 {
                mutated |= mutate(&mut ex.adg, &mut rng, &ex.used_ops).is_some();
            }
            if !mutated || ex.adg.fingerprint() == original_fp {
                // Vacuous: nothing changed (or the mutations cancelled
                // out, making exact replay the correct answer).
                return Ok(());
            }

            // Keys `evaluate` will actually visit on the mutated hardware
            // (a mutation may leave a version's feature requirements
            // unsatisfied, in which case it is skipped without any lookup).
            let features = ex.adg.features();
            let mut visitable: Vec<(usize, usize)> = Vec::new();
            for (ki, versions) in ex.versions.iter().enumerate() {
                for (vi, version) in versions.iter().enumerate() {
                    if version.requires.satisfied_by(&features) {
                        visitable.push((ki, vi));
                    }
                }
            }

            // Poison every memoized schedule with the impostor, pinning
            // the recorded footprint fingerprint to the impostor's own so
            // the fingerprint equality check passes.
            let mut poisoned: HashMap<(usize, usize), Schedule> = HashMap::new();
            let keys: Vec<_> = ex.schedules.keys().copied().collect();
            for key in keys {
                let mut garbage = ex.schedules[&key].clone();
                let Some(first) = garbage.placement.iter().copied().flatten().next() else {
                    continue;
                };
                for slot in &mut garbage.placement {
                    if slot.is_some() {
                        *slot = Some(first);
                    }
                }
                garbage.routes.clear();
                let Some(fp) = schedule_footprint(&ex.adg, &garbage) else {
                    continue;
                };
                ex.schedules.insert(key, garbage.clone());
                ex.footprints.insert(key, fp);
                poisoned.insert(key, garbage);
            }
            let expect_miss: Vec<_> = visitable
                .iter()
                .filter(|k| poisoned.contains_key(k))
                .collect();
            if expect_miss.is_empty() {
                return Ok(()); // no poisoned key will be visited under this seed
            }

            let misses_before = ex.cache_stats().misses;
            let invocations_before = ex.sched_invocations();
            let second = ex.evaluate();

            // A kernel may legitimately fail to map on the mutated
            // hardware (per_kernel None) — what must never happen is the
            // impostor being *served*: every visited poisoned key
            // registers a miss and a fresh scheduling pass.
            let _ = second;
            proptest::prop_assert!(
                ex.cache_stats().misses >= misses_before + expect_miss.len() as u64,
                "every visited poisoned key must register a miss \
(before {misses_before}, after {}, poisoned visited {})",
                ex.cache_stats().misses,
                expect_miss.len()
            );
            proptest::prop_assert!(
                ex.sched_invocations() > invocations_before,
                "poisoned keys must trigger fresh scheduling passes"
            );
            // ...and no impostor may survive as the memoized schedule.
            for (key, garbage) in &poisoned {
                if let Some(now) = ex.schedules.get(key) {
                    proptest::prop_assert!(
                        now != garbage,
                        "impostor schedule served for {key:?}"
                    );
                }
            }
        }
    }
}
