//! Random ADG mutations for design-space exploration (§V step 2a:
//! "create a modified ADG where a random number of components are added or
//! removed (with random connectivity), without exceeding the power and
//! area budget").
//!
//! Per §V-D, the main-memory interface and the control core are fixed;
//! the scratchpad's parameters (but not its existence) are explored.

use dsagen_adg::{
    Adg, BitWidth, MemKind, NodeId, NodeKind, OpSet, Opcode, Scheduling, Sharing, SwitchSpec,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// The kinds of mutation the explorer draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Add a PE wired to nearby switches.
    AddPe,
    /// Remove a random PE.
    RemovePe,
    /// Add a switch wired into the network.
    AddSwitch,
    /// Remove a random switch.
    RemoveSwitch,
    /// Add a random link between network elements.
    AddLink,
    /// Remove a random link.
    RemoveLink,
    /// Flip a PE between static and dynamic scheduling.
    TogglePeScheduling,
    /// Flip a PE between dedicated and shared.
    TogglePeSharing,
    /// Add or remove a functional-unit family on a PE.
    MutatePeOps,
    /// Resize a sync element's depth or lanes.
    ResizeSync,
    /// Double or halve the scratchpad's banks, or toggle its indirect /
    /// atomic controllers.
    MutateScratchpad,
    /// Shrink a PE's opcode set to what the given used-ops table needs
    /// ("remove redundant features", §VIII-B).
    TrimPeOps,
    /// Toggle the scratchpad's strided-request coalescing (§III-C
    /// potential feature, implemented as an extension).
    ToggleCoalescing,
    /// Swap the control implementation between a programmable core and an
    /// FSM sequencer (§III-C "Alternate Control Cores" extension). Kernels
    /// needing scalar fallback code keep the design honest: their versions
    /// become unsatisfiable under an FSM, so the explorer only accepts the
    /// swap when every kernel still maps.
    SwapControlKind,
}

impl Mutation {
    /// All mutation kinds.
    pub const ALL: [Mutation; 14] = [
        Mutation::AddPe,
        Mutation::RemovePe,
        Mutation::AddSwitch,
        Mutation::RemoveSwitch,
        Mutation::AddLink,
        Mutation::RemoveLink,
        Mutation::TogglePeScheduling,
        Mutation::TogglePeSharing,
        Mutation::MutatePeOps,
        Mutation::ResizeSync,
        Mutation::MutateScratchpad,
        Mutation::TrimPeOps,
        Mutation::ToggleCoalescing,
        Mutation::SwapControlKind,
    ];
}

/// Applies one random mutation to `adg`. Returns a description of what
/// changed, or `None` if the drawn mutation was inapplicable (caller may
/// redraw). The mutated graph is only returned when it still validates.
pub fn mutate(
    adg: &mut Adg,
    rng: &mut StdRng,
    used_ops: &OpSet,
) -> Option<Mutation> {
    // `ALL` is a non-empty const; fall back to the first entry rather than
    // panicking if `choose` ever declines (e.g. a stub RNG).
    let kind = Mutation::ALL
        .choose(rng)
        .copied()
        .unwrap_or(Mutation::ALL[0]);
    let backup = adg.clone();
    let applied = apply(adg, rng, kind, used_ops);
    if applied && adg.validate().is_ok() {
        Some(kind)
    } else {
        *adg = backup;
        None
    }
}

fn random_pe(adg: &Adg, rng: &mut StdRng) -> Option<NodeId> {
    let pes: Vec<NodeId> = adg.pes().collect();
    pes.choose(rng).copied()
}

fn random_switch(adg: &Adg, rng: &mut StdRng) -> Option<NodeId> {
    let sws: Vec<NodeId> = adg.switches().collect();
    sws.choose(rng).copied()
}

fn apply(adg: &mut Adg, rng: &mut StdRng, kind: Mutation, used_ops: &OpSet) -> bool {
    match kind {
        Mutation::AddPe => {
            let Some(template) = random_pe(adg, rng) else {
                return false;
            };
            let spec = match adg.kind(template) {
                Ok(NodeKind::Pe(pe)) => pe.clone(),
                _ => return false,
            };
            let pe = adg.add_pe(spec);
            // Random connectivity to 2–3 switches.
            for _ in 0..rng.gen_range(2..=3usize) {
                let Some(sw) = random_switch(adg, rng) else {
                    return false;
                };
                let _ = adg.add_link(sw, pe);
            }
            if let Some(sw) = random_switch(adg, rng) {
                let _ = adg.add_link(pe, sw);
            }
            true
        }
        Mutation::RemovePe => {
            if adg.pes().count() <= 2 {
                return false;
            }
            let Some(pe) = random_pe(adg, rng) else {
                return false;
            };
            adg.remove_node(pe).is_ok()
        }
        Mutation::AddSwitch => {
            let Some(neigh) = random_switch(adg, rng) else {
                return false;
            };
            let spec = match adg.kind(neigh) {
                Ok(NodeKind::Switch(sw)) => sw.clone(),
                _ => SwitchSpec::new(BitWidth::B64),
            };
            let sw = adg.add_switch(spec);
            let _ = adg.add_link(neigh, sw);
            let _ = adg.add_link(sw, neigh);
            for _ in 0..rng.gen_range(1..=2usize) {
                if let Some(other) = random_switch(adg, rng) {
                    if other != sw {
                        let _ = adg.add_link(sw, other);
                        let _ = adg.add_link(other, sw);
                    }
                }
            }
            true
        }
        Mutation::RemoveSwitch => {
            if adg.switches().count() <= 2 {
                return false;
            }
            let Some(sw) = random_switch(adg, rng) else {
                return false;
            };
            adg.remove_node(sw).is_ok()
        }
        Mutation::AddLink => {
            let candidates: Vec<NodeId> = adg
                .nodes()
                .filter(|n| {
                    matches!(
                        n.kind,
                        NodeKind::Switch(_) | NodeKind::Pe(_) | NodeKind::Sync(_)
                    )
                })
                .map(|n| n.id())
                .collect();
            if candidates.len() < 2 {
                return false;
            }
            let (Some(&a), Some(&b)) = (candidates.choose(rng), candidates.choose(rng)) else {
                return false;
            };
            if a == b {
                return false;
            }
            adg.add_link(a, b).is_ok()
        }
        Mutation::RemoveLink => {
            let edges: Vec<_> = adg.edges().map(|e| e.id()).collect();
            let Some(e) = edges.choose(rng) else {
                return false;
            };
            adg.remove_edge(*e).is_ok()
        }
        Mutation::TogglePeScheduling => {
            let Some(id) = random_pe(adg, rng) else {
                return false;
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Pe(pe) = &mut node.kind {
                pe.scheduling = match pe.scheduling {
                    Scheduling::Static => Scheduling::Dynamic,
                    Scheduling::Dynamic => {
                        pe.stream_join = false; // static PEs cannot join
                        Scheduling::Static
                    }
                };
                if pe.scheduling.is_dynamic() {
                    pe.stream_join = true;
                }
                true
            } else {
                false
            }
        }
        Mutation::TogglePeSharing => {
            let Some(id) = random_pe(adg, rng) else {
                return false;
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Pe(pe) = &mut node.kind {
                pe.sharing = match pe.sharing {
                    Sharing::Dedicated => Sharing::Shared {
                        max_instructions: 8,
                    },
                    Sharing::Shared { .. } => Sharing::Dedicated,
                };
                true
            } else {
                false
            }
        }
        Mutation::MutatePeOps => {
            let Some(id) = random_pe(adg, rng) else {
                return false;
            };
            let family = match rng.gen_range(0..3) {
                0 => OpSet::integer_alu(),
                1 => OpSet::integer_mul(),
                _ => OpSet::floating_point(),
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Pe(pe) = &mut node.kind {
                if pe.ops.is_superset(family) && pe.ops.len() > family.len() {
                    // Remove the family.
                    let mut next = OpSet::new();
                    for op in pe.ops.iter() {
                        if !family.contains(op) {
                            next.insert(op);
                        }
                    }
                    pe.ops = next;
                } else {
                    pe.ops = pe.ops.union(family);
                }
                !pe.ops.is_empty()
            } else {
                false
            }
        }
        Mutation::ResizeSync => {
            let syncs: Vec<NodeId> = adg.syncs().collect();
            let Some(id) = syncs.choose(rng).copied() else {
                return false;
            };
            let grow = rng.gen_bool(0.5);
            let dim = rng.gen_bool(0.5);
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Sync(sy) = &mut node.kind {
                if dim {
                    sy.depth = if grow {
                        (sy.depth * 2).min(256)
                    } else {
                        (sy.depth / 2).max(2)
                    };
                } else {
                    sy.lanes = if grow {
                        (sy.lanes * 2).min(16)
                    } else {
                        (sy.lanes / 2).max(1)
                    };
                }
                true
            } else {
                false
            }
        }
        Mutation::MutateScratchpad => {
            let spads: Vec<NodeId> = adg
                .memories()
                .filter(|m| {
                    matches!(adg.kind(*m), Ok(NodeKind::Memory(spec)) if spec.kind == MemKind::Scratchpad)
                })
                .collect();
            let Some(id) = spads.choose(rng).copied() else {
                return false;
            };
            let choice = rng.gen_range(0..4);
            let grow = rng.gen_bool(0.5);
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Memory(m) = &mut node.kind {
                match choice {
                    0 => {
                        m.banks = if grow {
                            (m.banks.saturating_mul(2)).min(32)
                        } else {
                            (m.banks / 2).max(1)
                        };
                    }
                    1 => {
                        m.controllers.indirect = !m.controllers.indirect;
                        if !m.controllers.indirect {
                            m.controllers.atomic_update = false;
                        }
                    }
                    2 => {
                        m.controllers.atomic_update =
                            m.controllers.indirect && !m.controllers.atomic_update;
                    }
                    _ => {
                        m.width_bytes = if grow {
                            (m.width_bytes * 2).min(128)
                        } else {
                            (m.width_bytes / 2).max(8)
                        };
                    }
                }
                m.controllers.linear = true;
                true
            } else {
                false
            }
        }
        Mutation::ToggleCoalescing => {
            let spads: Vec<NodeId> = adg
                .memories()
                .filter(|m| {
                    matches!(adg.kind(*m), Ok(NodeKind::Memory(spec)) if spec.kind == MemKind::Scratchpad)
                })
                .collect();
            let Some(id) = spads.choose(rng).copied() else {
                return false;
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Memory(m) = &mut node.kind {
                m.controllers.coalescing = !m.controllers.coalescing;
                true
            } else {
                false
            }
        }
        Mutation::SwapControlKind => {
            let Some(id) = adg.control() else {
                return false;
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Control(ctrl) = &mut node.kind {
                ctrl.kind = match ctrl.kind {
                    dsagen_adg::CtrlKind::ProgrammableCore => dsagen_adg::CtrlKind::Fsm,
                    dsagen_adg::CtrlKind::Fsm => dsagen_adg::CtrlKind::ProgrammableCore,
                };
                true
            } else {
                false
            }
        }
        Mutation::TrimPeOps => {
            let Some(id) = random_pe(adg, rng) else {
                return false;
            };
            let Some(node) = adg.node_mut(id) else {
                return false;
            };
            if let NodeKind::Pe(pe) = &mut node.kind {
                let trimmed = pe.ops.intersection(*used_ops);
                if trimmed == pe.ops || trimmed.is_empty() {
                    // Nothing to trim (or would brick the PE): keep a
                    // minimal copy-capable ALU.
                    let mut minimal = OpSet::new();
                    minimal.insert(Opcode::Copy);
                    minimal.insert(Opcode::Add);
                    if pe.ops == minimal {
                        return false;
                    }
                    pe.ops = if trimmed.is_empty() { minimal } else { trimmed };
                } else {
                    pe.ops = trimmed;
                }
                true
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn mutations_keep_graph_valid() {
        let mut adg = presets::dse_initial();
        let mut rng = StdRng::seed_from_u64(42);
        let used = OpSet::integer_alu().union(OpSet::integer_mul());
        let mut applied = 0;
        for _ in 0..300 {
            if mutate(&mut adg, &mut rng, &used).is_some() {
                applied += 1;
                adg.validate().expect("mutation broke validity");
            }
        }
        assert!(applied > 100, "only {applied} mutations applied");
    }

    #[test]
    fn mutations_change_something() {
        let mut adg = presets::softbrain();
        let before = adg.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let used = OpSet::integer_alu();
        let mut changed = false;
        for _ in 0..50 {
            if mutate(&mut adg, &mut rng, &used).is_some() && adg != before {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn never_removes_last_pes() {
        let mut adg = presets::cca();
        let mut rng = StdRng::seed_from_u64(3);
        let used = OpSet::integer_alu();
        for _ in 0..500 {
            let _ = mutate(&mut adg, &mut rng, &used);
        }
        assert!(adg.pes().count() >= 2);
        assert!(adg.control().is_some());
    }

    #[test]
    fn control_and_main_memory_are_never_touched() {
        let mut adg = presets::spu();
        let ctrl = adg.control().unwrap();
        let mains: Vec<NodeId> = adg
            .memories()
            .filter(|m| {
                matches!(adg.kind(*m), Ok(NodeKind::Memory(s)) if s.kind == MemKind::MainMemory)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let used = OpSet::all();
        for _ in 0..300 {
            let _ = mutate(&mut adg, &mut rng, &used);
        }
        assert_eq!(adg.control(), Some(ctrl));
        for m in mains {
            assert!(adg.node(m).is_some());
        }
    }
}
