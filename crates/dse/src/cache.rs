//! Schedule memoization for the design-space explorer.
//!
//! The DSE loop revisits designs constantly: every rejected mutation is
//! reverted to the previous ADG, parallel shards converge on the same
//! structures, and many mutations touch hardware no kernel is mapped onto.
//! Re-running the stochastic scheduler in all of those cases is pure
//! waste — scheduling is deterministic given `(ADG, compiled kernel,
//! scheduler seed)`, so the result of a previous run can be replayed.
//!
//! [`ScheduleCache`] memoizes scheduling outcomes keyed by
//! `(Adg::fingerprint, CompiledKernel::content_hash)`:
//!
//! * **Exact hits** — the `(hardware, kernel)` pair was scheduled before
//!   (typically after a reverted mutation). The cached schedule *and* the
//!   cached modeled performance are reused wholesale. This is sound
//!   because both the scheduler and the performance/config-path models are
//!   deterministic functions of the fingerprinted inputs and the
//!   explorer-fixed seed.
//! * **Footprint hits** — the ADG changed, but the subgraph the previous
//!   schedule occupies ([`schedule_footprint`]) is byte-identical
//!   ([`Adg::footprint_fingerprint`]). The placement/routing decision is
//!   *rebased* onto the mutated graph and its evaluation and performance
//!   are recomputed honestly; only the stochastic search is skipped. If
//!   the rebased schedule turns out infeasible the explorer falls back to
//!   a full scheduling pass, so footprint reuse can never mask a broken
//!   schedule.
//! * **Misses** — a genuinely new design point; the stochastic scheduler
//!   runs and its outcome (legal or not — negative results are cached too)
//!   is inserted for the future.
//!
//! Caches are per-explorer (and per-shard in parallel runs): the scheduler
//! seed participates in the memoized computation, so entries must not leak
//! across explorers with different seeds.

use std::collections::{BTreeSet, HashMap};

use dsagen_adg::{Adg, EdgeId, NodeId};
use dsagen_scheduler::Schedule;

/// Hit/miss accounting for a [`ScheduleCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered wholesale from a memoized `(adg, kernel)` entry.
    pub exact_hits: u64,
    /// Lookups answered by rebasing a prior schedule whose hardware
    /// footprint survived the mutation intact (objective recomputed).
    pub footprint_hits: u64,
    /// Lookups answered from the disk-backed artifact-store tier (warm
    /// start across processes; the loaded schedule is re-verified before
    /// it counts).
    pub store_hits: u64,
    /// Lookups that fell through to a full stochastic scheduling pass.
    pub misses: u64,
    /// Entries written (one per miss or footprint rebase).
    pub insertions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.exact_hits + self.footprint_hits + self.store_hits + self.misses
    }

    /// Fraction of lookups that avoided a stochastic scheduling pass
    /// (exact + footprint + store hits). Zero when no lookup has happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.exact_hits + self.footprint_hits + self.store_hits) as f64 / total as f64
        }
    }

    /// Fraction of lookups answered by the disk-backed store tier alone
    /// (the warm-start figure the service benchmark reports).
    #[must_use]
    pub fn store_hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.store_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block into this one (shard reduction).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.exact_hits += other.exact_hits;
        self.footprint_hits += other.footprint_hits;
        self.store_hits += other.store_hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
    }
}

/// One memoized scheduling outcome.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The schedule the scheduler produced (possibly partial/illegal —
    /// kept either way so repair can start from it after a revert).
    pub schedule: Schedule,
    /// Modeled kernel performance when the schedule was legal; `None`
    /// records a *negative* result (this version does not map onto this
    /// hardware), which spares revisits the same doomed search.
    pub perf: Option<f64>,
    /// [`schedule_footprint`] of the schedule on the ADG it was minted
    /// against (legal schedules only).
    pub footprint: Option<u64>,
}

/// Memoized scheduling outcomes keyed by
/// `(Adg::fingerprint, CompiledKernel::content_hash)`.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    entries: HashMap<(u64, u64), CacheEntry>,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// Looks up the outcome memoized for `(adg_fp, kernel_hash)`,
    /// recording an exact hit when present. A `None` return records
    /// nothing — the caller decides between
    /// [`ScheduleCache::note_footprint_hit`] and
    /// [`ScheduleCache::note_miss`].
    pub fn lookup(&mut self, adg_fp: u64, kernel_hash: u64) -> Option<&CacheEntry> {
        let entry = self.entries.get(&(adg_fp, kernel_hash));
        if entry.is_some() {
            self.stats.exact_hits += 1;
        }
        entry
    }

    /// Records that a lookup was answered by rebasing a footprint-intact
    /// previous schedule instead of a full scheduling pass.
    pub fn note_footprint_hit(&mut self) {
        self.stats.footprint_hits += 1;
    }

    /// Records that a lookup was answered from the disk-backed artifact
    /// store (a warm start from a previous process).
    pub fn note_store_hit(&mut self) {
        self.stats.store_hits += 1;
    }

    /// Records that a lookup fell through to the stochastic scheduler.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts (or overwrites) the outcome for `(adg_fp, kernel_hash)`.
    pub fn insert(&mut self, adg_fp: u64, kernel_hash: u64, entry: CacheEntry) {
        self.stats.insertions += 1;
        self.entries.insert((adg_fp, kernel_hash), entry);
    }

    /// Hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Folds another cache's counters into this one (shard reduction).
    pub fn absorb_stats(&mut self, other: &CacheStats) {
        self.stats.absorb(other);
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The stable fingerprint of the hardware subgraph `schedule` occupies on
/// `adg`: every placed node, every routed ADG edge, and each routed edge's
/// endpoint nodes (so a re-parameterized intermediate switch is detected
/// even when the edge itself survives). Returns `None` when any part of
/// the footprint no longer exists — the schedule cannot be rebased.
#[must_use]
pub fn schedule_footprint(adg: &Adg, schedule: &Schedule) -> Option<u64> {
    let mut nodes: BTreeSet<NodeId> = schedule.placement.iter().copied().flatten().collect();
    let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
    for path in schedule.routes.values() {
        for &eid in path {
            edges.insert(eid);
            let e = adg.edge(eid)?;
            nodes.insert(e.src);
            nodes.insert(e.dst);
        }
    }
    adg.footprint_fingerprint(nodes, edges)
}

#[cfg(test)]
mod tests {
    use dsagen_adg::{presets, BitWidth, SwitchSpec};
    use dsagen_dfg::{compile_kernel, TransformConfig};
    use dsagen_scheduler::{schedule, SchedulerConfig};

    use super::*;
    use crate::explorer::tests::small_kernels;

    #[test]
    fn stats_hit_rate_arithmetic() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.exact_hits = 3;
        s.footprint_hits = 1;
        s.misses = 4;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let mut t = CacheStats::default();
        t.absorb(&s);
        assert_eq!(t, s);
    }

    #[test]
    fn lookup_insert_roundtrip_counts() {
        let mut c = ScheduleCache::new();
        assert!(c.lookup(1, 2).is_none());
        c.note_miss();
        c.insert(
            1,
            2,
            CacheEntry {
                schedule: Schedule::default(),
                perf: Some(1.5),
                footprint: None,
            },
        );
        let hit = c.lookup(1, 2).expect("entry just inserted");
        assert_eq!(hit.perf, Some(1.5));
        let stats = c.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn footprint_survives_unrelated_mutation_and_dies_with_its_hardware() {
        let adg = presets::softbrain();
        let kernel = &small_kernels()[0];
        let ck = compile_kernel(kernel, &TransformConfig::fallback(), &adg.features())
            .expect("axpy compiles on softbrain");
        let result = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(result.is_legal(), "fixture must schedule");
        let fp = schedule_footprint(&adg, &result.schedule).expect("live footprint");

        // An unconnected switch elsewhere leaves the footprint intact.
        let mut grown = adg.clone();
        grown.add_switch(SwitchSpec::new(BitWidth::B64));
        assert_eq!(schedule_footprint(&grown, &result.schedule), Some(fp));

        // Removing a placed node destroys it.
        let mut cut = adg.clone();
        let placed = result
            .schedule
            .placement
            .iter()
            .copied()
            .flatten()
            .next()
            .expect("legal schedule places something");
        let _ = cut.remove_node(placed);
        assert_eq!(schedule_footprint(&cut, &result.schedule), None);
    }
}
