//! Criterion microbenchmarks for the spatial scheduler: full scheduling,
//! schedule repair after a hardware mutation (the §V-A fast path), and the
//! congestion-aware router.

use criterion::{criterion_group, criterion_main, Criterion};
use dsagen_adg::presets;
use dsagen_dfg::{compile_kernel, TransformConfig};
use dsagen_scheduler::{repair, route, schedule, Problem, SchedulerConfig};

fn compiled_mm(unroll: u16) -> (dsagen_adg::Adg, dsagen_dfg::CompiledKernel) {
    let adg = presets::softbrain();
    let kernel = dsagen_workloads::polybench::mm();
    let ck = compile_kernel(
        &kernel,
        &TransformConfig {
            unroll,
            ..TransformConfig::fallback()
        },
        &adg.features(),
    )
    .expect("mm compiles");
    (adg, ck)
}

fn bench_schedule(c: &mut Criterion) {
    let cfg = SchedulerConfig {
        max_iters: 100,
        ..SchedulerConfig::default()
    };
    for unroll in [1u16, 4] {
        let (adg, ck) = compiled_mm(unroll);
        c.bench_function(&format!("schedule/mm-unroll{unroll}"), |b| {
            b.iter(|| schedule(&adg, &ck, &cfg))
        });
    }
}

fn bench_repair_vs_remap(c: &mut Criterion) {
    let cfg = SchedulerConfig {
        max_iters: 100,
        ..SchedulerConfig::default()
    };
    let (mut adg, ck) = compiled_mm(4);
    let first = schedule(&adg, &ck, &cfg);
    assert!(first.is_legal());
    // Remove one PE used by the schedule (the §V DSE mutation).
    let problem = Problem::new(&adg, &ck);
    let victim = problem
        .entities
        .iter()
        .enumerate()
        .find_map(|(i, e)| match e.kind {
            dsagen_scheduler::EntityKind::Op { .. } => first.schedule.placement[i],
            _ => None,
        })
        .expect("an op is placed");
    adg.remove_node(victim).expect("victim exists");

    c.bench_function("repair/after-pe-removal", |b| {
        b.iter(|| repair(&adg, &ck, first.schedule.clone(), &cfg))
    });
    c.bench_function("repair/full-remap-baseline", |b| {
        b.iter(|| schedule(&adg, &ck, &cfg))
    });
}

fn bench_router(c: &mut Criterion) {
    let adg = presets::softbrain();
    let src = adg.syncs().next().expect("syncs exist");
    let dst = adg.pes().last().expect("pes exist");
    c.bench_function("route/sync-to-far-pe", |b| {
        b.iter(|| route(&adg, src, dst, |_| 0, 100.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedule, bench_repair_vs_remap, bench_router
}
criterion_main!(benches);
