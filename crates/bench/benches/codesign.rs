//! Criterion microbenchmarks for the codesign machinery: one DSE
//! evaluation step, the area/power regression fit, whole-ADG estimation,
//! configuration-path generation, and bitstream encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use dsagen_adg::presets;
use dsagen_dse::{DseConfig, Explorer};
use dsagen_hwgen::{generate_config_paths, Bitstream};
use dsagen_model::AreaPowerModel;
use dsagen_scheduler::{schedule, Problem, SchedulerConfig};

fn bench_dse_evaluate(c: &mut Criterion) {
    let kernels = vec![
        dsagen_workloads::polybench::mm(),
        dsagen_workloads::nn::classifier(),
    ];
    let cfg = DseConfig {
        sched_iters: 60,
        max_unroll: 4,
        ..DseConfig::default()
    };
    c.bench_function("dse/evaluate-step", |b| {
        b.iter_batched(
            || Explorer::new(presets::dse_initial(), &kernels, cfg),
            |mut ex| ex.evaluate(),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_area_model(c: &mut Criterion) {
    c.bench_function("model/fit-regression", |b| {
        b.iter(|| AreaPowerModel::fit(0xC0FFEE))
    });
    let model = AreaPowerModel::default();
    let adg = presets::dse_initial();
    c.bench_function("model/estimate-adg", |b| b.iter(|| model.estimate_adg(&adg)));
}

fn bench_hwgen(c: &mut Criterion) {
    let adg = presets::softbrain();
    c.bench_function("hwgen/config-paths-4", |b| {
        b.iter(|| generate_config_paths(&adg, 4, 7))
    });
    let kernel = dsagen_workloads::polybench::mm();
    let ck = dsagen_dfg::compile_kernel(
        &kernel,
        &dsagen_dfg::TransformConfig::fallback(),
        &adg.features(),
    )
    .expect("compiles");
    let res = schedule(&adg, &ck, &SchedulerConfig::default());
    let problem = Problem::new(&adg, &ck);
    c.bench_function("hwgen/bitstream-encode", |b| {
        b.iter(|| Bitstream::encode(&problem, &res.schedule))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dse_evaluate, bench_area_model, bench_hwgen
}
criterion_main!(benches);
