//! Criterion microbenchmarks for the cycle-level simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use dsagen_adg::presets;
use dsagen_dfg::{compile_kernel, TransformConfig};
use dsagen_scheduler::{schedule, SchedulerConfig};
use dsagen_sim::{simulate, SimConfig};

fn bench_simulate(c: &mut Criterion) {
    let cases: Vec<(&str, dsagen_adg::Adg, dsagen_dfg::Kernel, TransformConfig)> = vec![
        (
            "mm32",
            presets::softbrain(),
            dsagen_workloads::polybench::mm(),
            TransformConfig {
                unroll: 4,
                ..TransformConfig::fallback()
            },
        ),
        (
            "histogram-atomic",
            presets::spu(),
            dsagen_workloads::sparse::histogram(),
            TransformConfig {
                indirect: true,
                atomic_update: true,
                ..TransformConfig::fallback()
            },
        ),
        (
            "join-streamjoin",
            presets::spu(),
            dsagen_workloads::sparse::join(),
            TransformConfig {
                stream_join: true,
                ..TransformConfig::fallback()
            },
        ),
    ];
    for (name, adg, kernel, cfg) in cases {
        let ck = compile_kernel(&kernel, &cfg, &adg.features()).expect("compiles");
        let res = schedule(&adg, &ck, &SchedulerConfig::default());
        assert!(res.is_legal(), "{name}: {:?}", res.eval);
        c.bench_function(&format!("simulate/{name}"), |b| {
            b.iter(|| {
                simulate(&adg, &ck, &res.schedule, &res.eval, 0, &SimConfig::default()).unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulate
}
criterion_main!(benches);
