//! Minimal JSON reader for the bench comparator.
//!
//! The vendored `serde` is a stub, and the BENCH artifacts are written by
//! hand-formatted emitters in this same crate — so reading them back gets
//! a deliberately small recursive-descent parser instead of a dependency.
//! It accepts the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and nothing else.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the bench
    /// emitters write).
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for non-objects / absent keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first offending character.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are guaranteed valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_soak_style_document() {
        let doc = r#"{
  "seeds": [20652, 77],
  "aborts": 0,
  "rung_histogram": {"port-reroute": 3, "full-reschedule": 1},
  "presets": [
    {"preset": "spu", "mean_mttr_cycles": 206.0, "mean_throughput_ratio": 0.9336}
  ],
  "rows": [
    {"preset": "spu", "kernel": "poly-mvt", "degraded": true, "throughput_ratio": 0.6676}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("aborts").and_then(JsonValue::as_f64), Some(0.0));
        let hist = v.get("rung_histogram").unwrap();
        assert_eq!(hist.get("full-reschedule").and_then(JsonValue::as_f64), Some(1.0));
        let rows = v.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("kernel").and_then(JsonValue::as_str), Some("poly-mvt"));
        assert_eq!(rows[0].get("degraded").and_then(JsonValue::as_bool), Some(true));
        let presets = v.get("presets").and_then(JsonValue::as_array).unwrap();
        let mttr = presets[0].get("mean_mttr_cycles").and_then(JsonValue::as_f64);
        assert_eq!(mttr, Some(206.0));
    }

    #[test]
    fn handles_escapes_negatives_and_exponents() {
        let v = parse(r#"{"s": "a\"bA\n", "n": -1.5e3, "e": [], "o": {}}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\"bA\n"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-1500.0));
        assert_eq!(v.get("e").and_then(JsonValue::as_array), Some(&[][..]));
        assert_eq!(v.get("o"), Some(&JsonValue::Obj(Vec::new())));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
