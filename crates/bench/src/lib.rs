//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §3 for the experiment index).

#![warn(missing_docs)]

pub mod artifact;
pub mod envelope;
pub mod json;

use dsagen::{compile, Compiled, CompileOptions};
use dsagen_adg::Adg;
use dsagen_dfg::{CompiledKernel, Kernel, StreamSource};
use dsagen_scheduler::{schedule, SchedulerConfig};
use dsagen_sim::{simulate, SimConfig, SimReport};

/// Standard options used by the experiment harness: the paper's 200
/// scheduling iterations, vectorization up to 8.
#[must_use]
pub fn harness_opts() -> CompileOptions {
    CompileOptions {
        max_unroll: 8,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    }
}

/// Compiles and simulates one kernel; panics with a diagnostic on failure
/// (experiment binaries want loud failures).
#[must_use]
pub fn run_workload(adg: &Adg, kernel: &Kernel) -> (Compiled, SimReport) {
    let compiled = compile(adg, kernel, &harness_opts())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, adg.name()));
    let report = simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, adg.name()));
    (compiled, report)
}

/// Derives the *manually-tuned* variant of a compiled kernel (Fig 10's
/// baseline): expert assembly "exploits features of the low-level ISA to
/// reduce the number of control instructions" (§VIII-A) and, for fft-like
/// small-stride scratchpad patterns, peels iterations to coalesce requests.
#[must_use]
pub fn manual_tune(version: &CompiledKernel) -> CompiledKernel {
    let mut tuned = version.clone();
    for region in &mut tuned.regions {
        // Peephole control-instruction elision.
        region.ctrl_ops *= 0.7;
        for s in region
            .in_streams
            .iter_mut()
            .chain(region.out_streams.iter_mut())
        {
            // Hand-fused stream commands (volume-preserving).
            let total = s.pattern.total_elems();
            s.pattern.commands = ((s.pattern.commands * 3) / 4).max(1);
            s.pattern.elems_per_command = total / s.pattern.commands as f64;
            // Peeling + request combining for small non-unit strides on
            // scratchpad (the fft trick): the tuned code re-reads lines
            // once instead of per element.
            let small_stride = s.pattern.stride_bytes != 0
                && s.pattern.stride_bytes.unsigned_abs() as u32 != s.elem_bytes
                && s.pattern.stride_bytes.unsigned_abs() <= 4 * u64::from(s.elem_bytes);
            if small_stride && matches!(s.source, StreamSource::Memory(_)) {
                s.pattern.stride_bytes = i64::from(s.elem_bytes);
            }
        }
    }
    tuned
}

/// Simulates the manually-tuned variant of `compiled` on `adg`.
///
/// The tuned kernel has the same dataflow shape, so the compiled schedule
/// remains valid for it; the expert additionally gets a fresh scheduling
/// attempt, and the better of the two counts (hand mappings never lose to
/// the compiler's own placement).
#[must_use]
pub fn run_manual(adg: &Adg, compiled: &Compiled) -> SimReport {
    let tuned = manual_tune(&compiled.version);
    let reuse = simulate(
        adg,
        &tuned,
        &compiled.schedule,
        &compiled.eval,
        0,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("manual-tune reuse on {}: {e}", adg.name()));
    let fresh_sched = schedule(adg, &tuned, &harness_opts().scheduler);
    let fresh = simulate(
        adg,
        &tuned,
        &fresh_sched.schedule,
        &fresh_sched.eval,
        0,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("manual-tune fresh on {}: {e}", adg.name()));
    // The expert starts from the compiler's output, so hand tuning is never
    // a regression: keep the untouched compiled version as a floor.
    let untouched = simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        0,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("untouched baseline on {}: {e}", adg.name()));
    let mut best = reuse;
    if fresh_sched.is_legal() && fresh.cycles < best.cycles {
        best = fresh;
    }
    if untouched.cycles < best.cycles {
        best = untouched;
    }
    best
}

/// Geometric mean of a nonempty slice.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// The accelerator↔suite pairing the paper evaluates (Fig 10: each
/// accelerator runs the workloads it was designed for).
#[must_use]
pub fn fig10_pairs() -> Vec<(&'static str, Adg, Vec<dsagen_workloads::Workload>)> {
    use dsagen_adg::presets;
    use dsagen_workloads::{suite, Suite};
    vec![
        ("Softbrain", presets::softbrain(), suite(Suite::MachSuite)),
        ("MAERI", presets::maeri(), suite(Suite::DenseNN)),
        ("TriggeredInsts", presets::triggered(), suite(Suite::Sparse)),
        ("SPU", presets::spu(), suite(Suite::Sparse)),
        ("REVEL", presets::revel(), suite(Suite::Dsp)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn manual_tuning_reduces_control_work() {
        let adg = dsagen_adg::presets::softbrain();
        let kernel = dsagen_workloads::machsuite::stencil3d();
        let feats = adg.features();
        let ck = dsagen_dfg::compile_kernel(
            &kernel,
            &dsagen_dfg::TransformConfig::fallback(),
            &feats,
        )
        .unwrap();
        let tuned = manual_tune(&ck);
        let orig_cmds: u64 = ck.regions.iter().map(|r| r.stream_commands()).sum();
        let tuned_cmds: u64 = tuned.regions.iter().map(|r| r.stream_commands()).sum();
        assert!(tuned_cmds < orig_cmds);
        // Volume is conserved.
        for (a, b) in ck.regions.iter().zip(&tuned.regions) {
            for (sa, sb) in a.in_streams.iter().zip(&b.in_streams) {
                assert!((sa.pattern.total_elems() - sb.pattern.total_elems()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fig10_pairs_cover_five_accelerators() {
        let pairs = fig10_pairs();
        assert_eq!(pairs.len(), 5);
        for (_, adg, workloads) in &pairs {
            assert!(adg.validate().is_ok());
            assert!(!workloads.is_empty());
        }
    }
}
