//! Typed loading of committed benchmark baseline artifacts.
//!
//! CI gates (`bench_compare`, `bench_trajectory`) read committed
//! `BENCH_*.json` files that may be missing (a brand-new benchmark whose
//! baseline was never committed), empty (a botched redirect), or partial
//! (a truncated or hand-edited document). Each of those used to surface
//! as an opaque I/O or parser string; [`load_artifact`] classifies them
//! into a [`BaselineError`] whose message says *what to do about it*, so
//! a red CI run is diagnosable from its last line.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::json::{parse, JsonValue};

/// Why a baseline artifact could not be loaded. Every variant carries
/// the path and renders an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The file does not exist (or is unreadable).
    Missing {
        /// The path that was attempted.
        path: PathBuf,
        /// The OS-level detail.
        detail: String,
    },
    /// The file exists but holds no content (zero bytes or only
    /// whitespace) — typically a botched shell redirect.
    Empty {
        /// The empty file.
        path: PathBuf,
    },
    /// The file holds text that is not valid JSON (truncated write,
    /// merge conflict markers, etc.).
    Unparseable {
        /// The unparseable file.
        path: PathBuf,
        /// Parser diagnosis.
        detail: String,
    },
    /// The file parses but is not a benchmark document: not a JSON
    /// object, or an object with no members (a partial artifact that
    /// cannot gate anything).
    Partial {
        /// The partial file.
        path: PathBuf,
        /// What shape was found instead.
        detail: String,
    },
}

impl BaselineError {
    /// The offending path.
    #[must_use]
    pub fn path(&self) -> &Path {
        match self {
            BaselineError::Missing { path, .. }
            | BaselineError::Empty { path }
            | BaselineError::Unparseable { path, .. }
            | BaselineError::Partial { path, .. } => path,
        }
    }
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Missing { path, detail } => write!(
                f,
                "baseline artifact {} is missing ({detail}); if this benchmark is new, \
generate and commit its baseline (see EXPERIMENTS.md), otherwise restore the file",
                path.display()
            ),
            BaselineError::Empty { path } => write!(
                f,
                "baseline artifact {} is empty — likely a botched redirect; regenerate the \
artifact and commit it",
                path.display()
            ),
            BaselineError::Unparseable { path, detail } => write!(
                f,
                "baseline artifact {} is not valid JSON ({detail}) — truncated write or \
merge damage; regenerate the artifact and commit it",
                path.display()
            ),
            BaselineError::Partial { path, detail } => write!(
                f,
                "baseline artifact {} parses but is not a benchmark document ({detail}); \
regenerate the artifact and commit it",
                path.display()
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Loads and shape-checks one baseline artifact.
///
/// # Errors
///
/// A [`BaselineError`] classifying exactly what is wrong with the file;
/// never panics on file contents.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<JsonValue, BaselineError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| BaselineError::Missing {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    if text.trim().is_empty() {
        return Err(BaselineError::Empty {
            path: path.to_path_buf(),
        });
    }
    let doc = parse(&text).map_err(|e| BaselineError::Unparseable {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    match &doc {
        JsonValue::Obj(members) if !members.is_empty() => Ok(doc),
        JsonValue::Obj(_) => Err(BaselineError::Partial {
            path: path.to_path_buf(),
            detail: "top-level object has no members".to_string(),
        }),
        other => Err(BaselineError::Partial {
            path: path.to_path_buf(),
            detail: format!("top-level value is {}", kind_name(other)),
        }),
    }
}

fn kind_name(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Obj(_) => "an object",
        JsonValue::Arr(_) => "an array",
        JsonValue::Str(_) => "a string",
        JsonValue::Num(_) => "a number",
        JsonValue::Bool(_) => "a bool",
        JsonValue::Null => "null",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dsagen-artifact-{}-{name}", std::process::id()))
    }

    #[test]
    fn missing_baseline_is_typed_and_actionable() {
        let path = tmp("definitely-not-there.json");
        let err = load_artifact(&path).expect_err("missing file must not load");
        assert!(matches!(err, BaselineError::Missing { .. }));
        let msg = err.to_string();
        assert!(msg.contains("missing"), "{msg}");
        assert!(
            msg.contains("generate and commit"),
            "message must say what to do: {msg}"
        );
        assert_eq!(err.path(), path.as_path());
    }

    #[test]
    fn empty_and_partial_baselines_are_typed() {
        // Zero bytes.
        let empty = tmp("empty.json");
        std::fs::write(&empty, "").unwrap();
        assert!(matches!(
            load_artifact(&empty),
            Err(BaselineError::Empty { .. })
        ));
        // Whitespace only is still empty.
        std::fs::write(&empty, "  \n\t ").unwrap();
        assert!(matches!(
            load_artifact(&empty),
            Err(BaselineError::Empty { .. })
        ));
        // Truncated JSON (a partial write).
        let cut = tmp("truncated.json");
        std::fs::write(&cut, "{\"schema\": 2, \"payload\": {\"runs\": [").unwrap();
        let err = load_artifact(&cut).expect_err("truncated JSON must not load");
        assert!(matches!(err, BaselineError::Unparseable { .. }), "{err:?}");
        assert!(err.to_string().contains("regenerate"), "{err}");
        // Parses, but not a benchmark document.
        let bare = tmp("bare.json");
        std::fs::write(&bare, "[1, 2, 3]").unwrap();
        let err = load_artifact(&bare).expect_err("non-object must not load");
        assert!(matches!(err, BaselineError::Partial { .. }), "{err:?}");
        assert!(err.to_string().contains("an array"), "{err}");
        // Empty object: partial.
        std::fs::write(&bare, "{}").unwrap();
        assert!(matches!(
            load_artifact(&bare),
            Err(BaselineError::Partial { .. })
        ));
        for p in [empty, cut, bare] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn well_formed_baseline_loads() {
        let ok = tmp("ok.json");
        std::fs::write(&ok, "{\"bench\": \"soak\", \"payload\": {}}").unwrap();
        let doc = load_artifact(&ok).expect("well-formed artifact loads");
        assert!(doc.get("bench").is_some());
        let _ = std::fs::remove_file(ok);
    }
}
