//! Common metrics envelope for `BENCH_*.json` artifacts.
//!
//! Every bench binary wraps its JSON payload in one shared envelope so the
//! comparator, the trajectory appender, and CI tooling can read any
//! artifact the same way: a schema version, the bench name, a small
//! key/value metadata block (preset, seed, knobs), the run's
//! [`MetricsSnapshot`], and the bench's own document under `payload`.
//!
//! Old pre-envelope artifacts are still readable: [`payload`] unwraps an
//! enveloped document and passes a bare one through unchanged, so gates
//! written against the payload shape tolerate both generations.

use std::fmt::Write as _;

use dsagen_telemetry::{escape_json, MetricsSnapshot};

use crate::json::JsonValue;

/// Version of the envelope schema itself (not of any payload). Bump on
/// breaking changes to the envelope's own keys.
pub const SCHEMA_VERSION: u64 = 2;

/// One metadata value: rendered as a JSON string or number.
#[derive(Debug, Clone, PartialEq)]
enum MetaValue {
    Str(String),
    Int(u64),
    Num(f64),
}

/// Builder for the common artifact envelope.
#[derive(Debug, Clone, Default)]
pub struct Envelope {
    bench: String,
    meta: Vec<(String, MetaValue)>,
    metrics: MetricsSnapshot,
}

impl Envelope {
    /// Starts an envelope for the bench binary named `bench`.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        Envelope {
            bench: bench.to_string(),
            meta: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Adds a string metadata entry (document order is preserved).
    #[must_use]
    pub fn meta(mut self, key: &str, value: &str) -> Self {
        self.meta
            .push((key.to_string(), MetaValue::Str(value.to_string())));
        self
    }

    /// Adds an integer metadata entry (seeds, rep counts).
    #[must_use]
    pub fn meta_int(mut self, key: &str, value: u64) -> Self {
        self.meta.push((key.to_string(), MetaValue::Int(value)));
        self
    }

    /// Adds a float metadata entry.
    #[must_use]
    pub fn meta_num(mut self, key: &str, value: f64) -> Self {
        self.meta.push((key.to_string(), MetaValue::Num(value)));
        self
    }

    /// Attaches the run's metrics registry snapshot.
    #[must_use]
    pub fn metrics(mut self, snapshot: MetricsSnapshot) -> Self {
        self.metrics = snapshot;
        self
    }

    /// Wraps `payload` (a complete JSON document) into the enveloped
    /// artifact text. The payload is embedded verbatim.
    #[must_use]
    pub fn wrap(&self, payload: &str) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"bench\": \"{}\",", escape_json(&self.bench));
        s.push_str("  \"meta\": {");
        for (i, (key, value)) in self.meta.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": ", escape_json(key));
            match value {
                MetaValue::Str(v) => {
                    let _ = write!(s, "\"{}\"", escape_json(v));
                }
                MetaValue::Int(v) => {
                    let _ = write!(s, "{v}");
                }
                MetaValue::Num(v) => {
                    let _ = write!(s, "{v}");
                }
            }
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json());
        let _ = write!(s, "  \"payload\": {}", payload.trim_end());
        s.push_str("\n}\n");
        s
    }
}

/// Unwraps an enveloped artifact to its payload; a pre-envelope (bare)
/// document passes through unchanged. Every comparator gate reads through
/// this, which is what keeps old committed baselines comparable against
/// new enveloped candidates.
#[must_use]
pub fn payload(doc: &JsonValue) -> &JsonValue {
    match (doc.get("schema_version"), doc.get("payload")) {
        (Some(_), Some(p)) => p,
        _ => doc,
    }
}

/// The envelope's bench name, when `doc` is enveloped.
#[must_use]
pub fn bench_name(doc: &JsonValue) -> Option<&str> {
    doc.get("schema_version")?;
    doc.get("bench")?.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use dsagen_telemetry::MetricsRegistry;

    #[test]
    fn wrap_then_parse_round_trips() {
        let reg = MetricsRegistry::enabled();
        reg.add("dse.iterations", 7);
        let text = Envelope::new("soak")
            .meta("preset", "softbrain")
            .meta_int("seed", 0xC0DE)
            .meta_num("tolerance", 0.25)
            .metrics(reg.snapshot())
            .wrap(r#"{"rows": [1, 2, 3]}"#);
        let doc = parse(&text).expect("well-formed envelope");
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(bench_name(&doc), Some("soak"));
        let meta = doc.get("meta").expect("meta block");
        assert_eq!(meta.get("preset").and_then(JsonValue::as_str), Some("softbrain"));
        assert_eq!(meta.get("seed").and_then(JsonValue::as_f64), Some(49374.0));
        let metrics = doc.get("metrics").expect("metrics block");
        assert_eq!(
            metrics.get("dse.iterations").and_then(JsonValue::as_f64),
            Some(7.0)
        );
        let rows = payload(&doc).get("rows").and_then(JsonValue::as_array);
        assert_eq!(rows.map(<[JsonValue]>::len), Some(3));
    }

    #[test]
    fn payload_passes_bare_documents_through() {
        let doc = parse(r#"{"rows": []}"#).unwrap();
        assert_eq!(payload(&doc), &doc);
        assert!(bench_name(&doc).is_none());
    }
}
