//! Figure 11 — Schedule Repair versus Re-Mapping during DSE.
//!
//! Two explorations of the MachSuite workloads from the same initial
//! hardware and seed: one repairs the previous iteration's schedules after
//! each ADG mutation (§V-A), the other re-maps every schedule from scratch
//! with the same 200-iteration budget. The paper reports repair reaching a
//! ~1.3× better final objective once hardware resources get tight.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig11`

use dsagen_adg::presets;
use dsagen_bench::rule;
use dsagen_dse::{explore, DseConfig};
use dsagen_workloads::{suite_kernels, Suite};

fn main() {
    // A MachSuite slice keeps the two full explorations tractable.
    let kernels: Vec<_> = suite_kernels(Suite::MachSuite)
        .into_iter()
        .filter(|k| ["md", "spmv-crs", "stencil-2d", "mm", "stencil-3d"].contains(&k.name.as_str()))
        .collect();
    // A deliberately tight per-step scheduling budget: repair starts from
    // the previous (mostly valid) schedule and finishes easily, while cold
    // re-mapping must rediscover the entire mapping within the same budget
    // — exactly the §V-A argument.
    // Scarcity regime: a tight area budget forces small fabrics where
    // kernels barely fit — there, cold re-mapping within the per-step
    // budget fails where repair succeeds (§V-A, "when the hardware
    // resources become tight, the traditional scheduler cannot succeed").
    let base = DseConfig {
        max_iters: 100,
        patience: 100,
        sched_iters: 40,
        max_unroll: 4,
        area_budget_mm2: 1.25,
        ..DseConfig::default()
    };

    println!("FIGURE 11: Repair vs Re-Mapping (best objective per DSE iteration, MachSuite)");
    rule(66);
    let repair = explore(
        presets::dse_initial(),
        &kernels,
        DseConfig {
            use_repair: true,
            ..base
        },
    );
    let remap = explore(
        presets::dse_initial(),
        &kernels,
        DseConfig {
            use_repair: false,
            ..base
        },
    );

    println!("{:>5} {:>16} {:>16}", "iter", "repair", "re-mapping");
    rule(66);
    let n = repair.trace.len().max(remap.trace.len());
    for i in (0..n).step_by(5) {
        let r = repair
            .trace
            .get(i.min(repair.trace.len() - 1))
            .map_or(0.0, |t| t.objective);
        let m = remap
            .trace
            .get(i.min(remap.trace.len() - 1))
            .map_or(0.0, |t| t.objective);
        println!("{:>5} {:>16.3} {:>16.3}", i, r, m);
    }
    rule(66);
    let ratio = repair.best.objective / remap.best.objective.max(1e-12);
    println!(
        "final objective: repair {:.3} vs re-mapping {:.3} ({:.2}x)",
        repair.best.objective, remap.best.objective, ratio
    );
    println!("paper: schedule repair leads to a 1.3x better objective for DSE");
}
