//! Figure 14 — Automated Design Space Exploration.
//!
//! Three DSE runs from the same initial hardware (the 5×4 full-capability
//! mesh): MachSuite, DenseNN, and SparseCNN. Reports the evolution of
//! area (left bar in the paper), power (right bar), and objective (color
//! intensity) per iteration, and the headline numbers: mean 42% area
//! saved and mean 12× objective improvement over the initial hardware.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig14`

use dsagen_adg::presets;
use dsagen_bench::rule;
use dsagen_dse::{explore, DseConfig, DseResult};
use dsagen_workloads::{suite_kernels, Suite};

fn run(name: &str, kernels: &[dsagen_dfg::Kernel], seed: u64) -> DseResult {
    let cfg = DseConfig {
        seed,
        max_iters: 120,
        patience: 50,
        sched_iters: 200,
        max_unroll: 4,
        ..DseConfig::default()
    };
    println!("\n== DSE run: {name} ({} kernels) ==", kernels.len());
    let result = explore(presets::dse_initial(), kernels, cfg);
    println!(
        "{:>5} {:>11} {:>11} {:>12} {:>9}",
        "iter", "area(mm^2)", "power(mW)", "objective", "accepted"
    );
    rule(56);
    for rec in result.trace.iter().step_by(10) {
        println!(
            "{:>5} {:>11.3} {:>11.1} {:>12.3} {:>9}",
            rec.iter, rec.area_mm2, rec.power_mw, rec.objective, rec.accepted
        );
    }
    let last = result.trace.last().expect("nonempty trace");
    println!(
        "{:>5} {:>11.3} {:>11.1} {:>12.3} {:>9}",
        last.iter, last.area_mm2, last.power_mw, last.objective, last.accepted
    );
    println!(
        "area: {:.3} -> {:.3} mm^2 ({:+.0}%), power: {:.0} -> {:.0} mW, objective: {:.3} -> {:.3} ({:.1}x)",
        result.initial.cost.area_mm2,
        result.best.cost.area_mm2,
        -100.0 * result.area_saving(),
        result.initial.cost.power_mw,
        result.best.cost.power_mw,
        result.initial.objective,
        result.best.objective,
        result.objective_gain()
    );
    result
}

fn main() {
    println!("FIGURE 14: Automated Design Space Exploration (3 runs from the 5x4 full mesh)");

    let machsuite: Vec<_> = suite_kernels(Suite::MachSuite)
        .into_iter()
        .filter(|k| ["md", "spmv-crs", "stencil-2d", "mm"].contains(&k.name.as_str()))
        .collect();
    let dense = suite_kernels(Suite::DenseNN);
    let sparse = suite_kernels(Suite::SparseCNN);

    let r1 = run("MachSuite", &machsuite, 0xD5E1);
    let r2 = run("DenseNN", &dense, 0xD5E2);
    let r3 = run("SparseCNN", &sparse, 0xD5E3);

    rule(72);
    let savings = [r1.area_saving(), r2.area_saving(), r3.area_saving()];
    let gains = [r1.objective_gain(), r2.objective_gain(), r3.objective_gain()];
    println!(
        "mean area saving: {:.0}%   (paper: mean 42%)",
        100.0 * savings.iter().sum::<f64>() / 3.0
    );
    println!(
        "mean objective gain: {:.1}x (paper: mean 12x)",
        gains.iter().sum::<f64>() / 3.0
    );
}
