//! Table I — Workload Specification.
//!
//! Regenerates the paper's workload table: suite, workload name, data size,
//! plus reproduction-side facts (regions, compute ops, footprint, idioms).
//!
//! Run with: `cargo run --release -p dsagen-bench --bin table1`

use dsagen_bench::rule;
use dsagen_dfg::KernelIdioms;

fn main() {
    println!("TABLE I: Workload Specification (paper sizes, our kernels)");
    rule(98);
    println!(
        "{:<10} {:<13} {:<14} {:>7} {:>8} {:>12} {:<20}",
        "Suite", "Workload", "Data Size", "Regions", "Ops", "Bytes", "Idioms"
    );
    rule(98);
    for w in dsagen_workloads::all() {
        let idioms = KernelIdioms::analyze(&w.kernel);
        let mut tags = Vec::new();
        if idioms.has_join {
            tags.push("join");
        }
        if idioms.has_indirect {
            tags.push("indirect");
        }
        if idioms.has_indirect_update {
            tags.push("atomic");
        }
        if idioms.has_forwarding {
            tags.push("forward");
        }
        let ops: usize = w.kernel.regions.iter().map(|r| r.compute_op_count()).sum();
        println!(
            "{:<10} {:<13} {:<14} {:>7} {:>8} {:>12} {:<20}",
            w.suite.name(),
            w.name,
            w.data_size,
            w.kernel.regions.len(),
            ops,
            w.kernel.footprint_bytes(),
            tags.join(",")
        );
    }
    rule(98);
    println!("paper: 6 MachSuite + 2 SPU-sparse + 4 REVEL-DSP + 5 PolyBench kernels (Table I),");
    println!("plus the DenseNN and SparseCNN DSE suites of §VIII-B.");
}
