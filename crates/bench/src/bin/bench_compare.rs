//! bench_compare — regression gate for committed BENCH artifacts.
//!
//! Diffs a freshly generated benchmark JSON against the committed copy and
//! fails (exit 1) when quality regressed by more than 25%:
//!
//! * **soak / recovery** — MTTR grew past 1.25× committed, or a
//!   surviving-throughput fraction fell below 0.75× committed.
//! * **dse_parallel** — the (seed, shards)-deterministic best objective
//!   fell, memoization regressed (more stochastic scheduling passes, or a
//!   lower cache hit rate).
//! * **config_integrity** — the transient-flip recovery probe needs more
//!   programming attempts, or verify throughput fell.
//! * **telemetry_overhead** — the disabled-telemetry overhead exceeds the
//!   artifact's own absolute gate (2%), regardless of the committed value.
//! * **service** — fewer requests completed, the warm-start store-tier hit
//!   rate fell, or the warm phase never hit the artifact store at all.
//!
//! The artifact kind is read from the envelope's `bench` field when
//! present, else sniffed from the document shape, so CI invokes one
//! binary for every gate:
//!
//! ```text
//! cargo run --release -p dsagen-bench --bin bench_compare -- \
//!     BENCH_soak.json /tmp/fresh_soak.json
//! ```
//!
//! Committed artifacts may predate newer emitters, so both sides read
//! through [`dsagen_bench::envelope::payload`] (bare pre-envelope
//! documents pass through) and every field is optional on the committed
//! side: a metric absent from the committed file (e.g. `full_reschedules`
//! from before rung histograms existed) is reported as informational,
//! never a failure. Comparisons with a committed value below 1.0 (cycle
//! metrics) are skipped — a 25% band around ~zero is noise, not a gate.

use std::process::ExitCode;

use dsagen_bench::artifact::load_artifact;
use dsagen_bench::envelope::{bench_name, payload};
use dsagen_bench::json::JsonValue;
use dsagen_telemetry::{log, Level};

/// Regression band: fail when fresh MTTR exceeds 1.25× committed, or a
/// fresh throughput ratio falls below 0.75× committed.
const TOLERANCE: f64 = 0.25;

/// One metric comparison: `worse` is +fraction regressed (0 = identical).
struct Check {
    label: String,
    committed: f64,
    fresh: f64,
    worse: f64,
}

impl Check {
    fn failed(&self) -> bool {
        self.worse > TOLERANCE
    }
}

/// MTTR-style metric: larger is worse.
fn check_larger_is_worse(label: String, committed: f64, fresh: f64) -> Option<Check> {
    if committed < 1.0 {
        return None; // ~zero baseline: a relative band is meaningless
    }
    Some(Check {
        label,
        committed,
        fresh,
        worse: (fresh - committed) / committed,
    })
}

/// Throughput-ratio-style metric: smaller is worse.
fn check_smaller_is_worse(label: String, committed: f64, fresh: f64) -> Option<Check> {
    if committed <= 0.0 {
        return None;
    }
    Some(Check {
        label,
        committed,
        fresh,
        worse: (committed - fresh) / committed,
    })
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn str_of<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

/// Soak artifact: per-preset storm aggregates keyed by preset name.
fn compare_soak(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_presets = committed.get("presets").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_presets = fresh.get("presets").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_presets {
        let name = str_of(c, "preset");
        let Some(f) = fresh_presets.iter().find(|f| str_of(f, "preset") == name) else {
            println!("note: preset {name} present in committed but not fresh — skipped");
            continue;
        };
        if let (Some(cm), Some(fm)) = (num(c, "mean_mttr_cycles"), num(f, "mean_mttr_cycles")) {
            checks.extend(check_larger_is_worse(format!("{name} mean_mttr_cycles"), cm, fm));
        }
        if let (Some(cr), Some(fr)) =
            (num(c, "mean_throughput_ratio"), num(f, "mean_throughput_ratio"))
        {
            checks.extend(check_smaller_is_worse(
                format!("{name} mean_throughput_ratio"),
                cr,
                fr,
            ));
        }
    }
    // Informational only: the committed artifact may predate this counter.
    match (num(committed, "full_reschedules"), num(fresh, "full_reschedules")) {
        (Some(c), Some(f)) => println!("info: full_reschedules committed {c:.0} -> fresh {f:.0}"),
        (None, Some(f)) => println!("info: full_reschedules fresh {f:.0} (no committed baseline)"),
        _ => {}
    }
}

/// Recovery artifact: per (preset, kernel) transient MTTR and permanent
/// throughput ratio / MTTR.
fn compare_recovery(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_rows = committed.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_rows {
        let key = (str_of(c, "preset"), str_of(c, "kernel"));
        let Some(f) = fresh_rows
            .iter()
            .find(|f| (str_of(f, "preset"), str_of(f, "kernel")) == key)
        else {
            println!("note: row {}/{} present in committed but not fresh — skipped", key.0, key.1);
            continue;
        };
        let tag = format!("{}/{}", key.0, key.1);
        if let (Some(ct), Some(ft)) = (c.get("transient"), f.get("transient")) {
            if let (Some(cm), Some(fm)) = (num(ct, "mttr_cycles"), num(ft, "mttr_cycles")) {
                checks.extend(check_larger_is_worse(format!("{tag} transient mttr"), cm, fm));
            }
        }
        if let (Some(cp), Some(fp)) = (c.get("permanent"), f.get("permanent")) {
            let both_recovered = cp.get("recovered").and_then(JsonValue::as_bool) == Some(true)
                && fp.get("recovered").and_then(JsonValue::as_bool) == Some(true);
            if both_recovered {
                if let (Some(cr), Some(fr)) =
                    (num(cp, "throughput_ratio"), num(fp, "throughput_ratio"))
                {
                    checks.extend(check_smaller_is_worse(
                        format!("{tag} permanent throughput_ratio"),
                        cr,
                        fr,
                    ));
                }
                if let (Some(cm), Some(fm)) = (num(cp, "mttr_cycles"), num(fp, "mttr_cycles")) {
                    checks.extend(check_larger_is_worse(format!("{tag} permanent mttr"), cm, fm));
                }
            } else if cp.get("recovered").and_then(JsonValue::as_bool) == Some(true)
                && fp.get("recovered").and_then(JsonValue::as_bool) == Some(false)
            {
                // A pair that used to recover and no longer does is a hard
                // regression regardless of any ratio band.
                checks.push(Check {
                    label: format!("{tag} permanent recovered -> typed failure"),
                    committed: 1.0,
                    fresh: 0.0,
                    worse: 1.0,
                });
            }
        }
    }
}

/// dse_parallel artifact: per thread count, the deterministic exploration
/// outcome (best objective) and the memoization quality (stochastic
/// scheduling passes, cache hit rate). Wall-clock fields are not gated —
/// CI machine speed is not a code property.
fn compare_dse_parallel(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_runs = committed.get("runs").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_runs = fresh.get("runs").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_runs {
        let Some(threads) = num(c, "threads") else { continue };
        let Some(f) = fresh_runs.iter().find(|f| num(f, "threads") == Some(threads)) else {
            println!("note: threads={threads} run present in committed but not fresh — skipped");
            continue;
        };
        let tag = format!("threads={threads}");
        if let (Some(co), Some(fo)) = (num(c, "best_objective"), num(f, "best_objective")) {
            checks.extend(check_smaller_is_worse(format!("{tag} best_objective"), co, fo));
        }
        if let (Some(cs), Some(fs)) = (num(c, "sched_invocations"), num(f, "sched_invocations")) {
            checks.extend(check_larger_is_worse(format!("{tag} sched_invocations"), cs, fs));
        }
        if let (Some(ch), Some(fh)) = (
            c.get("cache").and_then(|v| num(v, "hit_rate")),
            f.get("cache").and_then(|v| num(v, "hit_rate")),
        ) {
            checks.extend(check_smaller_is_worse(format!("{tag} cache hit_rate"), ch, fh));
        }
    }
}

/// config_integrity artifact: per (preset, kernel), the deterministic
/// transient-flip recovery cost and the verify-gate throughput.
fn compare_config_integrity(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_rows = committed.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_rows {
        let key = (str_of(c, "preset"), str_of(c, "kernel"));
        let Some(f) = fresh_rows
            .iter()
            .find(|f| (str_of(f, "preset"), str_of(f, "kernel")) == key)
        else {
            println!("note: row {}/{} present in committed but not fresh — skipped", key.0, key.1);
            continue;
        };
        let tag = format!("{}/{}", key.0, key.1);
        if let (Some(ca), Some(fa)) = (num(c, "recovery_attempts"), num(f, "recovery_attempts")) {
            checks.extend(check_larger_is_worse(format!("{tag} recovery_attempts"), ca, fa));
        }
        if let (Some(cw), Some(fw)) =
            (num(c, "verify_words_per_sec"), num(f, "verify_words_per_sec"))
        {
            checks.extend(check_smaller_is_worse(
                format!("{tag} verify_words_per_sec"),
                cw,
                fw,
            ));
        }
    }
}

/// telemetry_overhead artifact: the fresh aggregate disabled overhead is
/// gated **absolutely** against the artifact's own `gate_pct` (2%) — a
/// committed-relative band makes no sense around a near-zero baseline.
fn compare_telemetry_overhead(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let gate = num(fresh, "gate_pct")
        .or_else(|| num(committed, "gate_pct"))
        .unwrap_or(2.0);
    if let Some(fa) = num(fresh, "aggregate_disabled_overhead_pct") {
        checks.push(Check {
            label: format!("aggregate_disabled_overhead_pct (abs gate {gate}%)"),
            committed: num(committed, "aggregate_disabled_overhead_pct").unwrap_or(gate),
            fresh: fa,
            worse: if fa <= gate { 0.0 } else { 1.0 },
        });
    }
    match (
        num(committed, "enabled_events_per_sec"),
        num(fresh, "enabled_events_per_sec"),
    ) {
        (Some(c), Some(f)) => {
            println!("info: enabled_events_per_sec committed {c:.0} -> fresh {f:.0}");
        }
        (None, Some(f)) => {
            println!("info: enabled_events_per_sec fresh {f:.0} (no committed baseline)");
        }
        _ => {}
    }
}

/// service artifact: the deterministic outcome metrics — every admitted
/// request completes, and the warm phase re-runs the same requests against
/// the same on-disk store, so its store-tier hit rate is a code property.
/// Latencies and shed counts are machine/timing-dependent: informational.
fn compare_service(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    if let (Some(cc), Some(fc)) = (num(committed, "completed"), num(fresh, "completed")) {
        checks.extend(check_smaller_is_worse("completed requests".into(), cc, fc));
    }
    if let (Some(ch), Some(fh)) = (
        num(committed, "warm_start_hit_rate"),
        num(fresh, "warm_start_hit_rate"),
    ) {
        checks.extend(check_smaller_is_worse("warm_start_hit_rate".into(), ch, fh));
    }
    // A fresh run whose warm phase never hits the store is a hard failure
    // even if the committed artifact predates the metric.
    if let Some(fh) = num(fresh, "warm_start_hit_rate") {
        if fh <= 0.0 {
            checks.push(Check {
                label: "warm_start_hit_rate > 0".into(),
                committed: num(committed, "warm_start_hit_rate").unwrap_or(1.0),
                fresh: fh,
                worse: 1.0,
            });
        }
    }
    if let (Some(cq), Some(fq)) = (num(committed, "quarantined"), num(fresh, "quarantined")) {
        if fq > cq {
            checks.push(Check {
                label: "store quarantines".into(),
                committed: cq,
                fresh: fq,
                worse: 1.0,
            });
        }
    }
    for key in ["p50_latency_ms", "p99_latency_ms", "shed"] {
        match (
            num(fresh, key).or_else(|| fresh.get("warm").and_then(|w| num(w, key))),
            num(committed, key).or_else(|| committed.get("warm").and_then(|w| num(w, key))),
        ) {
            (Some(f), Some(c)) => println!("info: {key} committed {c:.3} -> fresh {f:.3}"),
            (Some(f), None) => println!("info: {key} fresh {f:.3} (no committed baseline)"),
            _ => {}
        }
    }
}

fn load(path: &str) -> Result<JsonValue, String> {
    // The typed classification (missing / empty / unparseable / partial)
    // renders an actionable message; bench_compare reports it and exits 2.
    load_artifact(path).map_err(|e| e.to_string())
}

/// The artifact kind: the envelope's `bench` field when present, else
/// sniffed from the (unwrapped) document shape so pre-envelope baselines
/// still dispatch correctly.
fn sniff_kind(doc: &JsonValue, body: &JsonValue) -> Option<&'static str> {
    if let Some(name) = bench_name(doc) {
        return match name {
            "soak" => Some("soak"),
            "recovery" => Some("recovery"),
            "dse_parallel" => Some("dse_parallel"),
            "config_integrity" => Some("config_integrity"),
            "telemetry_overhead" => Some("telemetry_overhead"),
            "service" => Some("service"),
            _ => None,
        };
    }
    if body.get("warm_start_hit_rate").is_some() {
        return Some("service");
    }
    if body.get("presets").is_some() {
        Some("soak")
    } else if body.get("runs").is_some() {
        Some("dse_parallel")
    } else if body.get("aggregate_disabled_overhead_pct").is_some() {
        Some("telemetry_overhead")
    } else if body.get("verify_reps").is_some() {
        Some("config_integrity")
    } else if body.get("rows").is_some() {
        Some("recovery")
    } else {
        None
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, committed_path, fresh_path] = &args[..] else {
        log(Level::Error, "usage: bench_compare <committed.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (committed_doc, fresh_doc) = match (load(committed_path), load(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => {
            log(Level::Error, format!("bench_compare: {e}"));
            return ExitCode::from(2);
        }
    };
    // Both sides read through the envelope (bare documents pass through).
    let committed = payload(&committed_doc);
    let fresh = payload(&fresh_doc);

    let Some(kind) = sniff_kind(&committed_doc, committed)
        .or_else(|| sniff_kind(&fresh_doc, fresh))
    else {
        log(
            Level::Error,
            format!("bench_compare: unrecognized artifact shape in {committed_path}"),
        );
        return ExitCode::from(2);
    };
    println!("bench_compare: {kind} | committed {committed_path} vs fresh {fresh_path}");

    let mut checks = Vec::new();
    match kind {
        "soak" => compare_soak(committed, fresh, &mut checks),
        "dse_parallel" => compare_dse_parallel(committed, fresh, &mut checks),
        "config_integrity" => compare_config_integrity(committed, fresh, &mut checks),
        "telemetry_overhead" => compare_telemetry_overhead(committed, fresh, &mut checks),
        "service" => compare_service(committed, fresh, &mut checks),
        _ => compare_recovery(committed, fresh, &mut checks),
    }

    if checks.is_empty() {
        log(
            Level::Error,
            "bench_compare: no comparable metrics found — schema mismatch?",
        );
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    for check in &checks {
        let verdict = if check.failed() { "FAIL" } else { "ok" };
        println!(
            "  {verdict:>4}  {:<44} committed {:>9.3} fresh {:>9.3} ({:+.1}%)",
            check.label,
            check.committed,
            check.fresh,
            100.0 * check.worse,
        );
        failures += usize::from(check.failed());
    }

    if failures > 0 {
        log(
            Level::Error,
            format!(
                "bench_compare: {failures}/{} metrics regressed beyond {:.0}%",
                checks.len(),
                100.0 * TOLERANCE
            ),
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_compare: all {} metrics within {:.0}% of committed",
        checks.len(),
        100.0 * TOLERANCE
    );
    ExitCode::SUCCESS
}
