//! bench_compare — regression gate for committed BENCH artifacts.
//!
//! Diffs a freshly generated benchmark JSON against the committed copy and
//! fails (exit 1) when recovery quality regressed by more than 25%:
//!
//! * **MTTR** — a preset/row whose mean time to repair grew past 1.25× the
//!   committed value.
//! * **Throughput ratio** — a degraded-mode surviving-throughput fraction
//!   that fell below 0.75× the committed value.
//!
//! The artifact kind (soak vs recovery) is sniffed from the document shape,
//! so CI invokes one binary for both gates:
//!
//! ```text
//! cargo run --release -p dsagen-bench --bin bench_compare -- \
//!     BENCH_soak.json /tmp/fresh_soak.json
//! ```
//!
//! Committed artifacts may predate newer emitters, so every field is
//! optional on the committed side: a metric absent from the committed file
//! (e.g. `full_reschedules` from before rung histograms existed) is
//! reported as informational, never a failure. Comparisons with a
//! committed value below 1.0 (cycle metrics) are skipped — a 25% band
//! around ~zero is noise, not a gate.

use std::process::ExitCode;

use dsagen_bench::json::{parse, JsonValue};

/// Regression band: fail when fresh MTTR exceeds 1.25× committed, or a
/// fresh throughput ratio falls below 0.75× committed.
const TOLERANCE: f64 = 0.25;

/// One metric comparison: `worse` is +fraction regressed (0 = identical).
struct Check {
    label: String,
    committed: f64,
    fresh: f64,
    worse: f64,
}

impl Check {
    fn failed(&self) -> bool {
        self.worse > TOLERANCE
    }
}

/// MTTR-style metric: larger is worse.
fn check_larger_is_worse(label: String, committed: f64, fresh: f64) -> Option<Check> {
    if committed < 1.0 {
        return None; // ~zero baseline: a relative band is meaningless
    }
    Some(Check {
        label,
        committed,
        fresh,
        worse: (fresh - committed) / committed,
    })
}

/// Throughput-ratio-style metric: smaller is worse.
fn check_smaller_is_worse(label: String, committed: f64, fresh: f64) -> Option<Check> {
    if committed <= 0.0 {
        return None;
    }
    Some(Check {
        label,
        committed,
        fresh,
        worse: (committed - fresh) / committed,
    })
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn str_of<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

/// Soak artifact: per-preset storm aggregates keyed by preset name.
fn compare_soak(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_presets = committed.get("presets").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_presets = fresh.get("presets").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_presets {
        let name = str_of(c, "preset");
        let Some(f) = fresh_presets.iter().find(|f| str_of(f, "preset") == name) else {
            println!("note: preset {name} present in committed but not fresh — skipped");
            continue;
        };
        if let (Some(cm), Some(fm)) = (num(c, "mean_mttr_cycles"), num(f, "mean_mttr_cycles")) {
            checks.extend(check_larger_is_worse(format!("{name} mean_mttr_cycles"), cm, fm));
        }
        if let (Some(cr), Some(fr)) =
            (num(c, "mean_throughput_ratio"), num(f, "mean_throughput_ratio"))
        {
            checks.extend(check_smaller_is_worse(
                format!("{name} mean_throughput_ratio"),
                cr,
                fr,
            ));
        }
    }
    // Informational only: the committed artifact may predate this counter.
    match (num(committed, "full_reschedules"), num(fresh, "full_reschedules")) {
        (Some(c), Some(f)) => println!("info: full_reschedules committed {c:.0} -> fresh {f:.0}"),
        (None, Some(f)) => println!("info: full_reschedules fresh {f:.0} (no committed baseline)"),
        _ => {}
    }
}

/// Recovery artifact: per (preset, kernel) transient MTTR and permanent
/// throughput ratio / MTTR.
fn compare_recovery(committed: &JsonValue, fresh: &JsonValue, checks: &mut Vec<Check>) {
    let committed_rows = committed.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(JsonValue::as_array).unwrap_or(&[]);
    for c in committed_rows {
        let key = (str_of(c, "preset"), str_of(c, "kernel"));
        let Some(f) = fresh_rows
            .iter()
            .find(|f| (str_of(f, "preset"), str_of(f, "kernel")) == key)
        else {
            println!("note: row {}/{} present in committed but not fresh — skipped", key.0, key.1);
            continue;
        };
        let tag = format!("{}/{}", key.0, key.1);
        if let (Some(ct), Some(ft)) = (c.get("transient"), f.get("transient")) {
            if let (Some(cm), Some(fm)) = (num(ct, "mttr_cycles"), num(ft, "mttr_cycles")) {
                checks.extend(check_larger_is_worse(format!("{tag} transient mttr"), cm, fm));
            }
        }
        if let (Some(cp), Some(fp)) = (c.get("permanent"), f.get("permanent")) {
            let both_recovered = cp.get("recovered").and_then(JsonValue::as_bool) == Some(true)
                && fp.get("recovered").and_then(JsonValue::as_bool) == Some(true);
            if both_recovered {
                if let (Some(cr), Some(fr)) =
                    (num(cp, "throughput_ratio"), num(fp, "throughput_ratio"))
                {
                    checks.extend(check_smaller_is_worse(
                        format!("{tag} permanent throughput_ratio"),
                        cr,
                        fr,
                    ));
                }
                if let (Some(cm), Some(fm)) = (num(cp, "mttr_cycles"), num(fp, "mttr_cycles")) {
                    checks.extend(check_larger_is_worse(format!("{tag} permanent mttr"), cm, fm));
                }
            } else if cp.get("recovered").and_then(JsonValue::as_bool) == Some(true)
                && fp.get("recovered").and_then(JsonValue::as_bool) == Some(false)
            {
                // A pair that used to recover and no longer does is a hard
                // regression regardless of any ratio band.
                checks.push(Check {
                    label: format!("{tag} permanent recovered -> typed failure"),
                    committed: 1.0,
                    fresh: 0.0,
                    worse: 1.0,
                });
            }
        }
    }
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, committed_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <committed.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (committed, fresh) = match (load(committed_path), load(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    // Sniff the artifact kind: soak files carry per-preset aggregates,
    // recovery files carry a transient/permanent split per row.
    let kind = if committed.get("presets").is_some() || fresh.get("presets").is_some() {
        "soak"
    } else {
        "recovery"
    };
    println!("bench_compare: {kind} | committed {committed_path} vs fresh {fresh_path}");

    let mut checks = Vec::new();
    if kind == "soak" {
        compare_soak(&committed, &fresh, &mut checks);
    } else {
        compare_recovery(&committed, &fresh, &mut checks);
    }

    if checks.is_empty() {
        eprintln!("bench_compare: no comparable metrics found — schema mismatch?");
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    for check in &checks {
        let verdict = if check.failed() { "FAIL" } else { "ok" };
        println!(
            "  {verdict:>4}  {:<44} committed {:>9.3} fresh {:>9.3} ({:+.1}%)",
            check.label,
            check.committed,
            check.fresh,
            100.0 * check.worse,
        );
        failures += usize::from(check.failed());
    }

    if failures > 0 {
        eprintln!(
            "bench_compare: {failures}/{} metrics regressed beyond {:.0}%",
            checks.len(),
            100.0 * TOLERANCE
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_compare: all {} metrics within {:.0}% of committed",
        checks.len(),
        100.0 * TOLERANCE
    );
    ExitCode::SUCCESS
}
