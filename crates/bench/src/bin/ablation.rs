//! Ablations of design choices and of the §III-C "potential features"
//! implemented as extensions:
//!
//!  (1) sliding-window vector-port grouping (compiler design choice —
//!      without it, stencil/filter kernels burn one port per tap);
//!  (2) memory coalescing for strided access (extension; the paper lists
//!      it as a potential feature and notes irregular access is otherwise
//!      served by banking);
//!  (3) FSM control sequencer versus the programmable core (extension;
//!      cheap control for kernels that need no scalar fallback).
//!
//! Run with: `cargo run --release -p dsagen-bench --bin ablation`

use dsagen::CompileOptions;
use dsagen_adg::{presets, NodeKind};
use dsagen_bench::{harness_opts, rule, run_workload};
use dsagen_dfg::{compile_kernel, enumerate_configs};
use dsagen_model::AreaPowerModel;
use dsagen_scheduler::schedule;
use dsagen_sim::{simulate, SimConfig};

/// Compile + simulate with window-port grouping forced off.
fn run_without_windows(adg: &dsagen_adg::Adg, kernel: &dsagen_dfg::Kernel) -> Option<u64> {
    let features = adg.features();
    let opts: CompileOptions = harness_opts();
    let mut best: Option<u64> = None;
    for mut cfg in enumerate_configs(kernel, &features, opts.max_unroll) {
        cfg.window_ports = false;
        let Ok(version) = compile_kernel(kernel, &cfg, &features) else {
            continue;
        };
        if !version.requires.satisfied_by(&features) {
            continue;
        }
        let result = schedule(adg, &version, &opts.scheduler);
        if !result.is_legal() {
            continue;
        }
        let Ok(report) =
            simulate(adg, &version, &result.schedule, &result.eval, 0, &SimConfig::default())
        else {
            continue;
        };
        if best.is_none_or(|b| report.cycles < b) {
            best = Some(report.cycles);
        }
    }
    best
}

fn main() {
    let model = AreaPowerModel::default();

    // ------------------------------------------------------------- (1)
    println!("ABLATION 1: sliding-window vector ports (tap grouping)");
    rule(72);
    println!(
        "{:<14} {:<11} {:>12} {:>12}",
        "workload", "hardware", "grouped", "ungrouped"
    );
    rule(72);
    let adg = presets::softbrain();
    for kernel in [
        dsagen::workloads::machsuite::stencil2d(),
        dsagen::workloads::machsuite::stencil3d(),
        dsagen::workloads::dsp::centro_fir(),
    ] {
        let (_, with) = run_workload(&adg, &kernel);
        let without = run_without_windows(&adg, &kernel);
        println!(
            "{:<14} {:<11} {:>12} {:>12}",
            kernel.name,
            adg.name(),
            with.cycles,
            without.map_or("unmappable".into(), |c| c.to_string())
        );
    }
    rule(72);
    println!("without grouping, every tap needs its own vector port; stencils either");
    println!("fail to map (port overuse) or lose throughput to port contention.\n");

    // ------------------------------------------------------------- (2)
    println!("ABLATION 2: memory coalescing for strided access (§III-C extension)");
    rule(72);
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>11}",
        "workload", "banked-only", "coalescing", "speedup", "area-delta"
    );
    rule(72);
    let base = presets::revel();
    let mut coal = presets::revel();
    let spads: Vec<_> = coal
        .memories()
        .filter(|m| {
            matches!(coal.kind(*m), Ok(NodeKind::Memory(s)) if s.kind == dsagen_adg::MemKind::Scratchpad)
        })
        .collect();
    for id in spads {
        if let Some(node) = coal.node_mut(id) {
            if let NodeKind::Memory(m) = &mut node.kind {
                m.controllers.coalescing = true;
            }
        }
    }
    coal.set_name("revel+coalescing");
    let area_delta =
        model.estimate_adg(&coal).area_mm2 - model.estimate_adg(&base).area_mm2;
    for kernel in [dsagen::workloads::dsp::fft(), dsagen::workloads::dsp::qr()] {
        let (_, plain) = run_workload(&base, &kernel);
        let (_, merged) = run_workload(&coal, &kernel);
        println!(
            "{:<14} {:>12} {:>12} {:>8.2}x {:>9.4}mm2",
            kernel.name,
            plain.cycles,
            merged.cycles,
            plain.cycles as f64 / merged.cycles.max(1) as f64,
            area_delta
        );
    }
    rule(72);
    println!("coalescing rescues the fft small-stride pathology (§VIII-A) at a small");
    println!("controller-area cost — confirming why the paper lists it as future work.\n");

    // ------------------------------------------------------------- (3)
    println!("ABLATION 3: FSM sequencer vs programmable control core (§III-C extension)");
    rule(72);
    let core = presets::softbrain();
    let mut fsm = presets::softbrain();
    let ctrl = fsm.control().expect("softbrain has a control core");
    if let Some(node) = fsm.node_mut(ctrl) {
        node.kind = NodeKind::Control(dsagen_adg::CtrlSpec::fsm());
    }
    fsm.set_name("softbrain+fsm");
    let c_core = model.estimate_adg(&core);
    let c_fsm = model.estimate_adg(&fsm);
    println!(
        "control core : {:.3} mm^2 / {:.0} mW total",
        c_core.area_mm2, c_core.power_mw
    );
    println!(
        "fsm sequencer: {:.3} mm^2 / {:.0} mW total ({:.0}% area saved)",
        c_fsm.area_mm2,
        c_fsm.power_mw,
        100.0 * (1.0 - c_fsm.area_mm2 / c_core.area_mm2)
    );
    // Which workloads still map? (Those without scalar fallback work.)
    let opts = harness_opts();
    let mut kept = Vec::new();
    let mut lost = Vec::new();
    for w in dsagen::workloads::suite(dsagen::workloads::Suite::PolyBench)
        .into_iter()
        .chain(dsagen::workloads::suite(dsagen::workloads::Suite::MachSuite))
    {
        match dsagen::compile(&fsm, &w.kernel, &opts) {
            Ok(_) => kept.push(w.name),
            Err(_) => lost.push(w.name),
        }
    }
    println!("still map under FSM control : {kept:?}");
    println!("need the programmable core  : {lost:?}");
    println!("(kernels whose best version uses scalar fallback code cannot run on an FSM)");
}
