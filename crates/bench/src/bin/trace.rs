//! trace — one command, one loadable Chrome trace, one attribution table.
//!
//! Runs the full instrumented pipeline — compile → schedule → model →
//! simulate → model-vs-sim attribution — for the paper workloads on the
//! softbrain preset, then:
//!
//! * writes `trace.json`, a Chrome `trace_event` file: open
//!   `chrome://tracing` (or <https://ui.perfetto.dev>) and load it to see
//!   the phase spans on a timeline;
//! * writes `trace.jsonl`, the same events as flat JSONL for scripting;
//! * prints the per-kernel model-vs-sim attribution table (predicted
//!   bottleneck vs measured stall breakdown, relative error per kernel).
//!
//! Output prefix is the first CLI argument (default `trace`, producing
//! `trace.json` / `trace.jsonl`).
//!
//! Run with: `cargo run --release -p dsagen-bench --bin trace`

use dsagen::attribution::{attribute, attribution_table};
use dsagen::{compile_traced, CompileOptions};
use dsagen_adg::presets;
use dsagen_bench::rule;
use dsagen_scheduler::SchedulerConfig;
use dsagen_sim::SimConfig;
use dsagen_telemetry::{chrome_trace, jsonl, log, Level, Telemetry};
use dsagen_workloads::{dsp, machsuite, polybench};

fn main() {
    let prefix = std::env::args().nth(1).unwrap_or_else(|| "trace".to_string());
    let adg = presets::softbrain();
    let kernels = vec![
        polybench::mvt(),
        polybench::atax(),
        machsuite::mm(),
        dsp::fir16(),
    ];
    let opts = CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 200,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    };

    println!("TRACE: instrumented pipeline on {}", adg.name());
    rule(72);

    let tel = Telemetry::in_memory();
    let mut rows = Vec::new();
    for kernel in &kernels {
        match compile_traced(&adg, kernel, &opts, &tel) {
            Ok(compiled) => {
                match attribute(&adg, &kernel.name, &compiled, &SimConfig::default(), &tel) {
                    Ok(row) => rows.push(row),
                    Err(e) => println!("{}: skipped ({e})", kernel.name),
                }
            }
            Err(e) => println!("{}: skipped ({e})", kernel.name),
        }
    }

    // The Fig 15-bottom validation as text: model vs simulator, per kernel.
    println!("{}", attribution_table(&rows));

    // Per-kernel dominant stalls from the hardware counters.
    for row in &rows {
        let (label, cycles) = row.taxonomy.dominant();
        println!(
            "{:<12} dominant stall: {label} ({cycles} cycles, {} stall cycles total)",
            row.kernel,
            row.taxonomy.total()
        );
    }
    rule(72);

    let events = tel.events();
    let json_path = format!("{prefix}.json");
    let jsonl_path = format!("{prefix}.jsonl");
    if let Err(e) = std::fs::write(&json_path, chrome_trace(&events)) {
        log(Level::Error, format!("could not write {json_path}: {e}"));
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&jsonl_path, jsonl(&events)) {
        log(Level::Error, format!("could not write {jsonl_path}: {e}"));
        std::process::exit(1);
    }
    println!(
        "{} events -> {json_path} (load in chrome://tracing) and {jsonl_path}",
        events.len()
    );
}
