//! profile — self-profiling flame report for a representative DSE run.
//!
//! Runs a fixed-seed, single-threaded exploration with the full
//! observability stack on (event sink, metrics registry, flight
//! recorder), then compiles and simulates the best design under the same
//! telemetry handle, and folds the span capture into the wall-time
//! attribution tree ([`dsagen_telemetry::profile`]). The answer to "where
//! does DSE wall time go" is printed as:
//!
//! * the full indented flame tree (also written to
//!   `results/profile_flame.txt` for the CI artifact upload), and
//! * **top-level buckets** of the `phase/dse` span — its direct children
//!   (path search, scoped repair, config verify, model estimate) plus an
//!   explicit `other` bucket for the span's own self time, so the buckets
//!   sum to exactly 100% of the DSE span. The run fails (exit 1) if the
//!   named buckets (`other` excluded) cover less than 95% of the DSE
//!   span, or if no path-search bucket exists — that's the attribution
//!   the ROADMAP's hot-loop rewrite is gated on.
//!
//! A machine-readable copy is written as JSON (first CLI argument,
//! default `BENCH_profile.json`); the flame text path is the second CLI
//! argument (default `results/profile_flame.txt`).
//!
//! Run with: `cargo run --release -p dsagen-bench --bin profile`

use std::fmt::Write as _;

use dsagen::{compile, CompileOptions};
use dsagen_adg::presets;
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_dse::{DseConfig, Explorer};
use dsagen_sim::{simulate_instrumented, SimConfig};
use dsagen_telemetry::{
    log, profile, FlightRecorder, Level, MetricsRegistry, ProfileNode, Telemetry,
};
use dsagen_workloads::{machsuite, polybench};

/// Fixed seed: the profiled run is reproducible.
const SEED: u64 = 0x9806;
/// Exploration shards. Single-threaded execution keeps every span on one
/// thread, so the attribution tree is one coherent stack.
const SHARDS: usize = 2;
/// Exploration steps per shard — enough for every phase to register.
const MAX_ITERS: u32 = 16;
/// Minimum fraction of the DSE span the named top-level buckets must
/// cover (the `other` self-time bucket excluded).
const MIN_NAMED_COVERAGE: f64 = 0.95;

/// One top-level attribution bucket under the DSE span.
struct Bucket {
    name: String,
    total_us: u64,
    pct: f64,
}

fn buckets_of(dse: &ProfileNode) -> Vec<Bucket> {
    let total = dse.total_us.max(1) as f64;
    let mut out: Vec<Bucket> = dse
        .children
        .iter()
        .map(|c| Bucket {
            name: c.key(),
            total_us: c.total_us,
            pct: 100.0 * c.total_us as f64 / total,
        })
        .collect();
    out.push(Bucket {
        name: "other (dse self)".to_string(),
        total_us: dse.self_us,
        pct: 100.0 * dse.self_us as f64 / total,
    });
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    let flame_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "results/profile_flame.txt".to_string());

    let kernels = vec![polybench::mvt(), machsuite::mm()];
    let cfg = DseConfig {
        seed: SEED,
        shards: SHARDS,
        threads: 1,
        max_iters: MAX_ITERS,
        patience: MAX_ITERS,
        sched_iters: 60,
        max_unroll: 4,
        ..DseConfig::default()
    };
    println!("SELF-PROFILE: wall-time attribution for a representative DSE run");
    println!(
        "seed {SEED:#x}, {SHARDS} shards x {MAX_ITERS} iters, 1 thread, kernels: {}",
        kernels
            .iter()
            .map(|k| k.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The full stack: event sink (spans), metrics registry, flight
    // recorder — the profiled run doubles as an end-to-end smoke test of
    // all three observability pillars.
    let tel = Telemetry::in_memory()
        .with_metrics(MetricsRegistry::enabled())
        .with_recorder(FlightRecorder::enabled());
    let mut ex = Explorer::new(presets::dse_initial(), &kernels, cfg).with_telemetry(tel.clone());
    let result = ex.run();
    println!(
        "explored: best objective {:.4}, {} sched invocations",
        result.best.objective,
        ex.sched_invocations()
    );

    // Simulate the best design under the same handle so the engine's
    // tick-loop span joins the capture next to the DSE span.
    let opts = CompileOptions {
        max_unroll: 4,
        ..CompileOptions::default()
    };
    match compile(&result.best_adg, &kernels[0], &opts) {
        Ok(c) => {
            let sim = simulate_instrumented(
                &result.best_adg,
                &c.version,
                &c.schedule,
                &c.eval,
                c.config_path_len,
                &SimConfig::default(),
                &tel,
            );
            match sim {
                Ok((report, _)) => println!(
                    "simulated best design: {} cycles on {}",
                    report.cycles, kernels[0].name
                ),
                Err(e) => log(Level::Warn, format!("best design did not simulate: {e}")),
            }
        }
        Err(e) => log(Level::Warn, format!("best design did not compile: {e}")),
    }

    let events = tel.events();
    let report = profile(&events);
    rule(84);
    print!("{}", report.flame());
    rule(84);

    let Some(dse) = report.find("dse") else {
        log(Level::Error, "no phase/dse span in the capture");
        std::process::exit(1);
    };
    let buckets = buckets_of(dse);
    let named_pct: f64 = buckets
        .iter()
        .filter(|b| !b.name.starts_with("other"))
        .map(|b| b.pct)
        .sum();
    let path_search_pct: f64 = buckets
        .iter()
        .filter(|b| b.name.contains("path_search"))
        .map(|b| b.pct)
        .sum();
    let engine_us = report.find("tick_loop").map_or(0, |n| n.total_us);

    println!("top-level DSE buckets ({}us total):", dse.total_us);
    for b in &buckets {
        println!("  {:<28} {:>10}us {:>6.1}%", b.name, b.total_us, b.pct);
    }
    println!(
        "named buckets cover {named_pct:.1}% of the DSE span | path search {path_search_pct:.1}% \
| engine tick loop {engine_us}us"
    );

    if let Err(e) = std::fs::create_dir_all(
        std::path::Path::new(&flame_path).parent().unwrap_or_else(|| std::path::Path::new(".")),
    ) {
        log(Level::Warn, format!("could not create flame dir: {e}"));
    }
    match std::fs::write(&flame_path, report.flame()) {
        Ok(()) => println!("wrote {flame_path}"),
        Err(e) => log(Level::Error, format!("could not write {flame_path}: {e}")),
    }

    // Machine-readable copy (the vendored serde is a stub — by hand).
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"wall_us\": {},\n  \"dse_total_us\": {},\n  \
\"named_coverage_pct\": {named_pct:.2},\n  \"path_search_pct\": {path_search_pct:.2},\n  \
\"engine_tick_loop_us\": {engine_us},\n  \"buckets\": [\n",
        report.wall_us, dse.total_us,
    );
    for (i, b) in buckets.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": {:?}, \"total_us\": {}, \"pct\": {:.2}}}{}",
            b.name,
            b.total_us,
            b.pct,
            if i + 1 < buckets.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    let artifact = Envelope::new("profile")
        .meta_int("seed", SEED)
        .meta_int("shards", SHARDS as u64)
        .meta_int("max_iters", u64::from(MAX_ITERS))
        .metrics(tel.metrics().snapshot())
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }

    // The gate: the buckets must actually explain the DSE span — a new
    // untracked phase that grows past 5% of the run shows up here first.
    if named_pct < 100.0 * MIN_NAMED_COVERAGE {
        log(
            Level::Error,
            format!(
                "FAIL: named buckets cover only {named_pct:.1}% of the DSE span \
(need {:.0}%) — a phase is missing its span",
                100.0 * MIN_NAMED_COVERAGE
            ),
        );
        std::process::exit(1);
    }
    if path_search_pct <= 0.0 {
        log(
            Level::Error,
            "FAIL: no path-search bucket in the DSE attribution",
        );
        std::process::exit(1);
    }
    println!("gate passed: attribution covers the DSE span");
}
