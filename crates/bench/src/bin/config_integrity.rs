//! config_integrity — configuration-plane integrity microbenchmark.
//!
//! Measures the two costs the configuration-integrity subsystem adds to
//! the accelerator programming path:
//!
//! 1. **Decode + verify throughput** — words/sec through the full
//!    `verify_round_trip` gate (encode → decode → compare → re-encode →
//!    bit-compare), the check the simulator and DSE now run before any
//!    schedule is trusted.
//! 2. **CRC framing latency vs raw delivery** — ns/word to pack every
//!    config word into a CRC32-guarded transport frame and validate it
//!    back, against a raw unprotected copy of the same words.
//!
//! Plus one end-to-end recovery probe: a `ProgrammingSession` delivering
//! each bitstream over a channel that flips one bit on the first round,
//! reporting the retry cost of healing the fault.
//!
//! A machine-readable copy of the table is written as JSON (first CLI
//! argument, default `BENCH_config_integrity.json`) for the CI artifact
//! upload and the `bench_compare` recovery-behavior gate.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin config_integrity`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use dsagen_adg::{presets, Adg};
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_telemetry::{log, Level};
use dsagen_dfg::{compile_kernel, Kernel, TransformConfig};
use dsagen_faults::{corrupt_frames, FaultKind, FaultPlan};
use dsagen_hwgen::{
    deframe_words, frame_words, verify_round_trip, Bitstream, ProgrammingSession, SessionConfig,
};
use dsagen_scheduler::{schedule, Problem, SchedulerConfig};
use dsagen_workloads::{machsuite, polybench};

/// Fixed scheduler seed: every run measures the identical bitstreams.
const SEED: u64 = 0xC0DE;
/// Scheduling iterations when building each configuration.
const SCHED_ITERS: u32 = 60;
/// Timed repetitions of the verify gate per configuration.
const VERIFY_REPS: u32 = 400;
/// Timed repetitions of the framing round-trip per configuration.
const FRAME_REPS: u32 = 2_000;

struct Row {
    preset: &'static str,
    kernel: String,
    words: usize,
    verify_words_per_sec: f64,
    frame_ns_per_word: f64,
    raw_ns_per_word: f64,
    recovery_attempts: u32,
    recovery_crc_failures: u64,
}

impl Row {
    fn framing_overhead(&self) -> f64 {
        self.frame_ns_per_word / self.raw_ns_per_word.max(1e-9)
    }
}

fn fixtures() -> Vec<(&'static str, Adg, Vec<Kernel>)> {
    vec![
        (
            "softbrain",
            presets::softbrain(),
            vec![polybench::mvt(), machsuite::mm()],
        ),
        ("revel", presets::revel(), vec![polybench::mvt()]),
    ]
}

fn bench_one(preset: &'static str, adg: &Adg, kernel: &Kernel) -> Row {
    let ck = compile_kernel(kernel, &TransformConfig::fallback(), &adg.features())
        .expect("benchmark kernel must compile");
    let cfg = SchedulerConfig {
        max_iters: SCHED_ITERS,
        seed: SEED,
        ..SchedulerConfig::default()
    };
    let s = schedule(adg, &ck, &cfg);
    let problem = Problem::new(adg, &ck);
    let bs = Bitstream::encode(&problem, &s.schedule);
    let words = bs.to_words();
    assert!(!words.is_empty(), "configuration must be non-empty");

    // 1. Decode + verify throughput through the full round-trip gate.
    let started = Instant::now();
    for _ in 0..VERIFY_REPS {
        let token = verify_round_trip(black_box(&problem), black_box(&s.schedule))
            .expect("healthy configuration must verify");
        black_box(token.word_count());
    }
    let verify_secs = started.elapsed().as_secs_f64();
    let verify_words_per_sec =
        (words.len() as u64 * u64::from(VERIFY_REPS)) as f64 / verify_secs.max(1e-9);

    // 2a. CRC framing round-trip: pack + validate + reassemble.
    let started = Instant::now();
    for _ in 0..FRAME_REPS {
        let framed = frame_words(black_box(&words));
        let back = deframe_words(black_box(&framed), words.len())
            .expect("clean frames must deframe");
        black_box(back.len());
    }
    let frame_secs = started.elapsed().as_secs_f64();
    let frame_ns_per_word =
        frame_secs * 1e9 / (words.len() as u64 * u64::from(FRAME_REPS)) as f64;

    // 2b. Raw, unprotected delivery of the same words (copy + read back).
    let started = Instant::now();
    for _ in 0..FRAME_REPS {
        let raw = black_box(&words).to_vec();
        black_box(raw.iter().fold(0u64, |a, &w| a.wrapping_add(w)));
    }
    let raw_secs = started.elapsed().as_secs_f64();
    let raw_ns_per_word = raw_secs * 1e9 / (words.len() as u64 * u64::from(FRAME_REPS)) as f64;

    // 3. Recovery probe: one transient bit flip, healed by retransmission.
    let plan = FaultPlan::new(SEED).with(FaultKind::BitFlip);
    let mut session = ProgrammingSession::new(&bs, SessionConfig::default());
    let report = session.program(|round, framed| {
        if round == 0 {
            corrupt_frames(framed, &plan).0
        } else {
            framed.to_vec()
        }
    });
    assert!(
        report.is_verified(),
        "transient flip must recover: {report}"
    );

    Row {
        preset,
        kernel: kernel.name.clone(),
        words: words.len(),
        verify_words_per_sec,
        frame_ns_per_word,
        raw_ns_per_word,
        recovery_attempts: report.attempts,
        recovery_crc_failures: report.crc_failures,
    }
}

/// Minimal JSON emission (the vendored serde is a stub — format by hand).
fn to_json(rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"seed\": {SEED},\n  \"verify_reps\": {VERIFY_REPS},\n  \"frame_reps\": {FRAME_REPS},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"preset\": {:?}, \"kernel\": {:?}, \"words\": {}, \
\"verify_words_per_sec\": {:.1}, \"frame_ns_per_word\": {:.2}, \"raw_ns_per_word\": {:.2}, \
\"framing_overhead_x\": {:.2}, \"recovery_attempts\": {}, \"recovery_crc_failures\": {}}}{}",
            r.preset,
            r.kernel,
            r.words,
            r.verify_words_per_sec,
            r.frame_ns_per_word,
            r.raw_ns_per_word,
            r.framing_overhead(),
            r.recovery_attempts,
            r.recovery_crc_failures,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_config_integrity.json".to_string());

    println!("CONFIG INTEGRITY: round-trip verification and CRC framing cost");
    println!(
        "seed {SEED:#x}, {VERIFY_REPS} verify reps, {FRAME_REPS} framing reps per configuration"
    );
    rule(92);
    println!(
        "{:>10} {:>12} {:>7} {:>14} {:>10} {:>9} {:>9} {:>8}",
        "preset", "kernel", "words", "verify-wps", "frame-ns", "raw-ns", "overhead", "recover"
    );
    rule(92);

    let mut rows = Vec::new();
    for (preset, adg, kernels) in fixtures() {
        for kernel in &kernels {
            let r = bench_one(preset, &adg, kernel);
            println!(
                "{:>10} {:>12} {:>7} {:>14.0} {:>10.2} {:>9.2} {:>8.2}x {:>7}r",
                r.preset,
                r.kernel,
                r.words,
                r.verify_words_per_sec,
                r.frame_ns_per_word,
                r.raw_ns_per_word,
                r.framing_overhead(),
                r.recovery_attempts,
            );
            rows.push(r);
        }
    }
    rule(92);

    // Sanity contract: verification sustains real throughput and every
    // transient flip healed within the default retry budget.
    let min_wps = rows
        .iter()
        .map(|r| r.verify_words_per_sec)
        .fold(f64::INFINITY, f64::min);
    let budget = 1 + SessionConfig::default().max_retries;
    let recover_ok = rows.iter().all(|r| r.recovery_attempts <= budget);
    println!(
        "min verify throughput: {min_wps:.0} words/s | transient recovery within budget: {}",
        if recover_ok { "ok" } else { "FAIL" }
    );

    let json = to_json(&rows);
    let artifact = Envelope::new("config_integrity")
        .meta_int("seed", SEED)
        .meta_int("verify_reps", u64::from(VERIFY_REPS))
        .meta_int("frame_reps", u64::from(FRAME_REPS))
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }
}
