//! telemetry_overhead — cost of the telemetry layer, on and off.
//!
//! Three measurements:
//!
//! 1. **Event throughput** — events/sec through `Telemetry::emit` into the
//!    in-memory sink, and the per-call cost of a *disabled* handle (one
//!    `Option` discriminant branch; the closure never runs).
//! 2. **Pipeline overhead, disabled** — wall time of
//!    `simulate_instrumented` with `Telemetry::disabled()` (every pillar
//!    off: sink, metrics registry, flight recorder) versus the plain
//!    `simulate`, min-of-N per kernel. This is the zero-cost contract the
//!    library ships under: **the run fails (exit 1) if the disabled
//!    overhead exceeds 2%.**
//! 3. **Pipeline overhead, enabled** — the same comparison with the event
//!    sink on, the metrics registry on (sink off), and the flight
//!    recorder on (sink off), each reported for information (not gated).
//!
//! A machine-readable copy is written as JSON (first CLI argument,
//! default `BENCH_telemetry_overhead.json`) for the CI artifact upload
//! and the `bench_compare` absolute overhead gate.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin telemetry_overhead`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use dsagen::{compile, CompileOptions};
use dsagen_adg::{presets, Adg};
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_dfg::Kernel;
use dsagen_scheduler::SchedulerConfig;
use dsagen_sim::{simulate, simulate_instrumented, SimConfig};
use dsagen_telemetry::{log, EventData, FlightRecorder, Level, MetricsRegistry, Telemetry};
use dsagen_workloads::{machsuite, polybench};

/// Interleaved measurement rounds per kernel; each round times every mode
/// once (in a rotating order, so no mode always rides the cache-warm or
/// boost-decayed slot) and per-round paired ratios are medianed, so slow
/// outliers (scheduler preemption, thermal drift) cannot bias one mode.
const REPS: u32 = 33;
/// Events pushed through the emission-throughput probe.
const EMIT_EVENTS: u64 = 200_000;
/// The gate: disabled-telemetry overhead must stay under this.
const MAX_DISABLED_OVERHEAD_PCT: f64 = 2.0;

struct Row {
    kernel: String,
    plain_us: f64,
    disabled_us: f64,
    enabled_us: f64,
    /// Median of per-round `disabled/plain` ratios (paired, so clock
    /// drift across the run cancels).
    disabled_ratio: f64,
    /// Median of per-round `enabled/plain` ratios (event sink on).
    enabled_ratio: f64,
    /// Median of per-round ratios with only the metrics registry on.
    metrics_ratio: f64,
    /// Median of per-round ratios with only the flight recorder on.
    recorder_ratio: f64,
    events: usize,
}

impl Row {
    fn disabled_overhead_pct(&self) -> f64 {
        (self.disabled_ratio - 1.0) * 100.0
    }
    fn enabled_overhead_pct(&self) -> f64 {
        (self.enabled_ratio - 1.0) * 100.0
    }
    fn metrics_overhead_pct(&self) -> f64 {
        (self.metrics_ratio - 1.0) * 100.0
    }
    fn recorder_overhead_pct(&self) -> f64 {
        (self.recorder_ratio - 1.0) * 100.0
    }
}

/// Median of a sample (by value; the vectors here are tiny).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        return f64::NAN;
    }
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

fn fixtures() -> (Adg, Vec<Kernel>) {
    (
        presets::softbrain(),
        vec![polybench::mvt(), machsuite::mm(), polybench::atax()],
    )
}

/// One timed call, in microseconds.
fn time_us<T>(f: impl FnOnce() -> T) -> f64 {
    let started = Instant::now();
    black_box(f());
    started.elapsed().as_secs_f64() * 1e6
}

fn bench_kernel(adg: &Adg, kernel: &Kernel) -> Row {
    let opts = CompileOptions {
        max_unroll: 4,
        scheduler: SchedulerConfig {
            max_iters: 150,
            ..SchedulerConfig::default()
        },
        ..CompileOptions::default()
    };
    let c = compile(adg, kernel, &opts).expect("benchmark kernel must compile");
    let cfg = SimConfig::default();
    let off = Telemetry::disabled();
    let on = Telemetry::in_memory();
    let with_metrics = Telemetry::disabled().with_metrics(MetricsRegistry::enabled());
    let with_recorder = Telemetry::disabled().with_recorder(FlightRecorder::enabled());

    let run_plain = || {
        simulate(adg, &c.version, &c.schedule, &c.eval, c.config_path_len, &cfg)
            .expect("benchmark schedule must simulate")
            .cycles
    };
    let run_with = |tel: &Telemetry| {
        simulate_instrumented(
            adg,
            &c.version,
            &c.schedule,
            &c.eval,
            c.config_path_len,
            &cfg,
            tel,
        )
        .expect("benchmark schedule must simulate")
        .0
        .cycles
    };

    // The five modes, one timing closure each: plain `simulate`, then the
    // instrumented path with every pillar off, the event sink on, only
    // the metrics registry on, and only the flight recorder on.
    let modes: [&dyn Fn() -> f64; 5] = [
        &|| time_us(run_plain),
        &|| time_us(|| run_with(&off)),
        &|| time_us(|| run_with(&on)),
        &|| time_us(|| run_with(&with_metrics)),
        &|| time_us(|| run_with(&with_recorder)),
    ];

    // Warm-up: touch every path once before timing.
    for mode in &modes {
        black_box(mode());
    }

    // Interleaved rounds: each round times the five modes back to back,
    // so the paired within-round ratios are immune to slow clock drift.
    // The starting mode rotates per round so no mode systematically
    // occupies the first (cache-warm) or last (boost-decayed) slot.
    let mut min_us = [f64::INFINITY; 5];
    let mut ratios: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::with_capacity(REPS as usize));
    for round in 0..REPS as usize {
        let mut round_us = [0.0f64; 5];
        for k in 0..modes.len() {
            let mode = (round + k) % modes.len();
            round_us[mode] = modes[mode]();
        }
        let plain = round_us[0].max(1e-9);
        for (mode, &us) in round_us.iter().enumerate() {
            min_us[mode] = min_us[mode].min(us);
            if mode > 0 {
                ratios[mode - 1].push(us / plain);
            }
        }
    }
    let [disabled_ratios, enabled_ratios, metrics_ratios, recorder_ratios] = ratios;

    Row {
        kernel: kernel.name.clone(),
        plain_us: min_us[0],
        disabled_us: min_us[1],
        enabled_us: min_us[2],
        disabled_ratio: median(disabled_ratios),
        enabled_ratio: median(enabled_ratios),
        metrics_ratio: median(metrics_ratios),
        recorder_ratio: median(recorder_ratios),
        events: on.events().len(),
    }
}

/// Raw event-layer throughput: events/sec enabled, ns/call disabled.
fn bench_emission() -> (f64, f64) {
    let on = Telemetry::in_memory();
    let started = Instant::now();
    for i in 0..EMIT_EVENTS {
        on.emit(|| {
            EventData::new("bench", "tick")
                .arg("i", i)
                .arg("phase", "emit")
        });
    }
    let enabled_eps = EMIT_EVENTS as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(on.events().len() as u64, EMIT_EVENTS);

    let off = Telemetry::disabled();
    let started = Instant::now();
    for i in 0..EMIT_EVENTS {
        off.emit(|| {
            EventData::new("bench", "tick")
                .arg("i", i)
                .arg("phase", "emit")
        });
    }
    let disabled_ns_per_call =
        started.elapsed().as_secs_f64() * 1e9 / EMIT_EVENTS as f64;
    assert!(off.events().is_empty());
    (enabled_eps, disabled_ns_per_call)
}

fn to_json(rows: &[Row], enabled_eps: f64, disabled_ns: f64, aggregate_pct: f64) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"reps\": {REPS},\n  \"emit_events\": {EMIT_EVENTS},\n  \
\"enabled_events_per_sec\": {enabled_eps:.0},\n  \"disabled_ns_per_call\": {disabled_ns:.2},\n  \
\"aggregate_disabled_overhead_pct\": {aggregate_pct:.3},\n  \
\"gate_pct\": {MAX_DISABLED_OVERHEAD_PCT},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"kernel\": {:?}, \"plain_us\": {:.1}, \"disabled_us\": {:.1}, \
\"enabled_us\": {:.1}, \"disabled_overhead_pct\": {:.3}, \"enabled_overhead_pct\": {:.3}, \
\"metrics_overhead_pct\": {:.3}, \"recorder_overhead_pct\": {:.3}, \
\"events\": {}}}{}",
            r.kernel,
            r.plain_us,
            r.disabled_us,
            r.enabled_us,
            r.disabled_overhead_pct(),
            r.enabled_overhead_pct(),
            r.metrics_overhead_pct(),
            r.recorder_overhead_pct(),
            r.events,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry_overhead.json".to_string());

    println!("TELEMETRY OVERHEAD: event throughput and pipeline cost, on vs off");
    println!("{REPS} reps per mode (min-of-N), gate: disabled overhead < {MAX_DISABLED_OVERHEAD_PCT}%");
    rule(86);

    let (enabled_eps, disabled_ns) = bench_emission();
    println!(
        "event layer: {enabled_eps:.0} events/s enabled, {disabled_ns:.2} ns/call disabled"
    );
    rule(86);
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "kernel", "plain-us", "off-us", "on-us", "off-ovh%", "on-ovh%", "reg-ovh%", "rec-ovh%",
        "events"
    );
    rule(86);

    let (adg, kernels) = fixtures();
    let mut rows = Vec::new();
    for kernel in &kernels {
        let r = bench_kernel(&adg, kernel);
        println!(
            "{:>12} {:>10.1} {:>10.1} {:>10.1} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>7}",
            r.kernel,
            r.plain_us,
            r.disabled_us,
            r.enabled_us,
            r.disabled_overhead_pct(),
            r.enabled_overhead_pct(),
            r.metrics_overhead_pct(),
            r.recorder_overhead_pct(),
            r.events,
        );
        rows.push(r);
    }
    rule(86);

    // Gate on the runtime-weighted mean of the per-kernel median paired
    // ratios: pairing cancels clock drift, the median rejects preemption
    // outliers, and weighting keeps sub-100us kernels from dominating.
    let weight_total: f64 = rows.iter().map(|r| r.plain_us).sum();
    let aggregate_ratio: f64 = rows
        .iter()
        .map(|r| r.disabled_ratio * r.plain_us)
        .sum::<f64>()
        / weight_total.max(1e-9);
    let aggregate_pct = (aggregate_ratio - 1.0) * 100.0;
    println!("aggregate disabled-telemetry overhead: {aggregate_pct:.3}%");

    let json = to_json(&rows, enabled_eps, disabled_ns, aggregate_pct);
    let artifact = Envelope::new("telemetry_overhead")
        .meta_int("reps", u64::from(REPS))
        .meta_num("gate_pct", MAX_DISABLED_OVERHEAD_PCT)
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }

    if aggregate_pct > MAX_DISABLED_OVERHEAD_PCT {
        log(
            Level::Error,
            format!(
                "FAIL: disabled-telemetry overhead {aggregate_pct:.3}% exceeds the \
{MAX_DISABLED_OVERHEAD_PCT}% gate"
            ),
        );
        std::process::exit(1);
    }
    println!("gate passed: disabled telemetry is free");
}
