//! Figure 10 — Compiler versus Manually-Tuned Performance.
//!
//! For each of the five target accelerators (§VII) and its workload set,
//! compile with the modular compiler, then simulate both the compiled
//! version and a manually-tuned variant (peephole control elision + stream
//! fusion + fft-style request peeling). The paper reports the compiler at
//! 80–89% of manual overall, with fft the 2× outlier on REVEL and
//! Triggered Instructions.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig10`

use dsagen_bench::{fig10_pairs, geomean, rule, run_manual, run_workload};

fn main() {
    println!("FIGURE 10: Compiler vs Manual-Tuned Performance (cycles; ratio = manual/compiled)");
    rule(84);
    println!(
        "{:<15} {:<13} {:>11} {:>11} {:>8}  note",
        "Accelerator", "Workload", "Compiled", "Manual", "Ratio"
    );
    rule(84);

    let mut ratios = Vec::new();
    let mut fft_ratios = Vec::new();
    for (name, adg, workloads) in fig10_pairs() {
        for w in &workloads {
            let (compiled, report) = run_workload(&adg, &w.kernel);
            let manual = run_manual(&adg, &compiled);
            let ratio = manual.cycles as f64 / report.cycles.max(1) as f64;
            let note = if w.name == "fft" { "outlier (§VIII-A)" } else { "" };
            println!(
                "{:<15} {:<13} {:>11} {:>11} {:>8.2}  {}",
                name, w.name, report.cycles, manual.cycles, ratio, note
            );
            if w.name == "fft" {
                fft_ratios.push(ratio);
            } else {
                ratios.push(ratio);
            }
        }
    }
    rule(84);
    // ratio = manual_cycles / compiled_cycles = compiler's relative
    // performance (1.0 = parity, <1.0 = compiler slower).
    let gm = geomean(&ratios);
    println!(
        "geomean: compiler achieves {:.0}% of manually-tuned performance (excl. fft)",
        100.0 * gm
    );
    if let Some(fft) = fft_ratios.first() {
        println!(
            "fft on REVEL: compiler at {:.0}% of manual (paper: ~50%, from small-stride scratchpad requests)",
            100.0 * fft
        );
    }
    println!("paper: compiler achieves 89% of manual overall; mean 1.25x manual execution time");
}
