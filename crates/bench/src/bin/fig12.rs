//! Figure 12 — Modular Compilation Impact on Performance.
//!
//! The baseline is a 4×4 mesh of dedicated static PEs with a 64-bit
//! network and 512-bit-wide scratchpad; three features toggle
//! independently: **shared** PEs, **dynamic** scheduling (stream-join),
//! and **indirect** memory (§VIII-A "Modularity"). Each suite's
//! performance is reported relative to the all-off baseline. The paper
//! finds PolyBench flat, DSP loving shared PEs, Sparse loving
//! indirect+dynamic, and the best design enabling everything.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig12`

use dsagen_adg::presets::baseline_4x4;
use dsagen_bench::{geomean, rule, run_workload};
use dsagen_workloads::{suite, Suite};

fn main() {
    // One representative slice per suite keeps 8 hardware configs × all
    // workloads tractable; the slice spans the idioms each suite stresses.
    // (stencil-2d and md exceed the 16 dedicated slots of the 4×4 baseline
    // at any vectorization degree, so the slice uses the kernels that fit.)
    let picks: Vec<(Suite, Vec<&str>)> = vec![
        (Suite::MachSuite, vec!["spmv-ellpack", "stencil-3d"]),
        (Suite::Sparse, vec!["histogram", "join"]),
        (Suite::Dsp, vec!["qr", "centro-fir"]),
        (Suite::PolyBench, vec!["mm", "mvt"]),
    ];

    println!("FIGURE 12: Modular Compilation Impact (speedup vs shared=0,dynamic=0,indirect=0)");
    rule(78);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "shared/dynamic/indirect", "MachSuite", "Sparse", "Dsp", "PolyBench"
    );
    rule(78);

    // Baseline cycles per workload with all features off.
    let mut base_cycles: Vec<Vec<f64>> = Vec::new();
    let base_adg = baseline_4x4(false, false, false);
    for (s, names) in &picks {
        let mut row = Vec::new();
        for w in suite(*s) {
            if names.contains(&w.name) {
                let (_, report) = run_workload(&base_adg, &w.kernel);
                row.push(report.cycles as f64);
            }
        }
        base_cycles.push(row);
    }

    for shared in [false, true] {
        for dynamic in [false, true] {
            for indirect in [false, true] {
                let adg = baseline_4x4(shared, dynamic, indirect);
                let mut cells = Vec::new();
                for ((s, names), base_row) in picks.iter().zip(&base_cycles) {
                    let mut speedups = Vec::new();
                    for (w, base) in suite(*s)
                        .into_iter()
                        .filter(|w| names.contains(&w.name))
                        .zip(base_row)
                    {
                        let (_, report) = run_workload(&adg, &w.kernel);
                        speedups.push(base / report.cycles.max(1) as f64);
                    }
                    cells.push(geomean(&speedups));
                }
                println!(
                    "{:<22} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    format!(
                        "{}/{}/{}",
                        u8::from(shared),
                        u8::from(dynamic),
                        u8::from(indirect)
                    ),
                    cells[0],
                    cells[1],
                    cells[2],
                    cells[3]
                );
            }
        }
    }
    rule(78);
    println!("paper: PolyBench is insensitive; DSP gains from shared PEs; Sparse gains from");
    println!("indirect + dynamic (stream-join); the best design enables all features.");
}
