//! Figure 13 — The Length of Configuration Paths (generated vs ideal).
//!
//! The path generator receives mesh spatial architectures from 2×2 to 5×5
//! PEs under constraints of 3, 6, and 9 configuration paths; the ideal
//! longest path is ⌈n/p⌉ for n configurable nodes. The paper reports a
//! mean 1.4× overhead versus ideal.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig13`

use dsagen_adg::presets::{mesh, MeshConfig};
use dsagen_adg::{OpSet, PeSpec, Scheduling, Sharing};
use dsagen_bench::rule;
use dsagen_hwgen::{generate_config_paths, ConfigPaths};

fn main() {
    println!("FIGURE 13: Configuration-Path Length (generated vs ideal ceil(n/p))");
    rule(74);
    println!(
        "{:<8} {:>7} {:>6}  {:>9} {:>9} {:>9}",
        "mesh", "nodes", "paths", "ideal", "generated", "overhead"
    );
    rule(74);

    let mut overheads = Vec::new();
    for dim in 2..=5usize {
        let pe = PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        );
        let adg = mesh(&MeshConfig::new(format!("{dim}x{dim}"), dim, dim, pe));
        let nodes = adg.nodes().filter(|n| n.kind.is_configurable()).count();
        for paths in [3usize, 6, 9] {
            let cp = generate_config_paths(&adg, paths, 0xF16);
            let ideal = ConfigPaths::ideal(nodes, cp.paths.len());
            let over = cp.longest() as f64 / ideal as f64;
            overheads.push(over);
            println!(
                "{:<8} {:>7} {:>6}  {:>9} {:>9} {:>9.2}",
                format!("{dim}x{dim}"),
                nodes,
                paths,
                ideal,
                cp.longest(),
                over
            );
        }
    }
    rule(74);
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("mean overhead vs ideal: {mean:.2}x");
    println!("paper: the path generator introduces mean 1.4x overhead versus the ideal");
}
