//! dse_timeline — convergence timeline of one instrumented DSE run.
//!
//! Runs a sharded design-space exploration with telemetry enabled, then
//! renders the [`DseTimeline`] convergence report: steps, acceptance,
//! rejection histogram, objective trajectory, schedule-cache effectiveness,
//! and per-shard work/wall-time rows. Writes the same data as a JSON
//! artifact (first CLI argument, default `dse_timeline.json`) and the
//! run's Chrome trace alongside it (`dse_timeline.trace.json`).
//!
//! Deterministic: everything except the wall-time columns depends only on
//! `(seed, shards)`.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin dse_timeline`

use dsagen_adg::presets;
use dsagen_bench::rule;
use dsagen_dse::{DseConfig, DseTimeline, Explorer};
use dsagen_telemetry::{chrome_trace, log, Level, Telemetry};
use dsagen_workloads::{dsp, machsuite, polybench};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dse_timeline.json".to_string());

    let kernels = vec![polybench::mvt(), machsuite::mm(), dsp::fir16()];
    let cfg = DseConfig {
        max_iters: 40,
        patience: 25,
        sched_iters: 80,
        max_unroll: 4,
        shards: 4,
        threads: 4,
        ..DseConfig::default()
    };

    println!(
        "DSE TIMELINE: {} kernels, {} shards, seed {:#x}",
        kernels.len(),
        cfg.shards,
        cfg.seed
    );
    rule(92);

    let tel = Telemetry::in_memory();
    let mut explorer =
        Explorer::new(presets::dse_initial(), &kernels, cfg).with_telemetry(tel.clone());
    let result = explorer.run();
    let timeline = DseTimeline::from_result(&result, explorer.telemetry_snapshot());

    print!("{}", timeline.render());
    rule(92);

    if let Err(e) = std::fs::write(&out_path, timeline.to_json()) {
        log(Level::Error, format!("could not write {out_path}: {e}"));
        std::process::exit(1);
    }
    let trace_path = out_path.replace(".json", ".trace.json");
    let events = tel.events();
    if let Err(e) = std::fs::write(&trace_path, chrome_trace(&events)) {
        log(Level::Error, format!("could not write {trace_path}: {e}"));
        std::process::exit(1);
    }
    println!(
        "wrote {out_path} and {trace_path} ({} events)",
        events.len()
    );
}
