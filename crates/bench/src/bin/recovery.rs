//! recovery — runtime fault-recovery macrobenchmark (MTTR + overhead).
//!
//! For each (preset, workload) pair the kernel is compiled once and a
//! fault-free simulation establishes the baseline cycle count. Two
//! mid-execution fault scenarios then run through the full recovery
//! pipeline (`detect → checkpoint rollback → online repair → verified
//! reprogramming → resume`):
//!
//! * **transient** — a `DeadPe` that arrives one third into the run and
//!   clears after 4096 cycles. Must recover by rollback alone (same
//!   configuration, no repair) with firings identical to the fault-free
//!   run.
//! * **permanent** — the same arrival, but the PE never comes back. Must
//!   recover up the degradation ladder (port rungs → decommission →
//!   degraded-mode reschedule), or fail with a typed
//!   [`dsagen::RecoveryError`] (counted, never a panic).
//!
//! Reported per pair: detection latency in cycles, mean time to repair
//! (MTTR) in cycles, and end-to-end overhead versus the fault-free run;
//! degraded-mode finishes also report the surviving throughput fraction.
//! A machine-readable copy of the table is written as JSON (first CLI
//! argument, default `BENCH_recovery.json`) for the CI artifact upload.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin recovery`

use std::fmt::Write as _;

use dsagen::{compile, recover, CompileOptions};
use dsagen_adg::{presets, Adg};
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_faults::{FaultKind, FaultLifetime, FaultSchedule};
use dsagen_sim::{try_simulate, RecoveryAction, RecoveryPolicy, SimConfig};
use dsagen_telemetry::{log, Level, MetricsRegistry};
use dsagen_workloads::{machsuite, polybench};

/// Fixed seed: every run measures the identical schedules and faults.
const SEED: u64 = 0x5EC0_7E3A;
/// Transient outage length — comfortably above the watchdog bound (64)
/// so detection is guaranteed, short enough that the fault clears before
/// the run ends on every workload below.
const TRANSIENT_CYCLES: u64 = 4096;

struct Row {
    preset: &'static str,
    kernel: String,
    fault_free_cycles: u64,
    /// Transient scenario.
    t_detect: u64,
    t_mttr: f64,
    t_overhead: f64,
    /// Permanent scenario: Some = recovered, None = typed failure.
    p_outcome: Option<PermanentOutcome>,
}

struct PermanentOutcome {
    detect: u64,
    mttr: f64,
    overhead: f64,
    repaired: bool,
    degraded: bool,
    throughput_ratio: f64,
    /// Resolving-rung label of the recovery event (`RecoveryAction::label`).
    rung: String,
    /// Cycles domain-sliced rollback preserved instead of replaying.
    saved: u64,
}

fn fixtures() -> Vec<(&'static str, Adg)> {
    vec![
        ("softbrain", presets::softbrain()),
        ("spu", presets::spu()),
        ("revel", presets::revel()),
    ]
}

fn workloads() -> Vec<dsagen_dfg::Kernel> {
    vec![
        polybench::mvt(),
        polybench::atax(),
        polybench::bicg(),
        machsuite::mm(),
        machsuite::spmv_crs(),
    ]
}

/// A mid-run schedule with one fault of the given lifetime.
fn one_fault(arrival: u64, lifetime: FaultLifetime) -> FaultSchedule {
    FaultSchedule::new(SEED).with(arrival, lifetime, FaultKind::DeadPe)
}

fn bench_one(
    preset: &'static str,
    adg: &Adg,
    kernel: &dsagen_dfg::Kernel,
    metrics: &MetricsRegistry,
) -> Option<Row> {
    let opts = CompileOptions::default();
    let compiled = match compile(adg, kernel, &opts) {
        Ok(c) => c,
        Err(_) => return None, // kernel does not map onto this preset
    };
    let cfg = SimConfig::default();
    let plain = try_simulate(
        adg,
        &compiled.version,
        &compiled.schedule,
        &compiled.eval,
        compiled.config_path_len,
        &cfg,
    )
    .expect("fault-free baseline must simulate");

    let arrival = (plain.cycles / 3).max(1);
    let policy = RecoveryPolicy::default();
    let tel = dsagen_telemetry::Telemetry::disabled().with_metrics(metrics.clone());

    // Transient DeadPe: rollback-only recovery, bit-identical firings.
    let transient = one_fault(arrival, FaultLifetime::Transient { duration: TRANSIENT_CYCLES });
    let rep = recover(adg, &compiled, &cfg, &transient, &policy, &tel)
        .expect("transient mid-run fault must recover");
    assert_eq!(
        rep.report.firings, plain.firings,
        "{preset}/{}: recovered firings must equal fault-free",
        kernel.name
    );
    assert!(
        rep.events
            .iter()
            .all(|e| e.detection_latency <= policy.rt.watchdog_bound),
        "{preset}/{}: blocking fault must be detected within the watchdog bound",
        kernel.name
    );
    let t_detect = rep.events.iter().map(|e| e.detection_latency).max().unwrap_or(0);
    let t_mttr = rep.mttr_cycles();
    let t_overhead = rep.overhead_vs(plain.cycles);

    // Permanent DeadPe: decommission + repair + reprogram, or typed error.
    let permanent = one_fault(arrival, FaultLifetime::Permanent);
    let p_outcome = match recover(adg, &compiled, &cfg, &permanent, &policy, &tel) {
        Ok(rep) => {
            let repaired = rep
                .events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Repaired { .. }));
            Some(PermanentOutcome {
                detect: rep.events.iter().map(|e| e.detection_latency).max().unwrap_or(0),
                mttr: rep.mttr_cycles(),
                overhead: rep.overhead_vs(plain.cycles),
                repaired,
                degraded: rep.degraded,
                throughput_ratio: rep.throughput_ratio.unwrap_or(1.0),
                rung: rep
                    .events
                    .first()
                    .map_or_else(|| "none".to_string(), |e| e.action.label().to_string()),
                saved: rep.replayed_cycles_saved(),
            })
        }
        Err(_typed) => None, // typed failure is an accepted outcome
    };

    Some(Row {
        preset,
        kernel: kernel.name.clone(),
        fault_free_cycles: plain.cycles,
        t_detect,
        t_mttr,
        t_overhead,
        p_outcome,
    })
}

/// Minimal JSON emission (the vendored serde is a stub — format by hand).
fn to_json(rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"seed\": {SEED},\n  \"transient_cycles\": {TRANSIENT_CYCLES},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let perm = match &r.p_outcome {
            Some(p) => format!(
                "{{\"recovered\": true, \"repaired\": {}, \"degraded\": {}, \
\"throughput_ratio\": {:.4}, \"detect_cycles\": {}, \
\"mttr_cycles\": {:.1}, \"overhead\": {:.4}, \"rung\": {:?}, \
\"replayed_saved_cycles\": {}}}",
                p.repaired, p.degraded, p.throughput_ratio, p.detect, p.mttr, p.overhead,
                p.rung, p.saved
            ),
            None => "{\"recovered\": false}".to_string(),
        };
        let _ = writeln!(
            s,
            "    {{\"preset\": {:?}, \"kernel\": {:?}, \"fault_free_cycles\": {}, \
\"transient\": {{\"detect_cycles\": {}, \"mttr_cycles\": {:.1}, \"overhead\": {:.4}}}, \
\"permanent\": {}}}{}",
            r.preset,
            r.kernel,
            r.fault_free_cycles,
            r.t_detect,
            r.t_mttr,
            r.t_overhead,
            perm,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());

    println!("RUNTIME RECOVERY: MTTR and overhead vs fault-free (DeadPe at 1/3 of the run)");
    println!(
        "seed {SEED:#x}, transient outage {TRANSIENT_CYCLES} cycles, permanent = decommission + repair"
    );
    rule(103);
    println!(
        "{:>10} {:>12} {:>10} {:>8} {:>9} {:>9} | {:>17} {:>9} {:>9}",
        "preset", "kernel", "cycles", "t-det", "t-mttr", "t-ovhd", "perm", "p-mttr", "p-ovhd"
    );
    rule(103);

    let mut rows = Vec::new();
    let mut skipped = 0usize;
    // Metrics on, sink off: the sweep's recovery counters ride into the
    // artifact envelope.
    let metrics = MetricsRegistry::enabled();
    for (preset, adg) in fixtures() {
        for kernel in &workloads() {
            match bench_one(preset, &adg, kernel, &metrics) {
                Some(r) => {
                    let (perm, p_mttr, p_ovhd) = match &r.p_outcome {
                        Some(p) => (
                            p.rung.clone(),
                            format!("{:.0}", p.mttr),
                            format!("{:+.1}%", 100.0 * p.overhead),
                        ),
                        None => ("typed-err".to_string(), "-".to_string(), "-".to_string()),
                    };
                    println!(
                        "{:>10} {:>12} {:>10} {:>8} {:>9.0} {:>8.1}% | {:>17} {:>9} {:>9}",
                        r.preset,
                        r.kernel,
                        r.fault_free_cycles,
                        r.t_detect,
                        r.t_mttr,
                        100.0 * r.t_overhead,
                        perm,
                        p_mttr,
                        p_ovhd,
                    );
                    rows.push(r);
                }
                None => skipped += 1,
            }
        }
    }
    rule(103);

    // Sanity contract: every transient fault was detected within the
    // watchdog bound and recovered; permanent faults either repaired or
    // failed typed — the loop above panics otherwise.
    let recovered_perm = rows.iter().filter(|r| r.p_outcome.is_some()).count();
    let max_detect = rows.iter().map(|r| r.t_detect).max().unwrap_or(0);
    let mean_mttr = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.t_mttr).sum::<f64>() / rows.len() as f64
    };
    println!(
        "{} pairs ({} skipped: kernel unmappable) | transient: all recovered, max detect {} cycles, \
mean MTTR {:.0} cycles | permanent: {}/{} recovered, rest failed typed",
        rows.len(),
        skipped,
        max_detect,
        mean_mttr,
        recovered_perm,
        rows.len(),
    );
    assert!(
        rows.len() >= 5,
        "expected at least 5 preset x workload pairs to map, got {}",
        rows.len()
    );

    let json = to_json(&rows);
    let artifact = Envelope::new("recovery")
        .meta_int("seed", SEED)
        .meta_int("transient_cycles", TRANSIENT_CYCLES)
        .meta_int("pairs", rows.len() as u64)
        .metrics(metrics.snapshot())
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }
}
