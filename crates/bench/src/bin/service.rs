//! service — codesign-service latency, load-shedding, and warm-start
//! benchmark.
//!
//! Drives the admission-controlled [`dsagen_service::Service`] through
//! three phases against one on-disk artifact store:
//!
//! 1. **cold** — a fresh (empty) store: every request runs full
//!    stochastic exploration and persists its verified schedules.
//! 2. **warm** — the store is *reopened* (a new handle over the same
//!    directory, simulating a fresh process) and the identical request
//!    set is replayed: the explorer's store tier must now serve hits, so
//!    `warm_start_hit_rate > 0` is a hard acceptance gate.
//! 3. **overload** — one worker, queue depth 1, a burst of submissions:
//!    admission control must shed the overflow with the typed
//!    [`dsagen_service::Rejected::QueueFull`], never block or panic.
//!
//! The artifact (first CLI argument, default `BENCH_service.json`)
//! reports per-phase p50/p99 latency, the shed rate, and the warm-start
//! store-tier hit rate for the `bench_compare` gate and the
//! `bench_trajectory` history.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin service`

use std::fmt::Write as _;

use dsagen_adg::presets;
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_dse::{CacheStats, DseConfig};
use dsagen_service::{CompileRequest, Rejected, Service, ServiceConfig};
use dsagen_store::{ArtifactStore, StoreConfig};
use dsagen_telemetry::{log, Level, MetricsRegistry, Telemetry};
use dsagen_workloads::{suite_kernels, Suite};

/// Fixed seed: both phases replay the identical request set, which is
/// what makes the warm phase's store-tier hits deterministic.
const SEED: u64 = 0x5E47;
/// Distinct request seeds per kernel (requests = kernels × seeds).
const SEEDS_PER_KERNEL: u64 = 2;
/// Burst size for the overload phase.
const BURST: usize = 6;

/// One phase's aggregate measurements.
struct Phase {
    name: &'static str,
    completed: u64,
    latencies_ms: Vec<f64>,
    cache: CacheStats,
}

impl Phase {
    fn p50(&self) -> f64 {
        percentile(&self.latencies_ms, 0.50)
    }
    fn p99(&self) -> f64 {
        percentile(&self.latencies_ms, 0.99)
    }
}

fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_kernels() -> Vec<dsagen_dfg::Kernel> {
    let wanted = ["mm", "centro-fir"];
    let mut out = Vec::new();
    for k in suite_kernels(Suite::MachSuite)
        .into_iter()
        .chain(suite_kernels(Suite::Dsp))
    {
        if wanted.contains(&k.name.as_str()) {
            out.push(k);
        }
    }
    assert_eq!(out.len(), wanted.len(), "benchmark kernels missing");
    out
}

fn request(kernel: &dsagen_dfg::Kernel, seed: u64) -> CompileRequest {
    CompileRequest {
        tenant: format!("{}-{seed:x}", kernel.name),
        adg: presets::dse_initial(),
        kernels: vec![kernel.clone()],
        dse: DseConfig {
            seed,
            max_iters: 3,
            patience: 3,
            sched_iters: 40,
            max_unroll: 1,
            shards: 1,
            threads: 1,
            ..DseConfig::default()
        },
        deadline_ms: None,
        cancel: None,
    }
}

/// Runs one full request set through a fresh service over `store`.
fn run_phase(
    name: &'static str,
    kernels: &[dsagen_dfg::Kernel],
    store: &ArtifactStore,
    tel: &Telemetry,
) -> Phase {
    let svc = Service::start(
        ServiceConfig {
            workers: 2,
            queue_depth: 8,
            default_deadline_ms: None,
        },
        Some(store.clone()),
        tel.clone(),
    );
    let mut tickets = Vec::new();
    for kernel in kernels {
        for s in 0..SEEDS_PER_KERNEL {
            let req = request(kernel, SEED ^ (s << 8));
            tickets.push(svc.submit(req).expect("bench request admitted"));
        }
    }
    let mut latencies_ms = Vec::new();
    let mut cache = CacheStats::default();
    for t in tickets {
        let outcome = t.wait().expect("worker replies");
        assert!(outcome.stopped.is_none(), "no deadline/cancel in bench");
        latencies_ms.push(outcome.latency_ms);
        cache.absorb(&outcome.cache);
    }
    let report = svc.drain();
    Phase {
        name,
        completed: report.completed,
        latencies_ms,
        cache,
    }
}

/// Overload probe: one worker, queue depth 1, a burst of submissions.
/// Returns (admitted, shed) — shed must be typed `QueueFull`, and at
/// least one submission must survive admission.
fn run_overload(kernels: &[dsagen_dfg::Kernel], store: &ArtifactStore, tel: &Telemetry) -> (u64, u64) {
    let svc = Service::start(
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            default_deadline_ms: None,
        },
        Some(store.clone()),
        tel.clone(),
    );
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for i in 0..BURST {
        match svc.submit(request(&kernels[i % kernels.len()], SEED)) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QueueFull { .. }) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    for t in tickets {
        let _ = t.wait().expect("admitted burst request completes");
    }
    let report = svc.drain();
    assert_eq!(report.shed, shed, "service accounting matches caller view");
    (report.admitted, shed)
}

fn to_json(phases: &[Phase], admitted: u64, shed: u64, quarantined: u64) -> String {
    let warm_rate = phases
        .iter()
        .find(|p| p.name == "warm")
        .map_or(0.0, |p| p.cache.store_hit_rate());
    let total: u64 = phases.iter().map(|p| p.completed).sum();
    let burst = admitted + shed;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"completed\": {total},");
    let _ = writeln!(s, "  \"warm_start_hit_rate\": {warm_rate:.4},");
    let _ = writeln!(s, "  \"quarantined\": {quarantined},");
    let _ = writeln!(
        s,
        "  \"shed\": {shed}, \"burst\": {burst}, \"shed_rate\": {:.4},",
        shed as f64 / (burst as f64).max(1.0)
    );
    for (i, p) in phases.iter().enumerate() {
        let _ = writeln!(
            s,
            "  \"{}\": {{\"completed\": {}, \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
\"store_hits\": {}, \"store_hit_rate\": {:.4}, \"lookups\": {}}}{}",
            p.name,
            p.completed,
            p.p50(),
            p.p99(),
            p.cache.store_hits,
            p.cache.store_hit_rate(),
            p.cache.lookups(),
            if i + 1 < phases.len() { "," } else { "" },
        );
    }
    s.push_str("}\n");
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let kernels = bench_kernels();

    let dir = std::env::temp_dir().join(format!("dsagen-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reg = MetricsRegistry::enabled();
    let tel = Telemetry::disabled().with_metrics(reg.clone());

    println!("CODESIGN SERVICE: admission control, latency, warm start");
    println!(
        "store {} | kernels: {}",
        dir.display(),
        kernels
            .iter()
            .map(|k| k.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    rule(78);

    // Phase 1: cold store — full exploration, schedules persisted.
    let store = ArtifactStore::open(&dir, StoreConfig::default(), tel.clone())
        .expect("open artifact store");
    let cold = run_phase("cold", &kernels, &store, &tel);
    let persisted = store.len();

    // Phase 2: fresh handle over the same directory — a new process
    // warm-starting from disk.
    let store = ArtifactStore::open(&dir, StoreConfig::default(), tel.clone())
        .expect("reopen artifact store");
    let warm = run_phase("warm", &kernels, &store, &tel);

    // Phase 3: overload — typed shedding under a burst.
    let (admitted, shed) = run_overload(&kernels, &store, &tel);
    let quarantined = store.stats().quarantined;

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>11} {:>9}",
        "phase", "completed", "p50 ms", "p99 ms", "store-hits", "hit-rate"
    );
    for p in [&cold, &warm] {
        println!(
            "{:>6} {:>10} {:>12.1} {:>12.1} {:>11} {:>8.1}%",
            p.name,
            p.completed,
            p.p50(),
            p.p99(),
            p.cache.store_hits,
            100.0 * p.cache.store_hit_rate(),
        );
    }
    rule(78);
    println!(
        "persisted {persisted} artifact(s) | overload: {admitted} admitted, {shed} shed \
(typed QueueFull) | quarantined {quarantined}"
    );
    assert!(persisted > 0, "cold phase must persist artifacts");
    assert!(
        warm.cache.store_hits > 0,
        "warm phase must hit the store tier (got 0 of {} lookups)",
        warm.cache.lookups()
    );
    assert!(shed > 0, "overload burst must shed at least one request");

    let json = to_json(&[cold, warm], admitted, shed, quarantined);
    let artifact = Envelope::new("service")
        .meta_int("seed", SEED)
        .meta_int("burst", BURST as u64)
        .metrics(reg.snapshot())
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
