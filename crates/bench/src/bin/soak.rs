//! soak — fault-storm soak macrobenchmark for the degradation ladder.
//!
//! Drives every (preset, workload, seed) triple through a seeded
//! multi-fault storm ([`FaultSchedule::storm`]: bursts of correlated
//! arrivals with escalating permanence, port-level and node-level kinds
//! mixed) and the full `detect → rollback → ladder repair → degraded
//! reschedule → resume` pipeline. The contract the binary enforces —
//! exiting nonzero on violation, so CI can gate on it:
//!
//! * **Zero panics, zero aborts.** Every storm terminates in a typed
//!   [`RecoveryOutcome`]; a [`RecoveryError`] is counted and fails the
//!   run (the ladder must always find a rung that serves).
//! * **Monotonic degradation.** For one pair per preset, throughput over
//!   growing storm prefixes never improves beyond jitter tolerance.
//! * **Bit-identical replay.** One pair per preset re-runs and must
//!   reproduce the identical outcome.
//!
//! Reported per triple: storm size, recovery events, max detection
//! latency, MTTR, replay cycles saved by domain-sliced rollback, and the
//! surviving throughput fraction — plus the resolving-rung histogram per
//! triple and for the whole sweep (how often each ladder rung, including
//! the new partial-replace rung and the last-resort full reschedule,
//! actually resolved a fault) and recovery counts per afflicted domain.
//! A machine-readable copy (per-preset MTTR, degraded-throughput ratio,
//! storms survived, rung histogram) is written as JSON (first CLI
//! argument, default `BENCH_soak.json`) for the CI artifact upload.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin soak`

use std::fmt::Write as _;

use dsagen::{compile, recover_with_degradation, CompileOptions};
use dsagen_adg::{presets, Adg};
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_faults::{FaultSchedule, StormConfig};
use dsagen_sim::{try_simulate, RecoveryPolicy, SimConfig};
use dsagen_telemetry::{log, Level, MetricsRegistry};
use dsagen_workloads::{machsuite, polybench};

/// Storm seeds. `DSAGEN_SOAK_SEED=<u64>` narrows the sweep to a single
/// seed so CI can shard storms across jobs.
fn seeds() -> Vec<u64> {
    match std::env::var("DSAGEN_SOAK_SEED") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(v) => vec![v],
            Err(_) => vec![0x50AC, 77],
        },
        Err(_) => vec![0x50AC, 77],
    }
}

/// Throughput over a growing storm prefix may not improve past this
/// tolerance (repair is a stochastic search, so small jitter is fair).
const MONOTONIC_TOLERANCE: f64 = 0.10;

struct Row {
    preset: &'static str,
    kernel: String,
    seed: u64,
    storm_len: usize,
    events: usize,
    max_detect: u64,
    mttr: f64,
    degraded: bool,
    throughput_ratio: f64,
    /// How many recoveries resolved at each ladder rung
    /// (`RecoveryAction::label` keys; `full-reschedule` = degraded rung).
    rungs: std::collections::BTreeMap<&'static str, usize>,
    /// Recovery events per afflicted domain (`"none"` = idle-hardware
    /// victims).
    by_domain: std::collections::BTreeMap<String, usize>,
    /// Cycles domain-sliced rollbacks preserved instead of replaying.
    saved: u64,
}

fn fixtures() -> Vec<(&'static str, Adg)> {
    vec![
        ("softbrain", presets::softbrain()),
        ("spu", presets::spu()),
        ("revel", presets::revel()),
    ]
}

fn workloads() -> Vec<dsagen_dfg::Kernel> {
    vec![
        polybench::mvt(),
        polybench::atax(),
        polybench::bicg(),
        machsuite::mm(),
        machsuite::spmv_crs(),
        // The concurrent two-stage pipeline workload: its live stages
        // partition into separate recovery domains, so domain-sliced
        // rollback engages and `replayed_saved_cycles` is non-zero.
        polybench::pipe_split(),
    ]
}

/// A storm sized to the fault-free run so every burst lands mid-flight.
fn storm_for(seed: u64, horizon: u64) -> FaultSchedule {
    FaultSchedule::storm(
        seed,
        &StormConfig {
            horizon: horizon.max(256),
            ..StormConfig::default()
        },
    )
}

struct PresetStats {
    storms: usize,
    survived: usize,
    degraded: usize,
    mttr_sum: f64,
    ratio_sum: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_soak.json".to_string());
    let seeds = seeds();
    let policy = RecoveryPolicy::default();
    let cfg = SimConfig::default();
    // Metrics on, sink off: the sweep's recovery counters ride into the
    // artifact envelope without per-event allocation.
    let tel = dsagen_telemetry::Telemetry::disabled().with_metrics(MetricsRegistry::enabled());

    println!("FAULT-STORM SOAK: degradation ladder under seeded multi-fault storms");
    println!(
        "seeds {:?}, storm = {} bursts x {} faults, escalating permanence, port faults on",
        seeds,
        StormConfig::default().bursts,
        StormConfig::default().burst_size,
    );
    rule(108);
    println!(
        "{:>10} {:>10} {:>10} {:>6} {:>7} {:>8} {:>9} {:>7} {:>10} {:>7}",
        "preset", "kernel", "seed", "storm", "events", "max-det", "mttr", "saved", "outcome",
        "ratio"
    );
    rule(108);

    let mut rows: Vec<Row> = Vec::new();
    let mut aborted = 0usize;
    let mut skipped = 0usize;
    let mut replay_divergences = 0usize;
    let mut monotonic_violations = 0usize;

    for (preset, adg) in fixtures() {
        let mut checked_replay = false;
        for kernel in &workloads() {
            let opts = CompileOptions::default();
            let Ok(compiled) = compile(&adg, kernel, &opts) else {
                skipped += 1;
                continue;
            };
            let Ok(plain) = try_simulate(
                &adg,
                &compiled.version,
                &compiled.schedule,
                &compiled.eval,
                compiled.config_path_len,
                &cfg,
            ) else {
                skipped += 1;
                continue;
            };
            for &seed in &seeds {
                let storm = storm_for(seed, plain.cycles);
                let run = || {
                    recover_with_degradation(&adg, &compiled, &cfg, &storm, &policy, &tel)
                };
                let out = match run() {
                    Ok(out) => out,
                    Err(e) => {
                        log(
                            Level::Error,
                            format!("{preset}/{} seed {seed:#x}: ABORT {e}", kernel.name),
                        );
                        aborted += 1;
                        continue;
                    }
                };
                // Replay gate: one triple per preset re-runs bit-identically.
                if !checked_replay {
                    checked_replay = true;
                    match run() {
                        Ok(second) if second == out => {}
                        _ => {
                            log(
                                Level::Error,
                                format!(
                                    "{preset}/{} seed {seed:#x}: replay diverged",
                                    kernel.name
                                ),
                            );
                            replay_divergences += 1;
                        }
                    }
                }
                let report = out.report();
                let total: u64 = report.report.firings.iter().sum();
                let expected: u64 = plain.firings.iter().sum();
                assert_eq!(
                    total, expected,
                    "{preset}/{} seed {seed:#x}: storm run lost work",
                    kernel.name
                );
                let mut by_domain: std::collections::BTreeMap<String, usize> =
                    std::collections::BTreeMap::new();
                for e in &report.events {
                    let key = e
                        .domain
                        .map_or_else(|| "none".to_string(), |d| d.to_string());
                    *by_domain.entry(key).or_insert(0) += 1;
                }
                let row = Row {
                    preset,
                    kernel: kernel.name.clone(),
                    seed,
                    storm_len: storm.len(),
                    events: report.events.len(),
                    max_detect: report
                        .events
                        .iter()
                        .map(|e| e.detection_latency)
                        .max()
                        .unwrap_or(0),
                    mttr: report.mttr_cycles(),
                    degraded: out.is_degraded(),
                    throughput_ratio: out.throughput_ratio(),
                    rungs: report.rung_histogram(),
                    by_domain,
                    saved: report.replayed_cycles_saved(),
                };
                println!(
                    "{:>10} {:>10} {:>#10x} {:>6} {:>7} {:>8} {:>9.0} {:>7} {:>10} {:>6.1}%",
                    row.preset,
                    row.kernel,
                    row.seed,
                    row.storm_len,
                    row.events,
                    row.max_detect,
                    row.mttr,
                    row.saved,
                    if row.degraded { "degraded" } else { "recovered" },
                    100.0 * row.throughput_ratio,
                );
                rows.push(row);
            }
        }

        // Monotonicity gate: the first mapping workload on this preset,
        // swept over growing prefixes of the first seed's storm.
        if let Some(kernel) = workloads().into_iter().find_map(|k| {
            compile(&adg, &k, &CompileOptions::default()).ok().map(|c| (k, c))
        }) {
            let (k, compiled) = kernel;
            if let Ok(plain) = try_simulate(
                &adg,
                &compiled.version,
                &compiled.schedule,
                &compiled.eval,
                compiled.config_path_len,
                &cfg,
            ) {
                let storm = storm_for(seeds[0], plain.cycles);
                let mut prev = f64::INFINITY;
                for i in 0..=storm.len() {
                    let prefix = storm.prefix(i);
                    match recover_with_degradation(
                        &adg, &compiled, &cfg, &prefix, &policy, &tel,
                    ) {
                        Ok(out) => {
                            let ratio = out.throughput_ratio();
                            if ratio > prev + MONOTONIC_TOLERANCE {
                                log(
                                    Level::Error,
                                    format!(
                                        "{preset}/{}: prefix {i} ratio {ratio:.3} improved \
past {prev:.3}",
                                        k.name
                                    ),
                                );
                                monotonic_violations += 1;
                            }
                            prev = prev.min(ratio);
                        }
                        Err(e) => {
                            log(
                                Level::Error,
                                format!("{preset}/{} prefix {i}: ABORT {e}", k.name),
                            );
                            aborted += 1;
                        }
                    }
                }
            }
        }
    }
    rule(108);

    let mut stats: Vec<(&'static str, PresetStats)> = Vec::new();
    for r in &rows {
        let entry = match stats.iter_mut().find(|(p, _)| *p == r.preset) {
            Some((_, s)) => s,
            None => {
                stats.push((
                    r.preset,
                    PresetStats {
                        storms: 0,
                        survived: 0,
                        degraded: 0,
                        mttr_sum: 0.0,
                        ratio_sum: 0.0,
                    },
                ));
                &mut stats.last_mut().expect("just pushed").1
            }
        };
        entry.storms += 1;
        entry.survived += 1; // every row terminated typed-Ok
        entry.degraded += usize::from(r.degraded);
        entry.mttr_sum += r.mttr;
        entry.ratio_sum += r.throughput_ratio;
    }
    for (preset, s) in &stats {
        println!(
            "{preset}: {}/{} storms survived, {} degraded, mean MTTR {:.0} cycles, \
mean throughput ratio {:.3}",
            s.survived,
            s.storms,
            s.degraded,
            s.mttr_sum / s.storms.max(1) as f64,
            s.ratio_sum / s.storms.max(1) as f64,
        );
    }
    // Rung histogram across every recovery event in the sweep: the
    // blast-radius headline is how rarely the last-resort whole-kernel
    // reschedule fires.
    let mut rung_histogram: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    let mut saved_total: u64 = 0;
    for r in &rows {
        for (label, n) in &r.rungs {
            *rung_histogram.entry(label).or_insert(0) += n;
        }
        saved_total += r.saved;
    }
    let full_reschedules = rung_histogram.get("full-reschedule").copied().unwrap_or(0);
    let rung_line = rung_histogram
        .iter()
        .map(|(label, n)| format!("{label}={n}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "rungs: {} | {} full-kernel reschedules | {} replay cycles saved by scoped rollback",
        if rung_line.is_empty() { "none" } else { &rung_line },
        full_reschedules,
        saved_total,
    );
    println!(
        "{} triples ({} skipped: unmappable) | {} aborts | {} replay divergences | \
{} monotonicity violations",
        rows.len(),
        skipped,
        aborted,
        replay_divergences,
        monotonic_violations,
    );

    // JSON artifact: per-preset MTTR, degraded-throughput ratio, storms
    // survived (the vendored serde is a stub — format by hand).
    let mut json = String::new();
    let _ = write!(json, "{{\n  \"seeds\": [");
    for (i, s) in seeds.iter().enumerate() {
        let _ = write!(json, "{}{}", s, if i + 1 < seeds.len() { ", " } else { "" });
    }
    let _ = write!(
        json,
        "],\n  \"aborts\": {aborted},\n  \"replay_divergences\": {replay_divergences},\n  \
\"monotonicity_violations\": {monotonic_violations},\n  \
\"full_reschedules\": {full_reschedules},\n  \
\"replayed_saved_cycles\": {saved_total},\n  \"rung_histogram\": {{"
    );
    for (i, (label, n)) in rung_histogram.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{label}\": {n}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("},\n  \"presets\": [\n");
    for (i, (preset, s)) in stats.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"preset\": {:?}, \"storms\": {}, \"survived\": {}, \"degraded\": {}, \
\"mean_mttr_cycles\": {:.1}, \"mean_throughput_ratio\": {:.4}}}{}",
            preset,
            s.storms,
            s.survived,
            s.degraded,
            s.mttr_sum / s.storms.max(1) as f64,
            s.ratio_sum / s.storms.max(1) as f64,
            if i + 1 < stats.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rungs = r
            .rungs
            .iter()
            .map(|(label, n)| format!("\"{label}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let by_domain = r
            .by_domain
            .iter()
            .map(|(d, n)| format!("\"{d}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"preset\": {:?}, \"kernel\": {:?}, \"seed\": {}, \"storm_len\": {}, \
\"events\": {}, \"max_detect_cycles\": {}, \"mttr_cycles\": {:.1}, \"degraded\": {}, \
\"throughput_ratio\": {:.4}, \"replayed_saved_cycles\": {}, \"rungs\": {{{rungs}}}, \
\"events_by_domain\": {{{by_domain}}}}}{}",
            r.preset,
            r.kernel,
            r.seed,
            r.storm_len,
            r.events,
            r.max_detect,
            r.mttr,
            r.degraded,
            r.throughput_ratio,
            r.saved,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    let seed_set = seeds
        .iter()
        .map(|s| format!("{s:#x}"))
        .collect::<Vec<_>>()
        .join(",");
    let artifact = Envelope::new("soak")
        .meta("seed_set", &seed_set)
        .meta_int("triples", rows.len() as u64)
        .metrics(tel.metrics().snapshot())
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }

    assert!(
        rows.len() >= 10,
        "expected at least 10 storm triples to map, got {}",
        rows.len()
    );
    assert_eq!(aborted, 0, "storms must never abort while a rung can serve");
    assert_eq!(replay_divergences, 0, "storm replay must be bit-identical");
    assert_eq!(
        monotonic_violations, 0,
        "degradation must be monotonic over storm prefixes"
    );
}
