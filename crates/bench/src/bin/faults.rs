//! Fault ablation — Schedule Repair versus Re-Mapping under injected
//! hardware faults (companion to Figure 11).
//!
//! For each fault severity (number of random faults injected into the
//! Softbrain preset) and several fault seeds, a previously legal schedule
//! is recovered in two ways under the same tight iteration budget:
//!
//! * **repair** — `repair_with_escalation` warm-starts from the surviving
//!   placements of the pre-fault schedule (§V-A);
//! * **re-map** — `schedule` rebuilds the mapping from scratch.
//!
//! Reported per severity: how many faults actually applied (impossible
//! faults are skipped, not silently dropped), the fraction of runs each
//! strategy recovers a legal schedule, the mean fraction of surviving
//! placements the repair keeps, and mean scheduler iterations spent.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin faults`

use dsagen_adg::presets;
use dsagen_bench::rule;
use dsagen_dfg::{compile_kernel, TransformConfig};
use dsagen_faults::{inject, FaultPlan};
use dsagen_scheduler::{
    repair_with_escalation, schedule, Schedule, SchedulerConfig,
};

/// Seeds per severity level; more seeds smooth the recovery-rate estimate.
const SEEDS: u64 = 10;
/// Tight per-attempt budget: repair warm-starts and finishes easily, while
/// cold re-mapping must rediscover the full mapping within the same budget.
const BUDGET: u32 = 8;
/// Escalation attempts for repair (budget doubles per attempt).
const ATTEMPTS: u32 = 3;

fn shared_placements(a: &Schedule, b: &Schedule) -> usize {
    a.placement
        .iter()
        .zip(&b.placement)
        .filter(|(x, y)| x.is_some() && x == y)
        .count()
}

fn main() {
    let adg = presets::softbrain();
    let kernel = dsagen_workloads::suite_kernels(dsagen_workloads::Suite::MachSuite)
        .into_iter()
        .find(|k| k.name == "mm")
        .unwrap_or_else(|| panic!("MachSuite is missing the mm kernel"));
    // Unroll 4 makes the mapping resource-tight on softbrain, putting the
    // scheduler in the scarcity regime where §V-A claims repair wins.
    let ck = compile_kernel(
        &kernel,
        &TransformConfig {
            unroll: 4,
            ..TransformConfig::fallback()
        },
        &adg.features(),
    )
    .unwrap_or_else(|e| panic!("mm fails to compile for softbrain: {e}"));

    let cfg = SchedulerConfig {
        max_iters: BUDGET,
        patience: BUDGET,
        ..SchedulerConfig::default()
    };
    let baseline = schedule(&adg, &ck, &SchedulerConfig::default());
    assert!(baseline.is_legal(), "healthy softbrain must schedule mm");

    println!("FAULT ABLATION: repair vs re-mapping under injected faults (mm on softbrain)");
    println!(
        "{} fault seeds per severity, {BUDGET}-iteration budget, {ATTEMPTS} repair escalations",
        SEEDS
    );
    rule(78);
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "faults", "applied", "repair-ok", "re-map-ok", "reuse", "rep-iters", "map-iters"
    );
    rule(78);

    for severity in [1usize, 2, 4, 8, 16, 24] {
        let mut applied_total = 0usize;
        let mut repair_ok = 0u32;
        let mut remap_ok = 0u32;
        let mut reuse_sum = 0.0f64;
        let mut reuse_n = 0u32;
        let mut rep_iters = 0u64;
        let mut map_iters = 0u64;

        for seed in 0..SEEDS {
            let plan = FaultPlan::random(seed, severity);
            let (faulty, report) = inject(&adg, &plan);
            applied_total += report.applied.len();

            // Placements that survive the faults at all.
            let surviving = baseline
                .schedule
                .placement
                .iter()
                .flatten()
                .filter(|n| faulty.node(**n).is_some())
                .count();

            let repaired =
                repair_with_escalation(&faulty, &ck, &baseline.schedule, &cfg, ATTEMPTS);
            rep_iters += u64::from(repaired.iterations);
            if repaired.is_legal() {
                repair_ok += 1;
                if surviving > 0 {
                    let kept = shared_placements(&repaired.schedule, &baseline.schedule);
                    reuse_sum += kept as f64 / surviving as f64;
                    reuse_n += 1;
                }
            }

            let remapped = schedule(&faulty, &ck, &cfg);
            map_iters += u64::from(remapped.iterations);
            if remapped.is_legal() {
                remap_ok += 1;
            }
        }

        let pct = |ok: u32| 100.0 * f64::from(ok) / SEEDS as f64;
        let reuse = if reuse_n > 0 {
            format!("{:>11.0}%", 100.0 * reuse_sum / f64::from(reuse_n))
        } else {
            format!("{:>12}", "-")
        };
        println!(
            "{:>6} {:>8.1} {:>11.0}% {:>11.0}% {} {:>10.1} {:>10.1}",
            severity,
            applied_total as f64 / SEEDS as f64,
            pct(repair_ok),
            pct(remap_ok),
            reuse,
            rep_iters as f64 / SEEDS as f64,
            map_iters as f64 / SEEDS as f64,
        );
    }
    rule(78);
    println!("repair recovers from faults inside a budget where cold re-mapping struggles,");
    println!("while reusing most surviving placements — the §V-A repair argument under faults.");
}
