//! bench_trajectory — cross-PR bench trajectory appender and schema gate.
//!
//! Reads every `BENCH_*.json` artifact (paths from CLI arguments, or the
//! current directory scanned when none are given) and appends one JSONL
//! row per artifact to `results/trajectory.jsonl`: the bench name, the
//! envelope schema version, and a small set of key *deterministic*
//! metrics per artifact kind. Committed alongside the baselines, the file
//! accumulates one generation per PR — the long-run trajectory CI plots
//! and gates against.
//!
//! Two failure modes (exit 1), so the CI trajectory job is a real gate:
//!
//! * **Schema regression** — an artifact's envelope `schema_version` is
//!   lower than the last recorded row for the same bench (a bench that
//!   silently dropped back to a bare pre-envelope document counts as
//!   version 0).
//! * **Unreadable artifact** — a named `BENCH_*.json` that fails to
//!   parse.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin bench_trajectory`
//! `DSAGEN_TRAJECTORY=<path>` overrides the output file.

use std::fmt::Write as _;
use std::process::ExitCode;

use dsagen_bench::envelope::{bench_name, payload};
use dsagen_bench::json::{parse, JsonValue};
use dsagen_telemetry::{escape_json, log, Level};

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// Key deterministic metrics per artifact kind, as `"key": value` JSON
/// fragments. Wall-clock metrics are deliberately excluded — the
/// trajectory tracks code properties, not runner speed.
fn key_metrics(kind: &str, body: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |label: &str, v: Option<f64>| {
        if let Some(v) = v {
            out.push((label.to_string(), v));
        }
    };
    match kind {
        "soak" => {
            push("aborts", num(body, "aborts"));
            push("replay_divergences", num(body, "replay_divergences"));
            push("full_reschedules", num(body, "full_reschedules"));
            push("replayed_saved_cycles", num(body, "replayed_saved_cycles"));
            push(
                "rows",
                body.get("rows").and_then(JsonValue::as_array).map(|r| r.len() as f64),
            );
        }
        "recovery" => {
            push(
                "pairs",
                body.get("rows").and_then(JsonValue::as_array).map(|r| r.len() as f64),
            );
            let recovered = body
                .get("rows")
                .and_then(JsonValue::as_array)
                .map(|rows| {
                    rows.iter()
                        .filter(|r| {
                            r.get("permanent")
                                .and_then(|p| p.get("recovered"))
                                .and_then(JsonValue::as_bool)
                                == Some(true)
                        })
                        .count() as f64
                });
            push("permanent_recovered", recovered);
        }
        "dse_parallel" => {
            if let Some(runs) = body.get("runs").and_then(JsonValue::as_array) {
                if let Some(base) = runs.first() {
                    push("best_objective", num(base, "best_objective"));
                    push("sched_invocations", num(base, "sched_invocations"));
                    push(
                        "cache_hit_rate",
                        base.get("cache").and_then(|c| num(c, "hit_rate")),
                    );
                }
            }
        }
        "config_integrity" => {
            if let Some(rows) = body.get("rows").and_then(JsonValue::as_array) {
                push("rows", Some(rows.len() as f64));
                let max_attempts = rows
                    .iter()
                    .filter_map(|r| num(r, "recovery_attempts"))
                    .fold(0.0f64, f64::max);
                push("max_recovery_attempts", Some(max_attempts));
            }
        }
        "telemetry_overhead" => {
            push(
                "aggregate_disabled_overhead_pct",
                num(body, "aggregate_disabled_overhead_pct"),
            );
            push("gate_pct", num(body, "gate_pct"));
        }
        "profile" => {
            push("named_coverage_pct", num(body, "named_coverage_pct"));
            push("path_search_pct", num(body, "path_search_pct"));
        }
        "service" => {
            // p99 latency is machine-dependent but its *trajectory* across
            // PRs on the same CI runner class is the latency history the
            // issue asks to track; the hit rate and counts are code
            // properties.
            push("completed", num(body, "completed"));
            push("warm_start_hit_rate", num(body, "warm_start_hit_rate"));
            push(
                "warm_p99_latency_ms",
                body.get("warm").and_then(|w| num(w, "p99_latency_ms")),
            );
            push("shed", num(body, "shed"));
            push("quarantined", num(body, "quarantined"));
        }
        _ => {}
    }
    out
}

/// Infers the bench kind from the artifact path (`BENCH_soak.json` →
/// `soak`) when the envelope carries no name.
fn kind_from_path(path: &str) -> Option<String> {
    let file = std::path::Path::new(path).file_name()?.to_str()?;
    let stem = file.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    Some(stem.to_string())
}

/// Last recorded `schema_version` per bench in the existing trajectory.
fn last_versions(text: &str) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(doc) = parse(line) else { continue };
        let Some(bench) = doc.get("bench").and_then(JsonValue::as_str) else {
            continue;
        };
        let version = num(&doc, "schema_version").unwrap_or(0.0) as u64;
        match out.iter_mut().find(|(b, _)| b == bench) {
            Some((_, v)) => *v = version,
            None => out.push((bench.to_string(), version)),
        }
    }
    out
}

fn main() -> ExitCode {
    let out_path = std::env::var("DSAGEN_TRAJECTORY")
        .unwrap_or_else(|_| "results/trajectory.jsonl".to_string());
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        // No explicit artifacts: scan the working directory.
        if let Ok(dir) = std::fs::read_dir(".") {
            for entry in dir.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    paths.push(name);
                }
            }
        }
        paths.sort();
    }
    if paths.is_empty() {
        log(Level::Error, "bench_trajectory: no BENCH_*.json artifacts found");
        return ExitCode::from(2);
    }

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let floor = last_versions(&previous);

    let mut rows = String::new();
    let mut regressions = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                log(Level::Error, format!("bench_trajectory: {path}: {e}"));
                return ExitCode::FAILURE;
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                log(Level::Error, format!("bench_trajectory: {path}: {e}"));
                return ExitCode::FAILURE;
            }
        };
        let bench = bench_name(&doc)
            .map(str::to_string)
            .or_else(|| kind_from_path(path))
            .unwrap_or_else(|| "unknown".to_string());
        let version = num(&doc, "schema_version").unwrap_or(0.0) as u64;
        if let Some((_, last)) = floor.iter().find(|(b, _)| *b == bench) {
            if version < *last {
                log(
                    Level::Error,
                    format!(
                        "bench_trajectory: {bench} schema regressed {last} -> {version} \
({path} lost its envelope?)"
                    ),
                );
                regressions += 1;
            }
        }
        let body = payload(&doc);
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"{}\", \"schema_version\": {version}",
            escape_json(&bench)
        );
        for (key, value) in key_metrics(&bench, body) {
            let _ = write!(row, ", \"{}\": {value}", escape_json(&key));
        }
        row.push('}');
        println!("{row}");
        rows.push_str(&row);
        rows.push('\n');
    }

    if regressions > 0 {
        log(
            Level::Error,
            format!("bench_trajectory: {regressions} schema regression(s) — nothing appended"),
        );
        return ExitCode::FAILURE;
    }

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            log(Level::Error, format!("bench_trajectory: mkdir {}: {e}", parent.display()));
            return ExitCode::FAILURE;
        }
    }
    let mut combined = previous;
    combined.push_str(&rows);
    match std::fs::write(&out_path, &combined) {
        Ok(()) => {
            println!(
                "appended {} row(s) to {out_path} ({} total)",
                paths.len(),
                combined.lines().filter(|l| !l.trim().is_empty()).count()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            log(Level::Error, format!("bench_trajectory: write {out_path}: {e}"));
            ExitCode::FAILURE
        }
    }
}
