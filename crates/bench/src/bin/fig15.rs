//! Figure 15 — Model Validation and Quality of the Generated Hardware.
//!
//! Three parts, as in the paper:
//!  (a) power/area model validation: regression estimate ("Est.") versus
//!      full-fabric synthesis ("Synth") versus technology-scaled prior
//!      publications ("Scaled") — the estimate lands 4–7% below synthesis;
//!  (b) generated hardware versus prior accelerators: perf²/mm² of the
//!      DSE designs against Softbrain/SPU (mean 1.3×) and area/power
//!      versus the scaled DSAs DianNao and SCNN;
//!  (c) performance-model validation: model cycles versus cycle-level
//!      simulation (paper: mean 7% error, max 30% on stencil-3d).
//!
//! Run with: `cargo run --release -p dsagen-bench --bin fig15`

use dsagen_adg::{presets, Adg};
use dsagen_bench::{geomean, harness_opts, rule};
use dsagen_dse::{explore, DseConfig};
use dsagen_model::{scaled, synthesize_adg, AreaPowerModel, HwCost};
use dsagen_sim::{simulate, SimConfig};
use dsagen_workloads::{suite_kernels, Suite};

fn dse(name: &str, kernels: &[dsagen_dfg::Kernel], seed: u64) -> Adg {
    let cfg = DseConfig {
        seed,
        max_iters: 140,
        patience: 70,
        sched_iters: 200,
        max_unroll: 4,
        ..DseConfig::default()
    };
    let mut adg = explore(presets::dse_initial(), kernels, cfg).best_adg;
    adg.set_name(name);
    adg
}

/// Geomean modeled performance (IPC) of `kernels` on `adg`.
fn perf_on(adg: &Adg, kernels: &[dsagen_dfg::Kernel]) -> f64 {
    let perfs: Vec<f64> = kernels
        .iter()
        .filter_map(|k| dsagen::compile(adg, k, &harness_opts()).ok())
        .map(|c| c.perf.ipc)
        .collect();
    geomean(&perfs)
}

fn print_cost_row(name: &str, est: HwCost, synth: HwCost, scaled: Option<HwCost>) {
    let (sa, sp) = scaled.map_or((String::from("-"), String::from("-")), |s| {
        (format!("{:.3}", s.area_mm2), format!("{:.0}", s.power_mw))
    });
    println!(
        "{:<18} {:>9.3} {:>9.3} {:>8} {:>9.0} {:>9.0} {:>8}  {:>5.1}%",
        name,
        est.area_mm2,
        synth.area_mm2,
        sa,
        est.power_mw,
        synth.power_mw,
        sp,
        100.0 * (synth.area_mm2 - est.area_mm2) / synth.area_mm2
    );
}

fn main() {
    let model = AreaPowerModel::default();

    println!("running the three DSE runs (MachSuite / DenseNN / SparseCNN)…");
    let machsuite: Vec<_> = suite_kernels(Suite::MachSuite)
        .into_iter()
        .filter(|k| ["md", "spmv-crs", "stencil-2d", "mm"].contains(&k.name.as_str()))
        .collect();
    let dense = suite_kernels(Suite::DenseNN);
    let sparse = suite_kernels(Suite::SparseCNN);
    let d_mach = dse("DSAGEN_MachSuite", &machsuite, 0xF15A);
    let d_dense = dse("DSAGEN_DenseNN", &dense, 0xF15B);
    let d_sparse = dse("DSAGEN_SparseCNN", &sparse, 0xF15C);

    // ---------------------------------------------------------- part (a)
    println!("\nFIGURE 15a: power/area model validation (Est vs Synth vs Scaled)");
    rule(92);
    println!(
        "{:<18} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}  {:>6}",
        "design", "area-est", "area-syn", "scaled", "pow-est", "pow-syn", "scaled", "gap"
    );
    rule(92);
    let rows: Vec<(&str, Adg, Option<HwCost>)> = vec![
        ("Softbrain", presets::softbrain(), Some(scaled::softbrain())),
        ("SPU", presets::spu(), Some(scaled::spu())),
        ("DSAGEN_MachSuite", d_mach.clone(), None),
        ("DSAGEN_DenseNN", d_dense.clone(), None),
        ("DSAGEN_SparseCNN", d_sparse.clone(), None),
    ];
    let mut gaps = Vec::new();
    for (name, adg, sc) in &rows {
        let est = model.estimate_adg(adg);
        let synth = synthesize_adg(adg);
        gaps.push((synth.area_mm2 - est.area_mm2) / synth.area_mm2);
        print_cost_row(name, est, synth, *sc);
    }
    rule(92);
    println!(
        "estimate is {:.0}-{:.0}% below synthesis (paper: 4-7%, from whole-fabric timing fixes)",
        100.0 * gaps.iter().copied().fold(f64::INFINITY, f64::min),
        100.0 * gaps.iter().copied().fold(0.0, f64::max)
    );

    // ---------------------------------------------------------- part (b)
    println!("\nFIGURE 15b: generated hardware vs prior accelerators (perf^2/mm^2)");
    rule(88);
    println!(
        "{:<12} {:<18} {:<12} {:>9} {:>9} {:>11}",
        "workloads", "DSAGEN design", "baseline", "perf-ratio", "area-ratio", "obj-ratio"
    );
    rule(88);
    let mut obj_ratios = Vec::new();
    for (wname, design, baseline_name, baseline, kernels) in [
        ("MachSuite", &d_mach, "Softbrain", presets::softbrain(), &machsuite),
        ("DenseNN", &d_dense, "Softbrain", presets::softbrain(), &dense),
        ("SparseCNN", &d_sparse, "SPU", presets::spu(), &sparse),
    ] {
        let p_new = perf_on(design, kernels);
        let p_old = perf_on(&baseline, kernels);
        let a_new = model.estimate_adg(design).area_mm2;
        let a_old = model.estimate_adg(&baseline).area_mm2;
        let obj_ratio = dsagen_model::objective(p_new, a_new)
            / dsagen_model::objective(p_old, a_old).max(1e-12);
        obj_ratios.push(obj_ratio);
        println!(
            "{:<12} {:<18} {:<12} {:>9.2} {:>9.2} {:>11.2}",
            wname,
            design.name(),
            baseline_name,
            p_new / p_old.max(1e-12),
            a_new / a_old.max(1e-12),
            obj_ratio
        );
    }
    rule(88);
    println!(
        "mean perf^2/mm^2 vs prior programmable accelerators: {:.2}x (paper: 1.3x)",
        geomean(&obj_ratios)
    );
    // Scaled DSA reference points.
    let dn = scaled::diannao();
    let sc = scaled::scnn();
    let dd = model.estimate_adg(&d_dense);
    let ds = model.estimate_adg(&d_sparse);
    println!(
        "DSAGEN_DenseNN vs scaled DianNao: {:.1}x area, {:.1}x power (paper: 2.4x / 2.6x)",
        dd.area_mm2 / dn.area_mm2,
        dd.power_mw / dn.power_mw
    );
    println!(
        "DSAGEN_SparseCNN vs scaled SCNN: {:.1}x area, {:.1}x power (paper: 1.3x / 1.3x)",
        ds.area_mm2 / sc.area_mm2,
        ds.power_mw / sc.power_mw
    );

    // ---------------------------------------------------------- part (c)
    println!("\nFIGURE 15c: performance-model validation (model vs cycle-level simulation)");
    rule(70);
    println!(
        "{:<14} {:<12} {:>12} {:>12} {:>8}",
        "workload", "hardware", "model", "simulated", "error"
    );
    rule(70);
    let mut errors: Vec<(String, f64)> = Vec::new();
    let val_set: Vec<(Adg, dsagen_dfg::Kernel)> = vec![
        (presets::softbrain(), dsagen_workloads::machsuite::mm()),
        (presets::softbrain(), dsagen_workloads::machsuite::stencil2d()),
        (presets::softbrain(), dsagen_workloads::machsuite::stencil3d()),
        (presets::softbrain(), dsagen_workloads::polybench::mvt()),
        (presets::spu(), dsagen_workloads::sparse::histogram()),
        (presets::spu(), dsagen_workloads::sparse::join()),
        (presets::revel(), dsagen_workloads::dsp::centro_fir()),
        (presets::revel(), dsagen_workloads::dsp::qr()),
    ];
    for (adg, kernel) in val_set {
        let Ok(c) = dsagen::compile(&adg, &kernel, &harness_opts()) else {
            continue;
        };
        let Ok(sim) = simulate(
            &adg,
            &c.version,
            &c.schedule,
            &c.eval,
            c.config_path_len,
            &SimConfig::default(),
        ) else {
            continue;
        };
        let err = (sim.cycles as f64 - c.perf.cycles).abs() / sim.cycles.max(1) as f64;
        errors.push((kernel.name.clone(), err));
        println!(
            "{:<14} {:<12} {:>12.0} {:>12} {:>7.1}%",
            kernel.name,
            adg.name(),
            c.perf.cycles,
            sim.cycles,
            100.0 * err
        );
    }
    rule(70);
    let mean = errors.iter().map(|(_, e)| e).sum::<f64>() / errors.len().max(1) as f64;
    let (worst, max) = errors
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(n, e)| (n.clone(), *e))
        .unwrap_or_default();
    println!(
        "mean error {:.1}%, max {:.1}% ({worst})   (paper: mean 7%, max 30% on stencil-3d)",
        100.0 * mean,
        100.0 * max
    );
}
