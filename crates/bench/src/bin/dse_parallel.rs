//! dse_parallel — sharded-DSE throughput and schedule-memoization benchmark.
//!
//! Runs the same fixed-seed, fixed-shard exploration at several worker
//! thread counts and reports, per run: wall time, exploration iterations
//! per second, the schedule-cache hit rate, stochastic scheduling passes
//! executed, and the speedup over `threads = 1`. Because shard results are
//! deterministic in `(seed, shards)`, every run must select the *same*
//! best objective — the benchmark asserts it — so the table isolates pure
//! executor throughput.
//!
//! A machine-readable copy of the table is written as JSON (first CLI
//! argument, default `BENCH_dse_parallel.json`) for the CI artifact
//! upload and the `bench_compare` determinism gate.
//!
//! Run with: `cargo run --release -p dsagen-bench --bin dse_parallel`

use std::fmt::Write as _;
use std::time::Instant;

use dsagen_adg::presets;
use dsagen_bench::envelope::Envelope;
use dsagen_bench::rule;
use dsagen_dse::{CacheStats, DseConfig, Explorer};
use dsagen_telemetry::{log, Level, MetricsRegistry, Telemetry};
use dsagen_workloads::{suite_kernels, Suite};

/// Independent exploration shards (fixed across all runs).
const SHARDS: usize = 4;
/// Exploration steps per shard.
const MAX_ITERS: u32 = 24;
/// Scheduling iterations per repair/initialization.
const SCHED_ITERS: u32 = 60;
/// Fixed seed: every run explores the identical shard frontiers.
const SEED: u64 = 0xD5E;
/// Executor widths measured (1 is the baseline).
const THREADS: [usize; 3] = [1, 2, 4];

/// One measured run.
struct Run {
    threads: usize,
    seconds: f64,
    iterations: u64,
    best_objective: f64,
    cache: CacheStats,
    sched_invocations: u64,
}

impl Run {
    fn iters_per_sec(&self) -> f64 {
        self.iterations as f64 / self.seconds.max(1e-9)
    }
}

fn bench_kernels() -> Vec<dsagen_dfg::Kernel> {
    let wanted = ["mm", "centro-fir"];
    let mut out = Vec::new();
    for k in suite_kernels(Suite::MachSuite)
        .into_iter()
        .chain(suite_kernels(Suite::Dsp))
    {
        if wanted.contains(&k.name.as_str()) {
            out.push(k);
        }
    }
    assert_eq!(out.len(), wanted.len(), "benchmark kernels missing");
    out
}

fn run_once(kernels: &[dsagen_dfg::Kernel], threads: usize) -> (Run, MetricsRegistry) {
    let cfg = DseConfig {
        seed: SEED,
        shards: SHARDS,
        threads,
        max_iters: MAX_ITERS,
        patience: MAX_ITERS,
        sched_iters: SCHED_ITERS,
        max_unroll: 4,
        ..DseConfig::default()
    };
    // Sink off, metrics on: counters ride into the artifact envelope and
    // let the run double as a registry-determinism probe.
    let reg = MetricsRegistry::enabled();
    let tel = Telemetry::disabled().with_metrics(reg.clone());
    let mut ex = Explorer::new(presets::dse_initial(), kernels, cfg).with_telemetry(tel);
    let started = Instant::now();
    let result = ex.run();
    let seconds = started.elapsed().as_secs_f64();
    let iterations = result
        .shard_traces
        .iter()
        .map(|t| t.len() as u64)
        .sum::<u64>();
    let run = Run {
        threads,
        seconds,
        iterations,
        best_objective: result.best.objective,
        cache: ex.cache_stats(),
        sched_invocations: ex.sched_invocations(),
    };
    (run, reg)
}

/// Minimal JSON emission (the vendored serde is a stub — format by hand).
fn to_json(kernels: &[dsagen_dfg::Kernel], runs: &[Run]) -> String {
    let base = runs[0].iters_per_sec();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"seed\": {SEED},\n  \"shards\": {SHARDS},\n  \"max_iters\": {MAX_ITERS},\n  \"kernels\": ["
    );
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(s, "{}{:?}", if i > 0 { ", " } else { "" }, k.name);
    }
    let _ = write!(s, "],\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"threads\": {}, \"seconds\": {:.4}, \"iterations\": {}, \"iters_per_sec\": {:.3}, \
\"speedup_vs_1\": {:.3}, \"best_objective\": {:.6}, \"sched_invocations\": {}, \
\"cache\": {{\"exact_hits\": {}, \"footprint_hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}}}{}",
            r.threads,
            r.seconds,
            r.iterations,
            r.iters_per_sec(),
            r.iters_per_sec() / base.max(1e-9),
            r.best_objective,
            r.sched_invocations,
            r.cache.exact_hits,
            r.cache.footprint_hits,
            r.cache.misses,
            r.cache.hit_rate(),
            if i + 1 < runs.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dse_parallel.json".to_string());
    let kernels = bench_kernels();

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("PARALLEL SHARDED DSE: throughput and schedule memoization");
    println!(
        "{SHARDS} shards x {MAX_ITERS} iters, seed {SEED:#x}, {cores} core(s), kernels: {}",
        kernels
            .iter()
            .map(|k| k.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    rule(78);
    println!(
        "{:>7} {:>9} {:>7} {:>10} {:>9} {:>10} {:>9} {:>10}",
        "threads", "secs", "iters", "iters/s", "speedup", "hit-rate", "sched", "objective"
    );
    rule(78);

    let mut runs = Vec::new();
    let mut last_registry = MetricsRegistry::disabled();
    for &t in &THREADS {
        let (r, reg) = run_once(&kernels, t);
        runs.push(r);
        last_registry = reg;
    }
    let base = runs[0].iters_per_sec();
    for r in &runs {
        println!(
            "{:>7} {:>9.2} {:>7} {:>10.2} {:>8.2}x {:>9.1}% {:>9} {:>10.4}",
            r.threads,
            r.seconds,
            r.iterations,
            r.iters_per_sec(),
            r.iters_per_sec() / base.max(1e-9),
            100.0 * r.cache.hit_rate(),
            r.sched_invocations,
            r.best_objective,
        );
    }
    rule(78);

    // Determinism contract: same (seed, shards) => same selected best,
    // whatever the executor width.
    for r in &runs[1..] {
        assert_eq!(
            r.best_objective.to_bits(),
            runs[0].best_objective.to_bits(),
            "thread count changed the selected best — determinism broken"
        );
    }
    let hit_ok = runs.iter().all(|r| r.cache.hit_rate() > 0.0);
    let speedup = runs.last().map_or(0.0, |r| r.iters_per_sec() / base.max(1e-9));
    println!(
        "determinism: ok | cache hit-rate > 0: {} | threads={} speedup: {:.2}x (target >= 2.0)",
        if hit_ok { "ok" } else { "FAIL" },
        THREADS[THREADS.len() - 1],
        speedup
    );

    let json = to_json(&kernels, &runs);
    let artifact = Envelope::new("dse_parallel")
        .meta_int("seed", SEED)
        .meta_int("shards", SHARDS as u64)
        .meta_int("max_iters", u64::from(MAX_ITERS))
        .metrics(last_registry.snapshot())
        .wrap(&json);
    match std::fs::write(&out_path, &artifact) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => log(Level::Error, format!("could not write {out_path}: {e}")),
    }
}
