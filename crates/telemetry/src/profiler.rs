//! Self-profiler: a wall-time attribution tree folded from recorded span
//! events.
//!
//! The span API already timestamps every phase; this module turns a flat
//! event list into the question performance work actually asks: *where did
//! the time go?* Spans are nested by interval containment per emitting
//! thread, aggregated by `(category, name)` at every tree level, and each
//! node carries both **total** time (its whole subtree) and **self** time
//! (total minus child totals — the share spent in that phase's own code).
//!
//! The `--bin profile` flame report in `dsagen-bench` is built on this:
//! it runs a DSE with fine-grained scheduler/engine spans enabled and
//! attributes the run's wall time to path search vs. engine vs.
//! encode/verify, the quantified baseline the ROADMAP's hot-loop rewrite
//! is gated against.
//!
//! ```
//! use dsagen_telemetry::{profile, Telemetry};
//!
//! let tel = Telemetry::in_memory();
//! {
//!     let _outer = tel.span("phase", "dse");
//!     drop(tel.span("sched", "path_search"));
//!     drop(tel.span("sched", "path_search"));
//! }
//! let report = profile(&tel.events());
//! let dse = report.find("dse").expect("root span");
//! assert_eq!(dse.children.len(), 1); // both searches folded into one node
//! assert_eq!(dse.children[0].count, 2);
//! assert!(report.flame().contains("path_search"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Event;

/// One aggregated node in the attribution tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Microseconds covered by this node's spans (subtree total).
    pub total_us: u64,
    /// Microseconds not covered by any child span.
    pub self_us: u64,
    /// How many spans folded into this node.
    pub count: u64,
    /// Aggregated children, largest total first.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// `cat/name`, the node's display key.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}", self.cat, self.name)
    }

    /// The direct child named `name`, if any.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for a descendant (or self) named `name`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The folded attribution forest for one event capture.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Elapsed microseconds from the first span's start to the last
    /// span's end — the capture's measured wall time.
    pub wall_us: u64,
    /// Aggregated root spans (no enclosing span), largest total first.
    pub roots: Vec<ProfileNode>,
}

impl ProfileReport {
    /// Depth-first search across all roots for a node named `name`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Renders the tree as an indented flame-style text report: per node
    /// `total`, `self`, invocation count, and percent of wall time.
    #[must_use]
    pub fn flame(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<44} {:>10} {:>10} {:>8} {:>7}",
            "span", "total", "self", "count", "% wall"
        );
        for root in &self.roots {
            self.render(&mut s, root, 0);
        }
        s
    }

    fn render(&self, s: &mut String, node: &ProfileNode, depth: usize) {
        let label = format!("{}{}", "  ".repeat(depth), node.key());
        let pct = if self.wall_us == 0 {
            0.0
        } else {
            node.total_us as f64 * 100.0 / self.wall_us as f64
        };
        let _ = writeln!(
            s,
            "{:<44} {:>10} {:>10} {:>8} {:>6.1}%",
            label,
            fmt_us(node.total_us),
            fmt_us(node.self_us),
            node.count,
            pct
        );
        for child in &node.children {
            self.render(s, child, depth + 1);
        }
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// A raw (un-aggregated) span interval during forest construction.
struct RawNode {
    cat: &'static str,
    name: String,
    start: u64,
    end: u64,
    depth: u32,
    children: Vec<RawNode>,
}

/// Folds recorded events into a wall-time attribution tree.
///
/// Only complete (span) events participate; instants carry no duration.
/// Spans nest by their recorded [`Event::depth`] within each emitting
/// thread, then the per-thread forests are aggregated together by
/// `(cat, name)` — so a phase that runs on several shard workers appears
/// once, with summed totals and counts.
#[must_use]
pub fn profile(events: &[Event]) -> ProfileReport {
    let mut by_tid: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    for e in events {
        if let Some(dur) = e.dur_us {
            min_start = min_start.min(e.ts_us);
            max_end = max_end.max(e.ts_us + dur);
            by_tid.entry(e.tid).or_default().push(e);
        }
    }
    if by_tid.is_empty() {
        return ProfileReport::default();
    }

    let mut raw_roots: Vec<RawNode> = Vec::new();
    for spans in by_tid.values() {
        // Spans arrive in *record* order — a span is recorded when its
        // guard drops, so every child precedes its parent. The recorded
        // nesting depth makes parentage exact: a span's descendants are
        // precisely the strictly-deeper suffix of the unclaimed list
        // (microsecond-tied timestamps cannot confuse it — see
        // `Event::depth`).
        let mut unclaimed: Vec<RawNode> = Vec::new();
        for e in spans.iter() {
            let mut children: Vec<RawNode> = Vec::new();
            while let Some(last) = unclaimed.last() {
                if last.depth > e.depth {
                    children.push(unclaimed.pop().expect("non-empty"));
                } else {
                    break;
                }
            }
            children.reverse();
            unclaimed.push(RawNode {
                cat: e.cat,
                name: e.name.clone(),
                start: e.ts_us,
                end: e.ts_us + e.dur_us.unwrap_or(0),
                depth: e.depth,
                children,
            });
        }
        raw_roots.extend(unclaimed);
    }

    let roots = aggregate(raw_roots);
    ProfileReport {
        wall_us: max_end.saturating_sub(min_start),
        roots,
    }
}

/// Groups sibling raw nodes by `(cat, name)`, summing durations and
/// recursing into children.
fn aggregate(raw: Vec<RawNode>) -> Vec<ProfileNode> {
    let mut grouped: BTreeMap<(String, String), (u64, u64, Vec<RawNode>)> = BTreeMap::new();
    for node in raw {
        let key = (node.cat.to_string(), node.name.clone());
        let slot = grouped.entry(key).or_insert((0, 0, Vec::new()));
        slot.0 += node.end - node.start;
        slot.1 += 1;
        slot.2.extend(node.children);
    }
    let mut out: Vec<ProfileNode> = grouped
        .into_iter()
        .map(|((cat, name), (total, count, children))| {
            let children = aggregate(children);
            let child_total: u64 = children.iter().map(|c| c.total_us).sum();
            ProfileNode {
                cat,
                name,
                total_us: total,
                self_us: total.saturating_sub(child_total),
                count,
                children,
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn empty_capture_profiles_to_nothing() {
        let report = profile(&[]);
        assert_eq!(report.wall_us, 0);
        assert!(report.roots.is_empty());
        assert!(report.flame().contains("span"));
    }

    #[test]
    fn nesting_follows_interval_containment() {
        let tel = Telemetry::in_memory();
        {
            let _outer = tel.span("phase", "dse");
            {
                let _mid = tel.span("sched", "path_search");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            drop(tel.span("config", "verify"));
        }
        let report = profile(&tel.events());
        assert_eq!(report.roots.len(), 1);
        let dse = &report.roots[0];
        assert_eq!(dse.name, "dse");
        assert_eq!(dse.children.len(), 2);
        let search = dse.child("path_search").expect("nested span");
        assert!(search.total_us >= 1000, "slept 2ms, got {}us", search.total_us);
        assert!(dse.total_us >= search.total_us);
        assert!(dse.self_us <= dse.total_us);
    }

    #[test]
    fn repeated_spans_fold_with_counts() {
        let tel = Telemetry::in_memory();
        {
            let _outer = tel.span("phase", "dse");
            for _ in 0..5 {
                drop(tel.span("sched", "path_search"));
            }
        }
        let report = profile(&tel.events());
        let search = report.find("path_search").expect("folded node");
        assert_eq!(search.count, 5);
        assert_eq!(report.roots[0].children.len(), 1);
    }

    #[test]
    fn threads_aggregate_into_one_forest() {
        let tel = Telemetry::in_memory();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let tel = tel.clone();
                scope.spawn(move || drop(tel.span("sched", "path_search")));
            }
        });
        let report = profile(&tel.events());
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].count, 3);
    }

    #[test]
    fn self_time_excludes_children() {
        let tel = Telemetry::in_memory();
        {
            let _outer = tel.span("phase", "dse");
            let _inner = tel.span("sched", "path_search");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = profile(&tel.events());
        let dse = &report.roots[0];
        let child = &dse.children[0];
        assert_eq!(dse.self_us, dse.total_us - child.total_us);
    }
}
