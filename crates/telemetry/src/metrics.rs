//! Typed metrics registry: counters, gauges, and log-linear histograms
//! under a stable hierarchical name space.
//!
//! Names are dotted paths owned by the emitting subsystem
//! (`scheduler.path_search.expansions`, `sim.engine.ticks`,
//! `dse.cache.hits`, `recovery.rung.port-mask`, ...). A disabled
//! [`MetricsRegistry`] costs one `Option` discriminant branch per call —
//! the same zero-cost pattern as the event side of this crate — so every
//! subsystem records unconditionally and the build pays nothing unless a
//! registry is attached.
//!
//! # Determinism
//!
//! Sharded consumers (the DSE) give every shard its *own* registry
//! ([`MetricsRegistry::fork`]) and merge the per-shard snapshots in shard
//! index order ([`MetricsRegistry::absorb`]). All merge operators commute
//! (counters and histogram buckets add, gauges take the max), so the final
//! snapshot depends only on what each shard did — never on thread count or
//! completion order — preserving the workspace's (seed, shards)-determinism
//! contract.
//!
//! # Example
//!
//! ```
//! use dsagen_telemetry::MetricsRegistry;
//!
//! let reg = MetricsRegistry::enabled();
//! reg.add("dse.cache.hits", 3);
//! reg.observe("scheduler.path_search.iterations", 120);
//! reg.gauge("dse.best_objective", 0.25);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("dse.cache.hits"), Some(3));
//! assert!(snap.to_json().contains("\"dse.cache.hits\": 3"));
//!
//! let off = MetricsRegistry::disabled();
//! off.add("never.stored", 1);
//! assert!(off.snapshot().is_empty());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Linear subbuckets per power-of-two magnitude: bounds the histogram's
/// relative bucket error at 12.5% while keeping the index space tiny.
const SUBBUCKETS: u32 = 4;

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> u32 {
    if v < 4 {
        return v as u32;
    }
    let mag = 63 - v.leading_zeros();
    let sub = ((v >> (mag - 2)) & 0b11) as u32;
    mag * SUBBUCKETS + sub
}

/// Inclusive lower bound of bucket `idx` (inverse of [`bucket_index`]).
fn bucket_lower(idx: u32) -> u64 {
    if idx < 4 {
        return u64::from(idx);
    }
    if idx < 8 {
        // Indices 4..8 are never produced (values < 4 map directly); the
        // band collapses onto the first log-linear bucket's lower bound.
        return 4;
    }
    let mag = idx / SUBBUCKETS;
    let sub = u64::from(idx % SUBBUCKETS);
    (1u64 << mag) | (sub << (mag - 2))
}

/// Sparse log-linear histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Bucket index → sample count (sparse; see [`HistogramSnapshot::quantile`]).
    pub buckets: BTreeMap<u32, u64>,
}

impl HistogramSnapshot {
    fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket where the cumulative count crosses `q × count` (clamped to
    /// the observed min/max so estimates never leave the sample range).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's merged value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically accumulated count (merge: add).
    Counter(u64),
    /// Point-in-time measurement (merge: max — the only commuting choice).
    Gauge(f64),
    /// Distribution of samples (merge: bucket-wise add).
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            // A name that changed kind between producers: later producer
            // wins; the registry's owners keep names kind-stable.
            (slot, other) => *slot = other.clone(),
        }
    }

    fn json(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    format!("\"{v}\"")
                }
            }
            MetricValue::Histogram(h) => format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
\"mean\": {:.2}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ),
        }
    }
}

/// A deterministic, order-stable snapshot of a registry: metric name →
/// merged value, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds any metric.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of distinct metric names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// The merged value under `name`, if recorded.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value under `name` (`None` if absent or a different kind).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self` (commuting per-kind operators; see
    /// [`MetricValue`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, val) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(slot) => slot.merge(val),
                None => {
                    self.metrics.insert(name.clone(), val.clone());
                }
            }
        }
    }

    /// Renders the snapshot as one JSON object, keys in name order —
    /// byte-stable for identical contents.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, val)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", crate::escape_json(name), val.json());
        }
        s.push('}');
        s
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A cheaply cloneable metrics handle; disabled handles cost one branch
/// per recording call (nothing allocates, no lock is taken).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<BTreeMap<String, MetricValue>>>>,
}

impl MetricsRegistry {
    /// A registry that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// A live, initially empty registry.
    #[must_use]
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// Whether recordings are stored.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh, empty registry with the same enablement — what each DSE
    /// shard accumulates into before the deterministic merge.
    #[must_use]
    pub fn fork(&self) -> Self {
        if self.is_enabled() {
            MetricsRegistry::enabled()
        } else {
            MetricsRegistry::disabled()
        }
    }

    fn with_slot(&self, name: &str, f: impl FnOnce(&mut MetricValue), default: MetricValue) {
        let Some(inner) = &self.inner else { return };
        let mut map = match inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match map.get_mut(name) {
            Some(slot) => f(slot),
            None => {
                let mut slot = default;
                f(&mut slot);
                map.insert(name.to_string(), slot);
            }
        }
    }

    /// Adds `delta` to the counter under `name`.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_slot(
            name,
            |slot| {
                if let MetricValue::Counter(v) = slot {
                    *v += delta;
                }
            },
            MetricValue::Counter(0),
        );
    }

    /// Sets the gauge under `name` (shard merges keep the max).
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.with_slot(
            name,
            |slot| {
                if let MetricValue::Gauge(v) = slot {
                    *v = value;
                }
            },
            MetricValue::Gauge(value),
        );
    }

    /// Records one sample into the log-linear histogram under `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_slot(
            name,
            |slot| {
                if let MetricValue::Histogram(h) = slot {
                    h.observe(value);
                }
            },
            MetricValue::Histogram(HistogramSnapshot::default()),
        );
    }

    /// A deterministic snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let map = match inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MetricsSnapshot {
            metrics: map.clone(),
        }
    }

    /// Merges a snapshot (typically a shard fork's) into this registry.
    /// Call in shard index order for a byte-stable result; the operators
    /// themselves commute, so any order yields the same values.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        let Some(inner) = &self.inner else { return };
        let mut map = match inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (name, val) in &snap.metrics {
            match map.get_mut(name) {
                Some(slot) => slot.merge(val),
                None => {
                    map.insert(name.clone(), val.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        reg.add("a.b", 5);
        reg.gauge("c", 1.0);
        reg.observe("d", 9);
        assert!(!reg.is_enabled());
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate_and_render() {
        let reg = MetricsRegistry::enabled();
        reg.add("dse.cache.hits", 2);
        reg.add("dse.cache.hits", 3);
        reg.add("dse.cache.misses", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("dse.cache.hits"), Some(5));
        let json = snap.to_json();
        // BTreeMap ordering: hits before misses.
        let hits = json.find("hits").unwrap();
        let misses = json.find("misses").unwrap();
        assert!(hits < misses, "{json}");
    }

    #[test]
    fn bucket_index_round_trips_lower_bounds() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 896, 1000, 1 << 40] {
            let idx = bucket_index(v);
            let lo = bucket_lower(idx);
            assert!(lo <= v, "lower {lo} > value {v}");
            // The next bucket starts above v.
            if idx + 1 < u32::MAX {
                let hi = bucket_lower(idx + 1);
                assert!(v < hi || hi <= lo, "value {v} beyond bucket [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bound_by_samples() {
        let reg = MetricsRegistry::enabled();
        for v in 1..=1000u64 {
            reg.observe("lat", v);
        }
        let snap = reg.snapshot();
        let Some(MetricValue::Histogram(h)) = snap.get("lat") else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        let p50 = h.quantile(0.5);
        assert!((400..=600).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((896..=1000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn merge_is_commutative() {
        let a = MetricsRegistry::enabled();
        let b = MetricsRegistry::enabled();
        a.add("c", 2);
        a.observe("h", 10);
        a.gauge("g", 1.5);
        b.add("c", 3);
        b.observe("h", 99);
        b.gauge("g", 0.5);

        let ab = MetricsRegistry::enabled();
        ab.absorb(&a.snapshot());
        ab.absorb(&b.snapshot());
        let ba = MetricsRegistry::enabled();
        ba.absorb(&b.snapshot());
        ba.absorb(&a.snapshot());
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().counter("c"), Some(5));
        assert_eq!(ab.snapshot().to_json(), ba.snapshot().to_json());
    }

    #[test]
    fn fork_is_independent_until_absorbed() {
        let root = MetricsRegistry::enabled();
        let shard = root.fork();
        shard.add("n", 7);
        assert!(root.snapshot().is_empty());
        root.absorb(&shard.snapshot());
        assert_eq!(root.snapshot().counter("n"), Some(7));
        assert!(!MetricsRegistry::disabled().fork().is_enabled());
    }
}
