//! Structured telemetry for the DSAGEN co-design pipeline.
//!
//! The pipeline's claims rest on numbers that used to be invisible from the
//! inside: the analytical model is validated against cycle-level simulation
//! (paper §VII, Fig 15) and the DSE is steered by objective deltas, yet
//! historically only final scalars escaped. This crate provides the event
//! layer everything else reports into:
//!
//! * [`Telemetry`] — a cheaply cloneable handle that is **zero-cost when
//!   disabled**: every emission site first checks a single `Option`
//!   discriminant (no allocation, no lock, no clock read) and only builds
//!   the event when a sink is attached.
//! * [`TelemetrySink`] — where events go: in-memory (tests, renderers),
//!   streaming JSONL file, or any custom sink.
//! * [`Span`] — RAII phase timing with monotonic clocks; dropped spans
//!   become Chrome `trace_event`-compatible *complete* events.
//! * [`chrome_trace`] / [`jsonl`] — exporters: the former produces a JSON
//!   document loadable in `chrome://tracing` / Perfetto, the latter a flat
//!   line-per-event stream for ad-hoc `grep`/`jq` analysis.
//! * [`log`] — leveled stderr logging (gated by `DSAGEN_LOG`) replacing
//!   ad-hoc `eprintln!` across the workspace.
//!
//! Three observability pillars build on the event layer (each zero-cost
//! when disabled via the same one-branch `Option` pattern):
//!
//! * [`MetricsRegistry`] ([`metrics`]) — typed counters / gauges /
//!   log-linear histograms under a stable hierarchical name space,
//!   accumulated per shard and merged deterministically.
//! * [`profile`] ([`profiler`]) — a wall-time attribution tree folded
//!   from recorded spans (the `--bin profile` flame report).
//! * [`FlightRecorder`] ([`recorder`]) — a bounded ring of recent
//!   structured events dumped as JSONL alongside terminal errors.
//!
//! A [`Telemetry`] handle carries all three: the event sink plus optional
//! metrics/recorder sub-handles ([`Telemetry::with_metrics`],
//! [`Telemetry::with_recorder`]), so the subsystems that already thread a
//! handle get the whole layer without signature churn.
//!
//! # Example
//!
//! ```
//! use dsagen_telemetry::{chrome_trace, EventData, Telemetry, Value};
//!
//! let tel = Telemetry::in_memory();
//! {
//!     let mut span = tel.span("phase", "schedule");
//!     span.arg("kernel", "dot");
//!     // ... do the work being timed ...
//! } // span drop emits a complete event with its duration
//! tel.emit(|| EventData::new("dse", "iteration").arg("iter", 3u64).arg("accepted", true));
//! let events = tel.events();
//! assert_eq!(events.len(), 2);
//! let trace = chrome_trace(&events);
//! assert!(trace.contains("\"ph\": \"X\"")); // the completed span
//! ```
//!
//! Disabled handles short-circuit before the closure runs:
//!
//! ```
//! use dsagen_telemetry::{EventData, Telemetry};
//! let off = Telemetry::disabled();
//! off.emit(|| unreachable!("never built when disabled"));
//! assert!(!off.is_enabled());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod profiler;
pub mod recorder;

pub use metrics::{HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use profiler::{profile, ProfileNode, ProfileReport};
pub use recorder::{FlightEvent, FlightRecorder};

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Values & events
// ---------------------------------------------------------------------------

/// One argument value attached to an event. Rendered as native JSON types
/// in both exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Measurement.
    F64(f64),
    /// Flag.
    Bool(bool),
    /// Free-form label.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    /// JSON rendering of the value (strings are escaped and quoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; stringify so the artifact stays
                    // loadable.
                    write!(f, "\"{v}\"")
                }
            }
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "\"{}\"", escape_json(s)),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// What an emission site provides; the handle stamps timestamp and thread.
#[derive(Debug, Clone, PartialEq)]
pub struct EventData {
    /// Category (Chrome-trace `cat`): `"phase"`, `"dse"`, `"sim"`,
    /// `"fault"`, ...
    pub cat: &'static str,
    /// Event name (Chrome-trace `name`).
    pub name: String,
    /// Key/value arguments.
    pub args: Vec<(&'static str, Value)>,
}

impl EventData {
    /// A new event payload with no arguments yet.
    #[must_use]
    pub fn new(cat: &'static str, name: impl Into<String>) -> Self {
        EventData {
            cat,
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Attaches one argument (builder style).
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the handle's epoch (Chrome-trace `ts` unit).
    pub ts_us: u64,
    /// Span duration in microseconds (`None` for instant events).
    pub dur_us: Option<u64>,
    /// Category.
    pub cat: &'static str,
    /// Name.
    pub name: String,
    /// Stable fingerprint of the emitting thread (Chrome-trace `tid`).
    pub tid: u64,
    /// Number of enclosing open spans on the emitting thread when this
    /// event began (0 = top level). Makes span nesting exact for the
    /// profiler — microsecond-granular timestamps alone cannot
    /// disambiguate zero-width spans on an interval boundary.
    pub depth: u32,
    /// Arguments.
    pub args: Vec<(&'static str, Value)>,
}

impl Event {
    /// Renders the event as a single-line JSON object (the JSONL row
    /// format).
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"ts_us\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"tid\": {}",
            self.ts_us,
            escape_json(self.cat),
            escape_json(&self.name),
            self.tid
        );
        if let Some(d) = self.dur_us {
            s.push_str(&format!(", \"dur_us\": {d}"));
        }
        if !self.args.is_empty() {
            s.push_str(", \"args\": {");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {v}", escape_json(k)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where recorded events go. Implementations must be `Send`: the DSE
/// executor emits from shard worker threads.
pub trait TelemetrySink: Send {
    /// Records one event.
    fn record(&mut self, event: Event);
    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Discards everything (useful as an explicit stand-in; a disabled
/// [`Telemetry`] handle never even reaches its sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _event: Event) {}
}

/// Streams each event as one JSON line to a writer.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: W,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }
}

impl<W: std::io::Write + Send> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, event: Event) {
        let _ = writeln!(self.writer, "{}", event.json());
    }
    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

enum SinkImpl {
    Memory(Vec<Event>),
    Boxed(Box<dyn TelemetrySink>),
}

impl fmt::Debug for SinkImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkImpl::Memory(v) => write!(f, "Memory({} events)", v.len()),
            SinkImpl::Boxed(_) => write!(f, "Boxed(..)"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    sink: Mutex<SinkImpl>,
}

impl Inner {
    fn record(&self, event: Event) {
        let mut sink = match self.sink.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &mut *sink {
            SinkImpl::Memory(v) => v.push(event),
            SinkImpl::Boxed(b) => b.record(event),
        }
    }
}

// ---------------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------------

/// A cheaply cloneable telemetry handle.
///
/// A disabled handle ([`Telemetry::disabled`]) makes every emission site a
/// single branch on an `Option` discriminant: the event-building closure is
/// never called, nothing allocates, no clock is read, no lock is taken.
/// Enabled handles share one sink behind a mutex, so shard worker threads
/// can emit concurrently.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
}

impl Telemetry {
    /// A handle that records nothing, at (almost) no cost.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            metrics: MetricsRegistry::disabled(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// A handle that accumulates events in memory; retrieve them with
    /// [`Telemetry::events`].
    #[must_use]
    pub fn in_memory() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sink: Mutex::new(SinkImpl::Memory(Vec::new())),
            })),
            metrics: MetricsRegistry::disabled(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// A handle streaming JSONL rows to `path` (truncates an existing
    /// file).
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn jsonl_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::with_sink(Box::new(JsonlSink::new(
            std::io::BufWriter::new(file),
        ))))
    }

    /// A handle feeding a custom sink.
    #[must_use]
    pub fn with_sink(sink: Box<dyn TelemetrySink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sink: Mutex::new(SinkImpl::Boxed(sink)),
            })),
            metrics: MetricsRegistry::disabled(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// Attaches a metrics registry (builder style). The registry is
    /// independent of the event sink: a handle can carry metrics with no
    /// sink attached, and vice versa.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches a flight recorder (builder style).
    #[must_use]
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached metrics registry (disabled by default). Recording
    /// through a disabled registry is one branch.
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The attached flight recorder (disabled by default).
    #[inline]
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The handle a DSE shard worker accumulates into: shares this
    /// handle's event sink and flight recorder, but gets a **fresh**
    /// metrics registry of the same enablement — the shard's counters are
    /// merged back in shard index order ([`MetricsRegistry::absorb`]) so
    /// the final snapshot is independent of thread scheduling.
    #[must_use]
    pub fn fork_shard(&self) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            metrics: self.metrics.fork(),
            recorder: self.recorder.clone(),
        }
    }

    /// Whether a sink is attached. Emission sites may use this to skip
    /// preparing expensive arguments; [`Telemetry::emit`] already
    /// short-circuits internally.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one instant event. `build` runs only when enabled.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> EventData) {
        let Some(inner) = &self.inner else { return };
        let data = build();
        inner.record(Event {
            ts_us: us_since(inner.epoch),
            dur_us: None,
            cat: data.cat,
            name: data.name,
            tid: current_tid(),
            depth: span_depth(),
            args: data.args,
        });
    }

    /// Opens a timing span; the returned guard emits one *complete* event
    /// (start timestamp + duration) when dropped. Disabled handles return
    /// an inert guard.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        match &self.inner {
            None => Span { state: None },
            Some(inner) => {
                let depth = span_depth();
                DEPTH.with(|d| d.set(depth + 1));
                Span {
                    state: Some(SpanState {
                        inner: Arc::clone(inner),
                        cat,
                        name: name.into(),
                        start_us: us_since(inner.epoch),
                        depth,
                        args: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Snapshot of the events recorded so far. Empty unless the handle was
    /// created with [`Telemetry::in_memory`].
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let sink = match inner.sink.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &*sink {
            SinkImpl::Memory(v) => v.clone(),
            SinkImpl::Boxed(_) => Vec::new(),
        }
    }

    /// Flushes the sink (file sinks buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut sink = match inner.sink.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let SinkImpl::Boxed(b) = &mut *sink {
                b.flush();
            }
        }
    }
}

fn us_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

thread_local! {
    /// Open-span count on this thread (shared across every enabled
    /// handle: nesting is a property of the call stack, not the handle).
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Current span nesting depth on this thread.
fn span_depth() -> u32 {
    DEPTH.with(std::cell::Cell::get)
}

/// A stable per-thread fingerprint (Chrome-trace `tid`).
fn current_tid() -> u64 {
    use std::cell::Cell;
    use std::hash::{Hash, Hasher};
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let tid = h.finish() | 1; // never 0, so the cache distinguishes "unset"
        c.set(tid);
        tid
    })
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanState {
    inner: Arc<Inner>,
    cat: &'static str,
    name: String,
    start_us: u64,
    depth: u32,
    args: Vec<(&'static str, Value)>,
}

/// RAII timing guard minted by [`Telemetry::span`]. Dropping it records a
/// complete event covering the guard's lifetime.
#[must_use = "a span measures the scope it lives in; dropping it immediately records ~0 duration"]
pub struct Span {
    state: Option<SpanState>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            None => write!(f, "Span(disabled)"),
            Some(s) => write!(f, "Span({}/{})", s.cat, s.name),
        }
    }
}

impl Span {
    /// Attaches an argument to the event the span will emit.
    pub fn arg(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(s) = &mut self.state {
            s.args.push((key, value.into()));
        }
    }

    /// Ends the span now (alias for drop, reads better at call sites).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end_us = us_since(s.inner.epoch);
            s.inner.record(Event {
                ts_us: s.start_us,
                dur_us: Some(end_us.saturating_sub(s.start_us)),
                cat: s.cat,
                name: s.name,
                tid: current_tid(),
                depth: s.depth,
                args: s.args,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Renders events as a Chrome `trace_event` JSON document (object format
/// with a `traceEvents` array), loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Spans become complete (`"ph": "X"`) events;
/// instant events become `"ph": "i"`.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let mut s = String::from("{\n\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        s.push_str("  {");
        s.push_str(&format!(
            "\"name\": \"{}\", \"cat\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {}",
            escape_json(&e.name),
            escape_json(e.cat),
            e.tid,
            e.ts_us
        ));
        match e.dur_us {
            Some(d) => s.push_str(&format!(", \"ph\": \"X\", \"dur\": {d}")),
            None => s.push_str(", \"ph\": \"i\", \"s\": \"t\""),
        }
        if !e.args.is_empty() {
            s.push_str(", \"args\": {");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {v}", escape_json(k)));
            }
            s.push('}');
        }
        s.push('}');
        if i + 1 < events.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("],\n\"displayTimeUnit\": \"ms\"\n}\n");
    s
}

/// Renders events as a flat JSONL stream, one event per line.
#[must_use]
pub fn jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.json());
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

/// Log severity, lowest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error,
    /// Suspicious but tolerated conditions (the default threshold).
    Warn,
    /// Progress notes.
    Info,
    /// Developer chatter.
    Debug,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// The active threshold, parsed once from `DSAGEN_LOG`
/// (`error|warn|info|debug`, default `warn`).
#[must_use]
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        match std::env::var("DSAGEN_LOG")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "error" => Level::Error,
            "info" => Level::Info,
            "debug" => Level::Debug,
            _ => Level::Warn,
        }
    })
}

/// Writes one leveled line to stderr if `level` passes the `DSAGEN_LOG`
/// threshold. This is the workspace's sanctioned replacement for ad-hoc
/// `eprintln!` debugging.
pub fn log(level: Level, msg: impl AsRef<str>) {
    if level <= max_level() {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "[dsagen {}] {}", level.label(), msg.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(|| unreachable!("closure must not run when disabled"));
        let span = tel.span("phase", "noop");
        drop(span);
        assert!(tel.events().is_empty());
    }

    #[test]
    fn memory_sink_records_instants_and_spans() {
        let tel = Telemetry::in_memory();
        assert!(tel.is_enabled());
        tel.emit(|| EventData::new("dse", "iteration").arg("iter", 7u64));
        {
            let mut span = tel.span("phase", "schedule");
            span.arg("kernel", "dot");
        }
        let events = tel.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "iteration");
        assert_eq!(events[0].dur_us, None);
        assert_eq!(events[0].args, vec![("iter", Value::U64(7))]);
        assert_eq!(events[1].name, "schedule");
        assert!(events[1].dur_us.is_some());
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::in_memory();
        let other = tel.clone();
        other.emit(|| EventData::new("sim", "from-clone"));
        assert_eq!(tel.events().len(), 1);
    }

    #[test]
    fn emission_is_thread_safe() {
        let tel = Telemetry::in_memory();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for i in 0..25u64 {
                        tel.emit(|| EventData::new("dse", "it").arg("n", t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(tel.events().len(), 100);
    }

    #[test]
    fn chrome_trace_is_loadable_shape() {
        let tel = Telemetry::in_memory();
        tel.emit(|| EventData::new("fault", "inject").arg("kind", "dead-pe"));
        drop(tel.span("phase", "simulate"));
        let doc = chrome_trace(&tel.events());
        assert!(doc.starts_with("{\n\"traceEvents\": ["));
        assert!(doc.contains("\"ph\": \"i\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"dead-pe\""));
        assert!(doc.trim_end().ends_with('}'));
        // Balanced braces/brackets — a cheap well-formedness smoke test.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = doc.matches(open).count();
            let c = doc.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn jsonl_rows_are_one_object_per_line() {
        let tel = Telemetry::in_memory();
        tel.emit(|| EventData::new("a", "x"));
        tel.emit(|| EventData::new("b", "y").arg("f", 1.5f64).arg("s", "hi"));
        let out = jsonl(&tel.events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(out.contains("\"f\": 1.5"));
        assert!(out.contains("\"s\": \"hi\""));
    }

    #[test]
    fn jsonl_file_sink_streams_rows() {
        let path = std::env::temp_dir().join(format!(
            "dsagen-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let tel = Telemetry::jsonl_file(&path).expect("temp file");
        tel.emit(|| EventData::new("sim", "counters").arg("cycles", 42u64));
        tel.flush();
        let content = std::fs::read_to_string(&path).expect("written");
        let _ = std::fs::remove_file(&path);
        assert!(content.contains("\"cycles\": 42"), "{content}");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let v = Value::Str("quote\"and\\slash".into());
        assert_eq!(v.to_string(), "\"quote\\\"and\\\\slash\"");
        assert_eq!(Value::F64(f64::NAN).to_string(), "\"NaN\"");
    }

    #[test]
    fn span_timestamps_are_monotone() {
        let tel = Telemetry::in_memory();
        let s1 = tel.span("phase", "outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(tel.span("phase", "inner"));
        drop(s1);
        let events = tel.events();
        // inner recorded first (dropped first), outer second.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        let outer = &events[1];
        let inner = &events[0];
        assert!(outer.ts_us <= inner.ts_us);
        assert!(outer.dur_us.unwrap() >= inner.dur_us.unwrap());
    }

    #[test]
    fn levels_order_and_default() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        // Default threshold admits warn and error.
        assert!(max_level() >= Level::Warn || max_level() == Level::Error);
        log(Level::Debug, "never shown under the default threshold");
    }
}
