//! Flight recorder: a bounded ring of recent structured events for
//! post-mortem debugging.
//!
//! The event sinks in this crate answer "what happened over the whole
//! run"; the flight recorder answers the cheaper, always-relevant question
//! "what happened *just before it went wrong*". Subsystems record faults
//! injected, repair rungs climbed, cache decisions, and rejected DSE
//! candidates into a fixed-capacity ring; when a terminal error surfaces
//! (`SimError`, `RecoveryError`, an abnormal DSE rejection) the ring is
//! dumped as JSONL — automatically to `DSAGEN_FLIGHT_DIR` when that
//! environment variable is set, and on demand via
//! [`FlightRecorder::dump_jsonl`].
//!
//! A disabled recorder costs one `Option` discriminant branch per call and
//! never builds the event; an enabled one costs that branch plus one ring
//! write behind a mutex. Nothing in the simulator, scheduler, or DSE reads
//! the ring, so enabling it cannot perturb results — property-tested in
//! `tests/properties.rs`.
//!
//! ```
//! use dsagen_telemetry::FlightRecorder;
//!
//! let rec = FlightRecorder::with_capacity(2);
//! rec.record("fault", || ("inject".into(), "dead-pe n3".into()));
//! rec.record("recovery", || ("rung".into(), "port-mask legal".into()));
//! rec.record("recovery", || ("rung".into(), "resume".into()));
//! let dump = rec.dump_jsonl();
//! // Capacity 2: the oldest record has been evicted.
//! assert!(!dump.contains("dead-pe"));
//! assert_eq!(dump.lines().count(), 2);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough to hold a whole recovery episode
/// (detect → ladder → reprogram → resume) with surrounding context.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (never reset, so dumps show gaps left by
    /// ring eviction).
    pub seq: u64,
    /// Subsystem category (`"fault"`, `"recovery"`, `"dse"`, `"sim"`).
    pub cat: &'static str,
    /// Short event label (`"inject"`, `"rung"`, `"reject"`).
    pub label: String,
    /// Free-form detail for the post-mortem reader.
    pub detail: String,
}

impl FlightEvent {
    /// One-line JSON rendering (the dump row format).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"cat\": \"{}\", \"label\": \"{}\", \"detail\": \"{}\"}}",
            self.seq,
            crate::escape_json(self.cat),
            crate::escape_json(&self.label),
            crate::escape_json(&self.detail),
        )
    }
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    seq: u64,
    events: VecDeque<FlightEvent>,
}

/// A cheaply cloneable flight-recorder handle; clones share one ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl FlightRecorder {
    /// A recorder that stores nothing (one branch per call).
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// A live recorder with [`DEFAULT_CAPACITY`] slots.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A live recorder holding the most recent `cap` events (min 1).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Ring {
                cap: cap.max(1),
                seq: 0,
                events: VecDeque::with_capacity(cap.max(1)),
            }))),
        }
    }

    /// Whether events are stored.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event; `build` returns `(label, detail)` and runs only
    /// when the recorder is enabled.
    #[inline]
    pub fn record(&self, cat: &'static str, build: impl FnOnce() -> (String, String)) {
        let Some(inner) = &self.inner else { return };
        let (label, detail) = build();
        let mut ring = match inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            cat,
            label,
            detail,
        });
    }

    /// Number of events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => match inner.lock() {
                Ok(g) => g.events.len(),
                Err(poisoned) => poisoned.into_inner().events.len(),
            },
        }
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the ring's events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let ring = match inner.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                ring.events.iter().cloned().collect()
            }
        }
    }

    /// Renders the ring as JSONL, one event per line, oldest first.
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.events() {
            s.push_str(&e.json());
            s.push('\n');
        }
        s
    }

    /// Automatic post-mortem dump: when `DSAGEN_FLIGHT_DIR` is set and the
    /// ring is non-empty, writes the JSONL dump to
    /// `<dir>/flight_<label>_<n>.jsonl` (a process-unique counter keeps
    /// repeated errors from clobbering each other) and returns the path.
    /// Library error paths call this unconditionally; without the
    /// environment variable it is a no-op, so tests and hot paths stay
    /// silent.
    pub fn dump_on_error(&self, label: &str) -> Option<PathBuf> {
        if self.is_empty() {
            return None;
        }
        let dir = std::env::var_os("DSAGEN_FLIGHT_DIR")?;
        static DUMPS: AtomicU64 = AtomicU64::new(0);
        let n = DUMPS.fetch_add(1, Ordering::Relaxed);
        let safe: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = PathBuf::from(dir).join(format!("flight_{safe}_{n}.jsonl"));
        match std::fs::write(&path, self.dump_jsonl()) {
            Ok(()) => Some(path),
            Err(e) => {
                crate::log(
                    crate::Level::Warn,
                    format!("flight-recorder dump to {} failed: {e}", path.display()),
                );
                None
            }
        }
    }
}

impl fmt::Display for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlightRecorder({} events)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_builds() {
        let rec = FlightRecorder::disabled();
        rec.record("dse", || unreachable!("closure must not run when disabled"));
        assert!(rec.is_empty());
        assert_eq!(rec.dump_jsonl(), "");
        assert!(rec.dump_on_error("x").is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.record("sim", move || (format!("e{i}"), String::new()));
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[0].label, "e2");
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::enabled();
        let other = rec.clone();
        other.record("fault", || ("inject".into(), "dead-pe".into()));
        assert_eq!(rec.len(), 1);
        assert!(rec.dump_jsonl().contains("dead-pe"));
    }

    #[test]
    fn dump_rows_are_json_lines() {
        let rec = FlightRecorder::enabled();
        rec.record("dse", || ("reject".into(), "reason=\"worse\"".into()));
        let dump = rec.dump_jsonl();
        let line = dump.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\\\"worse\\\""), "{line}");
    }

    #[test]
    fn dump_on_error_writes_when_dir_set() {
        let rec = FlightRecorder::enabled();
        rec.record("recovery", || ("rung".into(), "port-mask".into()));
        // No env var in the test harness → no file, no error.
        if std::env::var_os("DSAGEN_FLIGHT_DIR").is_none() {
            assert!(rec.dump_on_error("unit test").is_none());
        }
    }
}
