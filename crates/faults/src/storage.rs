//! Storage-plane fault injection for the content-addressed artifact store.
//!
//! The structural plane corrupts graphs, the config plane corrupts
//! bitstream words in flight; this module corrupts the *persistence*
//! layer: the bytes an [`dsagen-store`] record is written as, and the I/O
//! operations that move them. Every failure mode a disk can inflict on a
//! write-to-temp → fsync → atomic-rename commit protocol is represented:
//!
//! * [`StorageFaultKind::TornWrite`] — the process dies mid-write: only a
//!   prefix of the record reaches the medium.
//! * [`StorageFaultKind::TruncatedRecord`] — the tail of a committed
//!   record is lost (partial sector writeback, filesystem truncation).
//! * [`StorageFaultKind::BitFlippedPayload`] — one bit of a committed
//!   record flips at rest (media decay, cosmic ray).
//! * [`StorageFaultKind::StaleTempFile`] — the crash landed *between*
//!   temp-write and rename: a fully- or partially-written `.tmp` file
//!   survives as residue while the real entry never appeared.
//! * [`StorageFaultKind::TransientIo`] — the operation fails with a
//!   retryable error (EINTR, ENOSPC race, NFS hiccup) but the medium is
//!   fine; a retry succeeds.
//!
//! Two consumers: the [`StorageInjector`] is threaded *into* the store and
//! fires faults at operation boundaries (deterministically, from a seed),
//! and the pure [`corrupt_record_bytes`] / [`kill_points`] helpers let the
//! crash-matrix harness construct every damaged on-disk state directly.
//!
//! Determinism contract: everything here is a pure function of the seed
//! and the operation index — the same plan replays the same faults.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of storage-plane fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultKind {
    /// A write dies mid-record: only a prefix of the bytes land.
    TornWrite,
    /// A committed record loses its tail.
    TruncatedRecord,
    /// One bit of a committed record flips at rest.
    BitFlippedPayload,
    /// Crash residue: a temp file survives while the entry never committed.
    StaleTempFile,
    /// A retryable I/O failure (EINTR-class); the medium is undamaged.
    TransientIo,
}

impl StorageFaultKind {
    /// Every storage-plane fault kind, in a fixed order (exhaustive
    /// crash-matrix sweeps iterate this).
    pub const STORAGE_PLANE: [StorageFaultKind; 5] = [
        StorageFaultKind::TornWrite,
        StorageFaultKind::TruncatedRecord,
        StorageFaultKind::BitFlippedPayload,
        StorageFaultKind::StaleTempFile,
        StorageFaultKind::TransientIo,
    ];

    /// Stable lowercase label (log lines, JSON rows, metrics names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageFaultKind::TornWrite => "torn-write",
            StorageFaultKind::TruncatedRecord => "truncated-record",
            StorageFaultKind::BitFlippedPayload => "bit-flipped-payload",
            StorageFaultKind::StaleTempFile => "stale-temp-file",
            StorageFaultKind::TransientIo => "transient-io",
        }
    }
}

impl fmt::Display for StorageFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the injector decided for one write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write proceeds untouched.
    Clean,
    /// Fail this attempt with a retryable error; the store's
    /// retry-with-backoff loop should succeed on a later attempt.
    Transient,
    /// Crash mid-write: persist only the first `keep` bytes of the temp
    /// file and skip the rename (the entry never commits; the torn temp
    /// file is crash residue).
    TornAt {
        /// Bytes that reach the medium before the crash.
        keep: usize,
    },
    /// Crash between temp-write and rename: the temp file is complete but
    /// the entry never commits.
    StaleTemp,
}

/// Deterministic, seeded storage fault source. Cheap to clone; clones
/// share the same operation counter and RNG, so a store and a test
/// harness observing the same injector agree on the fault sequence.
#[derive(Debug, Clone, Default)]
pub struct StorageInjector {
    inner: Option<Arc<InjectorState>>,
}

#[derive(Debug)]
struct InjectorState {
    rng: Mutex<StdRng>,
    /// Probability that any given write op faults at all.
    write_fault_p: f64,
    /// Probability that a faulted op is transient (vs a crash shape).
    transient_p: f64,
    /// Consecutive transient failures to deal per faulted op (exercises
    /// the backoff ladder; the store's retry budget must exceed this for
    /// recovery to be possible).
    transient_burst: u32,
    /// Remaining transient failures owed to the current op.
    owed: AtomicU64,
    /// The attempt after a fully-paid burst is guaranteed clean — the
    /// fault model says a transient error's medium is undamaged, so a
    /// retry within budget must be able to succeed.
    clean_next: AtomicU64,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl StorageInjector {
    /// An injector that never fires (production default).
    #[must_use]
    pub fn disabled() -> Self {
        StorageInjector { inner: None }
    }

    /// A seeded injector firing on roughly `write_fault_p` of write
    /// operations, splitting faulted ops between transient errors
    /// (probability `transient_p`, dealt as a burst of `transient_burst`
    /// consecutive failures) and crash shapes (torn write / stale temp).
    #[must_use]
    pub fn seeded(seed: u64, write_fault_p: f64, transient_p: f64, transient_burst: u32) -> Self {
        StorageInjector {
            inner: Some(Arc::new(InjectorState {
                rng: Mutex::new(StdRng::seed_from_u64(seed ^ STORE_SEED_MIX)),
                write_fault_p: write_fault_p.clamp(0.0, 1.0),
                transient_p: transient_p.clamp(0.0, 1.0),
                transient_burst: transient_burst.max(1),
                owed: AtomicU64::new(0),
                clean_next: AtomicU64::new(0),
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this injector can fire at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Total faults fired so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// The injector's verdict for a write of `record_len` bytes. Called
    /// once per write *attempt*, so a transient burst fails the first N
    /// attempts of one logical put and then lets the retry through.
    #[must_use]
    pub fn on_write(&self, record_len: usize) -> WriteFault {
        let Some(state) = &self.inner else {
            return WriteFault::Clean;
        };
        // Pay off an owed transient burst first (deterministic ordering:
        // the burst was decided when the op first faulted).
        let owed = state.owed.load(Ordering::Relaxed);
        if owed > 0 {
            state.owed.store(owed - 1, Ordering::Relaxed);
            if owed == 1 {
                state.clean_next.store(1, Ordering::Relaxed);
            }
            state.injected.fetch_add(1, Ordering::Relaxed);
            return WriteFault::Transient;
        }
        if state.clean_next.swap(0, Ordering::Relaxed) == 1 {
            // The retry after a transient burst: the medium was never
            // damaged, so this attempt goes through.
            return WriteFault::Clean;
        }
        state.ops.fetch_add(1, Ordering::Relaxed);
        let mut rng = match state.rng.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !rng.gen_bool(state.write_fault_p) {
            return WriteFault::Clean;
        }
        state.injected.fetch_add(1, Ordering::Relaxed);
        if rng.gen_bool(state.transient_p) {
            // This attempt plus (burst - 1) follow-ups fail transiently;
            // the attempt after that is guaranteed clean.
            if state.transient_burst == 1 {
                state.clean_next.store(1, Ordering::Relaxed);
            } else {
                state
                    .owed
                    .store(u64::from(state.transient_burst - 1), Ordering::Relaxed);
            }
            WriteFault::Transient
        } else if rng.gen_bool(0.5) {
            let keep = if record_len == 0 {
                0
            } else {
                rng.gen_range(0..record_len)
            };
            WriteFault::TornAt { keep }
        } else {
            WriteFault::StaleTemp
        }
    }
}

/// Seed-domain separator so storage-plane draws never correlate with the
/// structural or config planes at the same user seed.
const STORE_SEED_MIX: u64 = 0x5709_0A9E_57D1_5C01;

/// Applies one *at-rest* corruption shape to an encoded record, returning
/// a human-readable description of what was done. Pure in `(kind, seed,
/// bytes)`; the crash-matrix harness uses this to construct every damaged
/// on-disk state without racing real crashes.
///
/// [`StorageFaultKind::TransientIo`] and [`StorageFaultKind::StaleTempFile`]
/// do not damage committed bytes — for those kinds the record is returned
/// unchanged and the description says so (the harness injects them through
/// the temp-file / injector paths instead).
pub fn corrupt_record_bytes(kind: StorageFaultKind, seed: u64, bytes: &mut Vec<u8>) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ STORE_SEED_MIX);
    match kind {
        StorageFaultKind::TornWrite => {
            let keep = if bytes.is_empty() {
                0
            } else {
                rng.gen_range(0..bytes.len())
            };
            bytes.truncate(keep);
            format!("torn write: kept {keep} bytes")
        }
        StorageFaultKind::TruncatedRecord => {
            // Lose 1..=16 tail bytes (always at least one, never all).
            let lose = rng.gen_range(1..=16usize).min(bytes.len().saturating_sub(1));
            let keep = bytes.len() - lose;
            bytes.truncate(keep);
            format!("truncated record: lost {lose} tail bytes")
        }
        StorageFaultKind::BitFlippedPayload => {
            if bytes.is_empty() {
                return "bit flip on empty record: no-op".to_string();
            }
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1 << bit;
            format!("bit flip: byte {byte} bit {bit}")
        }
        StorageFaultKind::StaleTempFile | StorageFaultKind::TransientIo => {
            format!("{kind}: committed bytes untouched")
        }
    }
}

/// Every interesting kill point for a record of `len` bytes whose frame
/// boundaries are `boundaries` (byte offsets *after* each frame, as
/// reported by the store's record encoder): each boundary itself, one
/// byte before it (mid-CRC), and one byte after (mid-length-prefix of the
/// next frame), deduplicated and clamped to `0..len`. Killing a write at
/// every one of these offsets covers every structurally distinct torn
/// state the framing can produce.
#[must_use]
pub fn kill_points(len: usize, boundaries: &[usize]) -> Vec<usize> {
    let mut points = vec![0usize];
    for &b in boundaries {
        for candidate in [b.saturating_sub(1), b, b + 1] {
            if candidate < len {
                points.push(candidate);
            }
        }
    }
    points.sort_unstable();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_is_always_clean() {
        let inj = StorageInjector::disabled();
        assert!(!inj.is_enabled());
        for _ in 0..32 {
            assert_eq!(inj.on_write(100), WriteFault::Clean);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn injector_is_deterministic_in_its_seed() {
        let a = StorageInjector::seeded(7, 0.5, 0.5, 2);
        let b = StorageInjector::seeded(7, 0.5, 0.5, 2);
        let seq_a: Vec<WriteFault> = (0..64).map(|_| a.on_write(256)).collect();
        let seq_b: Vec<WriteFault> = (0..64).map(|_| b.on_write(256)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(a.injected() > 0, "p=0.5 over 64 ops must fire");
    }

    #[test]
    fn transient_bursts_are_consecutive_then_recoverable() {
        let inj = StorageInjector::seeded(3, 1.0, 1.0, 3);
        // Every op faults transiently with a burst of 3, and the attempt
        // after a paid-off burst is guaranteed clean (the medium is fine)
        // — so a retry budget of burst + 1 always recovers.
        let seq: Vec<WriteFault> = (0..8).map(|_| inj.on_write(64)).collect();
        assert_eq!(
            seq,
            [
                WriteFault::Transient,
                WriteFault::Transient,
                WriteFault::Transient,
                WriteFault::Clean,
                WriteFault::Transient,
                WriteFault::Transient,
                WriteFault::Transient,
                WriteFault::Clean,
            ]
        );
    }

    #[test]
    fn corruption_shapes_are_deterministic_and_typed() {
        let base: Vec<u8> = (0..200u8).collect();
        for kind in StorageFaultKind::STORAGE_PLANE {
            let mut a = base.clone();
            let mut b = base.clone();
            let da = corrupt_record_bytes(kind, 42, &mut a);
            let db = corrupt_record_bytes(kind, 42, &mut b);
            assert_eq!(a, b, "{kind}");
            assert_eq!(da, db, "{kind}");
            match kind {
                StorageFaultKind::TornWrite | StorageFaultKind::TruncatedRecord => {
                    assert!(a.len() < base.len(), "{kind} must shorten");
                }
                StorageFaultKind::BitFlippedPayload => {
                    assert_eq!(a.len(), base.len());
                    assert_ne!(a, base, "one bit must differ");
                }
                StorageFaultKind::StaleTempFile | StorageFaultKind::TransientIo => {
                    assert_eq!(a, base, "{kind} leaves committed bytes alone");
                }
            }
        }
    }

    #[test]
    fn kill_points_cover_boundaries_and_neighbors() {
        let points = kill_points(100, &[10, 50, 100]);
        assert!(points.contains(&0));
        assert!(points.contains(&9) && points.contains(&10) && points.contains(&11));
        assert!(points.contains(&99));
        assert!(!points.contains(&100), "killing at len is a clean write");
        assert!(points.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = StorageFaultKind::STORAGE_PLANE
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            [
                "torn-write",
                "truncated-record",
                "bit-flipped-payload",
                "stale-temp-file",
                "transient-io"
            ]
        );
    }
}
