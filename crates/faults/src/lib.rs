//! Deterministic fault injection for DSAGEN architecture description
//! graphs.
//!
//! Synthesized spatial accelerators are deployed into environments where
//! hardware degrades: a PE's functional unit fails timing, a link is fused
//! off after a manufacturing defect, a switch's configuration latch sticks,
//! an SRAM bank shrinks a FIFO. The co-design pipeline built around the
//! ADG (scheduler repair §V-A, cycle simulator, DSE) must degrade
//! *gracefully* under such damage instead of panicking.
//!
//! This crate provides the damage model:
//!
//! * [`FaultKind`] — four *structural* hardware faults (dead PE, severed
//!   link, stuck switch, shrunk FIFO) plus four *config-plane* faults
//!   (bit flip, truncated stream, duplicated frame, reordered frame) that
//!   corrupt bitstream words in flight instead of the graph;
//! * [`FaultPlan`] — a seeded, reproducible list of faults to apply;
//! * [`inject`] — applies a plan to an [`Adg`], producing a degraded graph
//!   that is **guaranteed to still pass [`Adg::validate`]** plus a
//!   structured [`FaultReport`] of what was applied and what was skipped;
//! * [`corrupt_stream`] (and [`corrupt_words`] / [`corrupt_frames`]) —
//!   applies the config-plane faults of a plan to a stream of bitstream
//!   words, so tests can drive the CRC/retry recovery paths of the
//!   configuration-integrity subsystem deterministically.
//!
//! The guarantee is enforced by *validate-rollback*: each fault is applied
//! to a scratch copy and kept only if the result still validates; a fault
//! with no viable target (for example severing the only config path to a
//! component) is recorded as skipped, never silently dropped and never
//! allowed to corrupt the graph.
//!
//! Determinism contract: `inject(adg, plan)` is a pure function of the
//! graph and `plan.seed` — the same inputs produce the same degraded graph
//! and the same report, which is what makes fault-ablation experiments
//! (repair-vs-reschedule under damage) reproducible.
//!
//! # Example
//!
//! ```
//! use dsagen_adg::presets;
//! use dsagen_faults::{inject, FaultKind, FaultPlan};
//!
//! let adg = presets::softbrain();
//! let plan = FaultPlan::new(0xDEAD).with(FaultKind::DeadPe).with(FaultKind::SeveredLink);
//! let (degraded, report) = inject(&adg, &plan);
//! degraded.validate().expect("degraded graphs always validate");
//! assert_eq!(report.applied.len() + report.skipped.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod schedule;
mod storage;

pub use schedule::{
    FaultLifetime, FaultSchedule, StormConfig, TimedFault, RUNTIME_KINDS, STORM_KINDS,
};
pub use storage::{
    corrupt_record_bytes, kill_points, StorageFaultKind, StorageInjector, WriteFault,
};

use std::fmt;

use dsagen_adg::{Adg, EdgeId, NodeId, NodeKind, Routing};
use dsagen_telemetry::{EventData, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A processing element dies entirely: the node and all its links are
    /// removed from the graph.
    DeadPe,
    /// A point-to-point connection is severed: one edge is removed.
    SeveredLink,
    /// A switch's input selector sticks: its routing matrix collapses so a
    /// single (randomly chosen) input port drives every output.
    StuckSwitch,
    /// A FIFO loses capacity: a sync or delay element's depth is halved
    /// (never below one entry).
    ShrunkFifo,
    /// Port-level: a single *input port* of a node dies — the link feeding
    /// that port is lost while the rest of the node keeps working. Finer
    /// grained than [`FaultKind::DeadPe`]: repair can reroute around the
    /// port instead of decommissioning the whole node.
    DeadPort,
    /// Port-level: one lane of a link sticks at a constant value — data
    /// still moves at full rate but every word crossing the lane is
    /// corrupted (silent corruption, caught by the residue check).
    StuckLane,
    /// Port-level: a link loses bandwidth but keeps working — it serves
    /// only `capacity` percent of cycles (marginal timing, a degraded
    /// SerDes lane). Affected regions throttle instead of stalling.
    DegradedLink {
        /// Percent of cycles the link still serves (clamped to 1..=100).
        capacity: u8,
    },
    /// Config-plane: one bit of one bitstream word flips in flight
    /// (SEU/crosstalk on the configuration network).
    BitFlip,
    /// Config-plane: the delivery stream is cut short — a suffix of frames
    /// never arrives (broadcast aborted mid-flight).
    TruncatedStream,
    /// Config-plane: one frame is delivered twice (retransmission glitch
    /// or a forked path re-merging).
    DuplicatedFrame,
    /// Config-plane: two adjacent frames swap places (out-of-order
    /// delivery across config-path branches).
    ReorderedFrame,
}

impl FaultKind {
    /// The structural (graph-level) fault kinds, in a fixed order (useful
    /// for exhaustive sweeps). Config-plane kinds are listed separately in
    /// [`FaultKind::CONFIG_PLANE`] so seeded structural plans stay stable.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::DeadPe,
        FaultKind::SeveredLink,
        FaultKind::StuckSwitch,
        FaultKind::ShrunkFifo,
    ];

    /// The config-plane fault kinds: they corrupt bitstream *words* in
    /// flight (see [`corrupt_stream`]) rather than the ADG itself.
    pub const CONFIG_PLANE: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::TruncatedStream,
        FaultKind::DuplicatedFrame,
        FaultKind::ReorderedFrame,
    ];

    /// The port/lane-scoped fault kinds: damage below node granularity,
    /// where repair can reroute around one port instead of decommissioning
    /// the whole component. Listed separately from [`FaultKind::ALL`] so
    /// existing seeded draws stay stable.
    pub const PORT_LEVEL: [FaultKind; 3] = [
        FaultKind::DeadPort,
        FaultKind::StuckLane,
        FaultKind::DegradedLink { capacity: 50 },
    ];

    /// Whether this kind scopes damage to a single port or lane (see
    /// [`FaultKind::PORT_LEVEL`]). Payload-carrying kinds match on the
    /// variant, not the payload.
    #[must_use]
    pub fn is_port_level(self) -> bool {
        matches!(
            self,
            FaultKind::DeadPort | FaultKind::StuckLane | FaultKind::DegradedLink { .. }
        )
    }

    /// Whether this kind targets the configuration plane (bitstream words)
    /// instead of the hardware graph.
    #[must_use]
    pub fn is_config_plane(self) -> bool {
        Self::CONFIG_PLANE.contains(&self)
    }

    /// Which plane this kind attacks, as a telemetry label:
    /// `"structural"` (hardware graph) or `"config"` (bitstream words).
    #[must_use]
    pub fn plane(self) -> &'static str {
        if self.is_config_plane() {
            "config"
        } else {
            "structural"
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::DeadPe => "dead-pe",
            FaultKind::SeveredLink => "severed-link",
            FaultKind::StuckSwitch => "stuck-switch",
            FaultKind::ShrunkFifo => "shrunk-fifo",
            FaultKind::DeadPort => "dead-port",
            FaultKind::StuckLane => "stuck-lane",
            FaultKind::DegradedLink { capacity } => {
                return write!(f, "degraded-link({capacity}%)");
            }
            FaultKind::BitFlip => "bit-flip",
            FaultKind::TruncatedStream => "truncated-stream",
            FaultKind::DuplicatedFrame => "duplicated-frame",
            FaultKind::ReorderedFrame => "reordered-frame",
        };
        f.write_str(s)
    }
}

/// A seeded, reproducible list of faults to inject.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for target selection. The same seed against the same graph
    /// always picks the same victims.
    pub seed: u64,
    /// Faults to apply, in order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one fault (builder style).
    #[must_use]
    pub fn with(mut self, kind: FaultKind) -> Self {
        self.faults.push(kind);
        self
    }

    /// A plan of `count` faults whose kinds are drawn uniformly from
    /// [`FaultKind::ALL`] using `seed` (the same seed also drives target
    /// selection during [`inject`]).
    #[must_use]
    pub fn random(seed: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF417_5EED);
        let faults = (0..count)
            .map(|_| FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())])
            .collect();
        FaultPlan { seed, faults }
    }

    /// A plan of `count` *config-plane* faults drawn uniformly from
    /// [`FaultKind::CONFIG_PLANE`] using `seed` (the same seed also drives
    /// target selection during [`corrupt_stream`]).
    #[must_use]
    pub fn random_config_plane(seed: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0F1_65EE);
        let faults = (0..count)
            .map(|_| FaultKind::CONFIG_PLANE[rng.gen_range(0..FaultKind::CONFIG_PLANE.len())])
            .collect();
        FaultPlan { seed, faults }
    }

    /// Whether the plan contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The hardware element a fault landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A node (PE, switch, sync, delay).
    Node(NodeId),
    /// An edge (link).
    Edge(EdgeId),
    /// A bitstream word, by index into the delivered stream (config-plane
    /// faults).
    Word(usize),
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Node(n) => write!(f, "{n}"),
            FaultTarget::Edge(e) => write!(f, "{e}"),
            FaultTarget::Word(w) => write!(f, "word[{w}]"),
        }
    }
}

/// One fault that was successfully applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// What kind of fault.
    pub kind: FaultKind,
    /// Which hardware element it hit.
    pub target: FaultTarget,
    /// Human-readable detail (for example "depth 16 -> 8").
    pub detail: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} ({})", self.kind, self.target, self.detail)
    }
}

/// One fault that could not be applied without breaking the graph's
/// composition rules, recorded instead of silently dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedFault {
    /// What kind of fault was requested.
    pub kind: FaultKind,
    /// Why no viable target existed.
    pub reason: String,
}

impl fmt::Display for SkippedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} skipped: {}", self.kind, self.reason)
    }
}

/// Structured record of an [`inject`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Faults applied, in plan order.
    pub applied: Vec<InjectedFault>,
    /// Faults skipped (no target survived validate-rollback), in plan order.
    pub skipped: Vec<SkippedFault>,
}

impl FaultReport {
    /// Node ids of every applied node-targeted fault.
    #[must_use]
    pub fn faulted_nodes(&self) -> Vec<NodeId> {
        self.applied
            .iter()
            .filter_map(|f| match f.target {
                FaultTarget::Node(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    /// Edge ids of every applied edge-targeted fault.
    #[must_use]
    pub fn faulted_edges(&self) -> Vec<EdgeId> {
        self.applied
            .iter()
            .filter_map(|f| match f.target {
                FaultTarget::Edge(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Word indices of every applied config-plane fault.
    #[must_use]
    pub fn faulted_words(&self) -> Vec<usize> {
        self.applied
            .iter()
            .filter_map(|f| match f.target {
                FaultTarget::Word(w) => Some(w),
                _ => None,
            })
            .collect()
    }

    /// Whether anything was applied.
    #[must_use]
    pub fn any_applied(&self) -> bool {
        !self.applied.is_empty()
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} applied, {} skipped",
            self.applied.len(),
            self.skipped.len()
        )?;
        for a in &self.applied {
            write!(f, "; {a}")?;
        }
        for s in &self.skipped {
            write!(f, "; {s}")?;
        }
        Ok(())
    }
}

/// Applies `plan` to `adg`, returning the degraded graph and a report.
///
/// The returned graph **always** passes [`Adg::validate`]: each fault is
/// tried against candidate targets in a seed-determined order and the first
/// application that keeps the graph valid wins; a fault with no valid
/// application is recorded in [`FaultReport::skipped`]. Node and edge ids
/// of surviving hardware are unchanged (the ADG tombstones removed slots),
/// so schedules made against the healthy graph can be repaired against the
/// degraded one.
#[must_use]
pub fn inject(adg: &Adg, plan: &FaultPlan) -> (Adg, FaultReport) {
    inject_with_telemetry(adg, plan, &Telemetry::disabled())
}

/// [`inject`] with structured telemetry: every plan entry emits exactly one
/// `fault` event in plan order — `fault/injected` (args: `kind`, `target`,
/// `plane`, `detail`) when applied, `fault/skipped` (args: `kind`, `plane`,
/// `reason`) when validate-rollback rejected it. The event log is therefore
/// *equivalent to the plan*: one event per requested fault, in order,
/// mirroring [`FaultReport`] exactly. Telemetry never affects the injection
/// itself — `inject_with_telemetry(adg, plan, tel)` returns byte-identical
/// results to `inject(adg, plan)`.
#[must_use]
pub fn inject_with_telemetry(adg: &Adg, plan: &FaultPlan, tel: &Telemetry) -> (Adg, FaultReport) {
    let mut current = adg.clone();
    let mut report = FaultReport::default();
    let mut rng = StdRng::seed_from_u64(plan.seed);
    for &kind in &plan.faults {
        match apply_one(&current, kind, &mut rng) {
            Ok((next, injected)) => {
                current = next;
                emit_injected(tel, &injected);
                report.applied.push(injected);
            }
            Err(reason) => {
                let skipped = SkippedFault { kind, reason };
                emit_skipped(tel, &skipped);
                report.skipped.push(skipped);
            }
        }
    }
    debug_assert!(current.validate().is_ok(), "inject must preserve validity");
    (current, report)
}

/// Emits one `fault/injected` event for an applied fault.
fn emit_injected(tel: &Telemetry, injected: &InjectedFault) {
    tel.emit(|| {
        EventData::new("fault", "injected")
            .arg("kind", injected.kind.to_string())
            .arg("target", injected.target.to_string())
            .arg("plane", injected.kind.plane())
            .arg("detail", injected.detail.clone())
    });
}

/// Emits one `fault/skipped` event for a rolled-back fault.
fn emit_skipped(tel: &Telemetry, skipped: &SkippedFault) {
    tel.emit(|| {
        EventData::new("fault", "skipped")
            .arg("kind", skipped.kind.to_string())
            .arg("plane", skipped.kind.plane())
            .arg("reason", skipped.reason.clone())
    });
}

/// Tries to apply one fault, returning the mutated graph on success.
fn apply_one(adg: &Adg, kind: FaultKind, rng: &mut StdRng) -> Result<(Adg, InjectedFault), String> {
    if kind.is_config_plane() {
        return Err(format!(
            "{kind} is a config-plane fault: it corrupts bitstream words, \
not the hardware graph — use corrupt_stream/corrupt_words/corrupt_frames"
        ));
    }
    match kind {
        FaultKind::DeadPe => {
            let candidates: Vec<NodeId> = adg.pes().collect();
            try_candidates(adg, kind, candidates, rng, |g, pe| {
                let label = g
                    .node(pe)
                    .and_then(|n| n.label.clone())
                    .unwrap_or_else(|| pe.to_string());
                g.remove_node(pe).map_err(|e| e.to_string())?;
                Ok(InjectedFault {
                    kind,
                    target: FaultTarget::Node(pe),
                    detail: format!("removed PE {label} and its links"),
                })
            })
        }
        FaultKind::SeveredLink => {
            // Control links carry commands, not datapath values; severing
            // one usually makes a whole region Unconfigurable, so prefer
            // datapath links (validate-rollback still guards the rest).
            let ctrl = adg.control();
            let candidates: Vec<EdgeId> = adg
                .edges()
                .filter(|e| Some(e.src) != ctrl && Some(e.dst) != ctrl)
                .map(dsagen_adg::Edge::id)
                .collect();
            try_candidates(adg, kind, candidates, rng, |g, eid| {
                let edge = *g.edge(eid).ok_or("edge vanished")?;
                g.remove_edge(eid).map_err(|e| e.to_string())?;
                Ok(InjectedFault {
                    kind,
                    target: FaultTarget::Edge(eid),
                    detail: format!("severed {} -> {}", edge.src, edge.dst),
                })
            })
        }
        FaultKind::StuckSwitch => {
            // Only switches with >1 input can meaningfully stick.
            let candidates: Vec<NodeId> = adg
                .switches()
                .filter(|s| adg.in_edges(*s).count() > 1)
                .collect();
            let stuck_pick = rng.next_u64();
            try_candidates(adg, kind, candidates, rng, move |g, sw| {
                let inputs = g.in_edges(sw).count();
                let outputs = g.out_edges(sw).count().max(1);
                let stuck = (stuck_pick % inputs as u64) as usize;
                let matrix: Vec<Vec<bool>> = (0..inputs)
                    .map(|i| vec![i == stuck; outputs])
                    .collect();
                match g.node_mut(sw).map(|n| &mut n.kind) {
                    Some(NodeKind::Switch(spec)) => {
                        spec.routing = Routing::Matrix(matrix);
                        Ok(InjectedFault {
                            kind,
                            target: FaultTarget::Node(sw),
                            detail: format!("input {stuck}/{inputs} stuck to all outputs"),
                        })
                    }
                    _ => Err("candidate is not a switch".to_string()),
                }
            })
        }
        FaultKind::ShrunkFifo => {
            // Syncs and delay FIFOs with depth > 1 can shrink.
            let candidates: Vec<NodeId> = adg
                .nodes()
                .filter(|n| match &n.kind {
                    NodeKind::Sync(sy) => sy.depth > 1,
                    NodeKind::Delay(d) => d.depth > 1,
                    _ => false,
                })
                .map(dsagen_adg::Node::id)
                .collect();
            try_candidates(adg, kind, candidates, rng, |g, node| {
                match g.node_mut(node).map(|n| &mut n.kind) {
                    Some(NodeKind::Sync(sy)) => {
                        let old = sy.depth;
                        sy.depth = (sy.depth / 2).max(1);
                        Ok(InjectedFault {
                            kind,
                            target: FaultTarget::Node(node),
                            detail: format!("sync depth {old} -> {}", sy.depth),
                        })
                    }
                    Some(NodeKind::Delay(d)) => {
                        let old = d.depth;
                        d.depth = (d.depth / 2).max(1);
                        Ok(InjectedFault {
                            kind,
                            target: FaultTarget::Node(node),
                            detail: format!("delay depth {old} -> {}", d.depth),
                        })
                    }
                    _ => Err("candidate is not a FIFO".to_string()),
                }
            })
        }
        FaultKind::DeadPort => {
            // A dead input port loses the one link feeding it. Prefer
            // ports whose owner has alternatives (in-degree > 1), so the
            // node itself stays useful — that is what distinguishes a
            // port fault from a severed link.
            let ctrl = adg.control();
            let candidates: Vec<EdgeId> = adg
                .edges()
                .filter(|e| Some(e.src) != ctrl && Some(e.dst) != ctrl)
                .filter(|e| adg.in_edges(e.dst).count() > 1)
                .map(dsagen_adg::Edge::id)
                .collect();
            try_candidates(adg, kind, candidates, rng, |g, eid| {
                let edge = *g.edge(eid).ok_or("edge vanished")?;
                let port = g.input_port_of(eid).ok_or("port vanished")?;
                g.remove_edge(eid).map_err(|e| e.to_string())?;
                Ok(InjectedFault {
                    kind,
                    target: FaultTarget::Edge(eid),
                    detail: format!(
                        "input port {port} of {} dead (link from {} lost)",
                        edge.dst, edge.src
                    ),
                })
            })
        }
        FaultKind::StuckLane | FaultKind::DegradedLink { .. } => Err(format!(
            "{kind} is a runtime-plane fault: the link still exists \
structurally — use a FaultSchedule and the runtime simulator"
        )),
        // Config-plane kinds were rejected above.
        _ => Err(format!("{kind} has no structural application")),
    }
}

/// Applies the config-plane faults of `plan` to a stream of bitstream
/// words, returning the corrupted stream and a report.
///
/// `frame_len` is the delivery granularity in words: `1` corrupts the raw
/// word stream, `2` matches the CRC-framed transport
/// (`dsagen_hwgen::FRAME_WORDS`). Truncation, duplication, and reordering
/// operate on whole frames; a bit flip lands on a single bit of a single
/// word. Structural kinds in the plan are recorded as skipped (they need a
/// graph, not a stream), as are config-plane kinds the stream is too short
/// to express (for example reordering a one-frame stream).
///
/// Deterministic: the same `(words, frame_len, plan.seed)` always produces
/// the same corruption.
#[must_use]
pub fn corrupt_stream(words: &[u64], frame_len: usize, plan: &FaultPlan) -> (Vec<u64>, FaultReport) {
    corrupt_stream_with_telemetry(words, frame_len, plan, &Telemetry::disabled())
}

/// [`corrupt_stream`] with structured telemetry, under the same
/// log/plan-equivalence contract as [`inject_with_telemetry`]: one
/// `fault/injected` or `fault/skipped` event per plan entry, in order,
/// mirroring the returned [`FaultReport`]. Telemetry never changes the
/// corruption itself.
#[must_use]
pub fn corrupt_stream_with_telemetry(
    words: &[u64],
    frame_len: usize,
    plan: &FaultPlan,
    tel: &Telemetry,
) -> (Vec<u64>, FaultReport) {
    let frame_len = frame_len.max(1);
    let mut stream: Vec<u64> = words.to_vec();
    let mut report = FaultReport::default();
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xB17_F11B);
    for &kind in &plan.faults {
        match corrupt_one(&mut stream, frame_len, kind, &mut rng) {
            Ok(injected) => {
                emit_injected(tel, &injected);
                report.applied.push(injected);
            }
            Err(reason) => {
                let skipped = SkippedFault { kind, reason };
                emit_skipped(tel, &skipped);
                report.skipped.push(skipped);
            }
        }
    }
    (stream, report)
}

/// [`corrupt_stream`] at word granularity (`frame_len = 1`): faults on a
/// raw, unframed bitstream.
#[must_use]
pub fn corrupt_words(words: &[u64], plan: &FaultPlan) -> (Vec<u64>, FaultReport) {
    corrupt_stream(words, 1, plan)
}

/// [`corrupt_stream`] at CRC-frame granularity (`frame_len = 2`, matching
/// `dsagen_hwgen::FRAME_WORDS`): faults on the framed transport stream.
#[must_use]
pub fn corrupt_frames(words: &[u64], plan: &FaultPlan) -> (Vec<u64>, FaultReport) {
    corrupt_stream(words, 2, plan)
}

/// Applies one config-plane fault to `stream` in place.
fn corrupt_one(
    stream: &mut Vec<u64>,
    frame_len: usize,
    kind: FaultKind,
    rng: &mut StdRng,
) -> Result<InjectedFault, String> {
    if !kind.is_config_plane() {
        return Err(format!(
            "{kind} is a structural fault: it targets the hardware graph, \
not the word stream — use inject"
        ));
    }
    let frames = stream.len() / frame_len;
    match kind {
        FaultKind::BitFlip => {
            if stream.is_empty() {
                return Err("stream is empty: no word to flip".to_string());
            }
            let w = rng.gen_range(0..stream.len());
            let b = rng.gen_range(0..64u32);
            stream[w] ^= 1u64 << b;
            Ok(InjectedFault {
                kind,
                target: FaultTarget::Word(w),
                detail: format!("flipped bit {b} of word {w}"),
            })
        }
        FaultKind::TruncatedStream => {
            if frames < 2 {
                return Err(format!(
                    "stream has {frames} frame(s): truncation would erase it entirely"
                ));
            }
            // Keep at least one frame, drop at least one.
            let keep = rng.gen_range(1..frames);
            let cut_words = keep * frame_len;
            let dropped = stream.len() - cut_words;
            stream.truncate(cut_words);
            Ok(InjectedFault {
                kind,
                target: FaultTarget::Word(cut_words),
                detail: format!("dropped {dropped} trailing word(s) ({} frame(s))", frames - keep),
            })
        }
        FaultKind::DuplicatedFrame => {
            if frames == 0 {
                return Err("stream has no complete frame to duplicate".to_string());
            }
            let f = rng.gen_range(0..frames);
            let start = f * frame_len;
            let copy: Vec<u64> = stream[start..start + frame_len].to_vec();
            // Insert the copy immediately after the original frame.
            let at = start + frame_len;
            for (i, w) in copy.into_iter().enumerate() {
                stream.insert(at + i, w);
            }
            Ok(InjectedFault {
                kind,
                target: FaultTarget::Word(start),
                detail: format!("duplicated frame {f} ({frame_len} word(s))"),
            })
        }
        FaultKind::ReorderedFrame => {
            if frames < 2 {
                return Err(format!(
                    "stream has {frames} frame(s): nothing to reorder"
                ));
            }
            let f = rng.gen_range(0..frames - 1);
            let a = f * frame_len;
            let b = (f + 1) * frame_len;
            for i in 0..frame_len {
                stream.swap(a + i, b + i);
            }
            Ok(InjectedFault {
                kind,
                target: FaultTarget::Word(a),
                detail: format!("swapped frames {f} and {}", f + 1),
            })
        }
        _ => Err(format!("{kind} is not a config-plane fault")),
    }
}

/// Validate-rollback driver: shuffles `candidates` with `rng`, applies
/// `mutate` to a scratch copy per candidate, and returns the first result
/// that still validates. All candidates failing (or none existing) is an
/// `Err` with a reason.
fn try_candidates<T: Copy>(
    adg: &Adg,
    kind: FaultKind,
    mut candidates: Vec<T>,
    rng: &mut StdRng,
    mutate: impl Fn(&mut Adg, T) -> Result<InjectedFault, String>,
) -> Result<(Adg, InjectedFault), String> {
    use rand::seq::SliceRandom;
    if candidates.is_empty() {
        return Err(format!("no viable target for {kind}"));
    }
    candidates.shuffle(rng);
    let mut last_reason = String::new();
    for &cand in &candidates {
        let mut scratch = adg.clone();
        match mutate(&mut scratch, cand) {
            Ok(injected) => match scratch.validate() {
                Ok(()) => return Ok((scratch, injected)),
                Err(e) => last_reason = format!("candidate breaks validation: {e}"),
            },
            Err(e) => last_reason = e,
        }
    }
    Err(format!(
        "all {} candidates for {kind} rolled back ({last_reason})",
        candidates.len()
    ))
}

// `rand`'s RngCore is deliberately minimal; re-expose next_u64 for the
// stuck-input pick above without importing the trait at every call site.
trait NextU64 {
    fn next_u64(&mut self) -> u64;
}
impl NextU64 for StdRng {
    fn next_u64(&mut self) -> u64 {
        <StdRng as rand::RngCore>::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use dsagen_adg::presets;

    use super::*;

    fn all_presets() -> Vec<Adg> {
        vec![
            presets::softbrain(),
            presets::maeri(),
            presets::triggered(),
            presets::spu(),
            presets::revel(),
            presets::plasticine(),
            presets::tabla(),
        ]
    }

    #[test]
    fn injection_is_deterministic_given_seed() {
        let adg = presets::softbrain();
        let plan = FaultPlan::random(42, 4);
        let (a1, r1) = inject(&adg, &plan);
        let (a2, r2) = inject(&adg, &plan);
        assert_eq!(a1, a2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_pick_different_victims() {
        let adg = presets::softbrain();
        let hit: Vec<_> = (0..8)
            .map(|s| {
                let plan = FaultPlan::new(s).with(FaultKind::DeadPe);
                let (_, r) = inject(&adg, &plan);
                r.faulted_nodes()
            })
            .collect();
        assert!(
            hit.windows(2).any(|w| w[0] != w[1]),
            "eight seeds never diverged: {hit:?}"
        );
    }

    #[test]
    fn every_fault_kind_keeps_every_preset_valid() {
        for adg in all_presets() {
            for kind in FaultKind::ALL {
                let plan = FaultPlan::new(7).with(kind);
                let (degraded, report) = inject(&adg, &plan);
                degraded
                    .validate()
                    .unwrap_or_else(|e| panic!("{kind} broke {}: {e}", adg.name()));
                assert_eq!(
                    report.applied.len() + report.skipped.len(),
                    1,
                    "{kind} on {} unaccounted",
                    adg.name()
                );
            }
        }
    }

    #[test]
    fn dead_pe_removes_exactly_one_pe() {
        let adg = presets::softbrain();
        let before = adg.pes().count();
        let (degraded, report) = inject(&adg, &FaultPlan::new(3).with(FaultKind::DeadPe));
        assert_eq!(degraded.pes().count(), before - 1);
        assert_eq!(report.faulted_nodes().len(), 1);
    }

    #[test]
    fn severed_link_removes_exactly_one_edge() {
        let adg = presets::softbrain();
        let before = adg.edge_count();
        let (degraded, report) = inject(&adg, &FaultPlan::new(3).with(FaultKind::SeveredLink));
        assert_eq!(degraded.edge_count(), before - 1);
        assert_eq!(report.faulted_edges().len(), 1);
    }

    #[test]
    fn shrunk_fifo_halves_depth() {
        let adg = presets::softbrain();
        let (degraded, report) = inject(&adg, &FaultPlan::new(9).with(FaultKind::ShrunkFifo));
        let [node] = report.faulted_nodes()[..] else {
            panic!("expected one faulted node: {report}");
        };
        let (old_depth, new_depth) = match (
            adg.node(node).map(|n| &n.kind),
            degraded.node(node).map(|n| &n.kind),
        ) {
            (Some(NodeKind::Sync(a)), Some(NodeKind::Sync(b))) => {
                (u32::from(a.depth), u32::from(b.depth))
            }
            (Some(NodeKind::Delay(a)), Some(NodeKind::Delay(b))) => {
                (u32::from(a.depth), u32::from(b.depth))
            }
            other => panic!("fifo fault hit a non-fifo: {other:?}"),
        };
        assert_eq!(new_depth, (old_depth / 2).max(1));
    }

    #[test]
    fn stuck_switch_restricts_routing() {
        let adg = presets::softbrain();
        let (degraded, report) = inject(&adg, &FaultPlan::new(5).with(FaultKind::StuckSwitch));
        let [node] = report.faulted_nodes()[..] else {
            panic!("expected one faulted switch: {report}");
        };
        match degraded.node(node).map(|n| &n.kind) {
            Some(NodeKind::Switch(sw)) => {
                let inputs = degraded.in_edges(node).count();
                let live: usize = (0..inputs).filter(|&i| sw.routing.allows(i, 0)).count();
                assert_eq!(live, 1, "exactly one input should survive");
            }
            other => panic!("stuck-switch hit a non-switch: {other:?}"),
        }
    }

    #[test]
    fn dead_port_removes_one_link_and_keeps_the_node() {
        let adg = presets::softbrain();
        let before = adg.edge_count();
        let (degraded, report) = inject(&adg, &FaultPlan::new(4).with(FaultKind::DeadPort));
        assert_eq!(degraded.edge_count(), before - 1, "{report}");
        let [edge] = report.faulted_edges()[..] else {
            panic!("expected one faulted edge: {report}");
        };
        let victim = adg.edge(edge).expect("edge existed pre-fault");
        // The port's owner survives: only the link feeding it is gone.
        assert!(degraded.node(victim.dst).is_some(), "owner decommissioned");
        assert!(degraded.node(victim.src).is_some(), "driver decommissioned");
        assert!(
            degraded.in_edges(victim.dst).count() >= 1,
            "dead-port must prefer nodes with surviving ports"
        );
    }

    #[test]
    fn port_level_kinds_are_partitioned() {
        for kind in FaultKind::PORT_LEVEL {
            assert!(kind.is_port_level(), "{kind} misclassified");
            assert!(!kind.is_config_plane(), "{kind} misclassified");
            assert_eq!(kind.plane(), "structural");
        }
        for kind in FaultKind::ALL.iter().chain(&FaultKind::CONFIG_PLANE) {
            assert!(!kind.is_port_level(), "{kind} misclassified");
        }
        // Payload does not affect classification.
        assert!(FaultKind::DegradedLink { capacity: 3 }.is_port_level());
    }

    #[test]
    fn runtime_plane_port_kinds_skip_statically() {
        let adg = presets::softbrain();
        for kind in [
            FaultKind::StuckLane,
            FaultKind::DegradedLink { capacity: 40 },
        ] {
            let (degraded, report) = inject(&adg, &FaultPlan::new(1).with(kind));
            assert_eq!(degraded, adg, "{kind} must not touch the graph");
            assert_eq!(report.skipped.len(), 1, "{report}");
            assert!(
                report.skipped[0].reason.contains("runtime-plane"),
                "{report}"
            );
        }
    }

    #[test]
    fn degraded_link_display_carries_capacity() {
        assert_eq!(
            FaultKind::DegradedLink { capacity: 35 }.to_string(),
            "degraded-link(35%)"
        );
        assert_eq!(FaultKind::DeadPort.to_string(), "dead-port");
        assert_eq!(FaultKind::StuckLane.to_string(), "stuck-lane");
    }

    #[test]
    fn impossible_faults_are_skipped_not_dropped() {
        // A minimal tree-shaped graph: no switch to stick, only depth-1
        // FIFOs, and every datapath edge is a cut edge whose removal
        // orphans a component from the control core.
        use dsagen_adg::{CtrlSpec, MemSpec, OpSet, PeSpec, Scheduling, Sharing, SyncSpec};
        let mut adg = Adg::new("minimal");
        let ctrl = adg.add_control(CtrlSpec::new());
        let mem = adg.add_memory(MemSpec::main_memory());
        let inp = adg.add_sync(SyncSpec::new(1));
        let pe = adg.add_pe(PeSpec::new(
            Scheduling::Static,
            Sharing::Dedicated,
            OpSet::integer_alu(),
        ));
        adg.add_link(mem, inp).unwrap();
        adg.add_link(inp, pe).unwrap();
        adg.add_link(ctrl, mem).unwrap();
        adg.validate().unwrap();

        let plan = FaultPlan::new(1)
            .with(FaultKind::StuckSwitch)
            .with(FaultKind::ShrunkFifo)
            .with(FaultKind::SeveredLink);
        let (degraded, report) = inject(&adg, &plan);
        degraded.validate().unwrap();
        // No switches, depth-1 FIFOs, and every datapath edge is a cut
        // edge whose removal orphans a component -> all three skip.
        assert_eq!(report.applied.len(), 0, "{report}");
        assert_eq!(report.skipped.len(), 3, "{report}");
    }

    #[test]
    fn surviving_ids_are_stable() {
        let adg = presets::softbrain();
        let (degraded, report) = inject(&adg, &FaultPlan::new(11).with(FaultKind::DeadPe));
        let dead = report.faulted_nodes()[0];
        for node in adg.nodes() {
            if node.id() == dead {
                assert!(degraded.node(node.id()).is_none());
            } else {
                assert_eq!(
                    degraded.node(node.id()).map(|n| &n.kind),
                    Some(&node.kind),
                    "surviving node {} changed",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn random_plan_is_reproducible() {
        assert_eq!(FaultPlan::random(99, 6), FaultPlan::random(99, 6));
        assert_eq!(FaultPlan::random(99, 6).faults.len(), 6);
    }

    #[test]
    fn display_summarizes_report() {
        let adg = presets::softbrain();
        let (_, report) = inject(&adg, &FaultPlan::new(2).with(FaultKind::DeadPe));
        let s = report.to_string();
        assert!(s.contains("1 applied"), "{s}");
        assert!(s.contains("dead-pe"), "{s}");
    }

    // ---- config-plane injectors ----------------------------------------

    fn sample_stream(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
    }

    #[test]
    fn config_plane_kinds_are_partitioned_from_structural() {
        for kind in FaultKind::ALL {
            assert!(!kind.is_config_plane(), "{kind} misclassified");
        }
        for kind in FaultKind::CONFIG_PLANE {
            assert!(kind.is_config_plane(), "{kind} misclassified");
        }
    }

    #[test]
    fn config_plane_faults_skip_on_graphs() {
        let adg = presets::softbrain();
        for kind in FaultKind::CONFIG_PLANE {
            let (degraded, report) = inject(&adg, &FaultPlan::new(1).with(kind));
            assert_eq!(degraded, adg, "{kind} must not touch the graph");
            assert_eq!(report.applied.len(), 0, "{report}");
            assert_eq!(report.skipped.len(), 1, "{report}");
        }
    }

    #[test]
    fn structural_faults_skip_on_streams() {
        let words = sample_stream(8);
        for kind in FaultKind::ALL {
            let (out, report) = corrupt_words(&words, &FaultPlan::new(1).with(kind));
            assert_eq!(out, words, "{kind} must not touch the stream");
            assert_eq!(report.skipped.len(), 1, "{report}");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let words = sample_stream(16);
        let (out, report) = corrupt_words(&words, &FaultPlan::new(5).with(FaultKind::BitFlip));
        assert_eq!(out.len(), words.len());
        let flipped: u32 = words
            .iter()
            .zip(&out)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "{report}");
        assert_eq!(report.faulted_words().len(), 1);
    }

    #[test]
    fn truncation_drops_whole_frames_and_keeps_a_prefix() {
        let words = sample_stream(12); // 6 frames of 2
        let (out, report) =
            corrupt_frames(&words, &FaultPlan::new(7).with(FaultKind::TruncatedStream));
        assert!(out.len() < words.len(), "{report}");
        assert_eq!(out.len() % 2, 0, "must cut on a frame boundary");
        assert_eq!(&words[..out.len()], &out[..], "prefix must be intact");
    }

    #[test]
    fn duplication_inserts_one_frame_copy() {
        let words = sample_stream(10);
        let (out, report) =
            corrupt_frames(&words, &FaultPlan::new(3).with(FaultKind::DuplicatedFrame));
        assert_eq!(out.len(), words.len() + 2, "{report}");
        let [start] = report.faulted_words()[..] else {
            panic!("expected one word target: {report}");
        };
        assert_eq!(&out[start..start + 2], &out[start + 2..start + 4]);
    }

    #[test]
    fn reordering_swaps_adjacent_frames() {
        let words = sample_stream(10);
        let (out, report) =
            corrupt_frames(&words, &FaultPlan::new(9).with(FaultKind::ReorderedFrame));
        assert_eq!(out.len(), words.len(), "{report}");
        assert_ne!(out, words);
        let mut sorted_a = words.clone();
        let mut sorted_b = out.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b, "reorder must be a permutation");
    }

    #[test]
    fn short_streams_skip_with_typed_reason() {
        // One frame: nothing to truncate or reorder.
        let words = sample_stream(2);
        for kind in [FaultKind::TruncatedStream, FaultKind::ReorderedFrame] {
            let (out, report) = corrupt_frames(&words, &FaultPlan::new(1).with(kind));
            assert_eq!(out, words);
            assert_eq!(report.skipped.len(), 1, "{report}");
        }
        // Empty stream: even a bit flip skips.
        let (out, report) = corrupt_words(&[], &FaultPlan::new(1).with(FaultKind::BitFlip));
        assert!(out.is_empty());
        assert_eq!(report.skipped.len(), 1, "{report}");
    }

    // ---- telemetry --------------------------------------------------------

    /// The `(name, kind)` pairs of every `fault` event in a log, in
    /// emission order.
    fn fault_log(tel: &Telemetry) -> Vec<(String, String)> {
        tel.events()
            .iter()
            .filter(|e| e.cat == "fault")
            .map(|e| {
                let kind = e
                    .args
                    .iter()
                    .find(|(k, _)| *k == "kind")
                    .map(|(_, v)| v.to_string())
                    .unwrap_or_default();
                (e.name.clone(), kind.trim_matches('"').to_string())
            })
            .collect()
    }

    /// Asserts log/plan (and log/report) equivalence: one `fault` event
    /// per plan entry, kinds in plan order, and the injected/skipped
    /// subsequences matching the report's applied/skipped lists exactly.
    fn assert_log_matches(log: &[(String, String)], plan: &FaultPlan, report: &FaultReport) {
        assert_eq!(log.len(), plan.faults.len(), "{report}");
        for (i, (_, kind)) in log.iter().enumerate() {
            assert_eq!(kind, &plan.faults[i].to_string(), "event {i} kind");
        }
        let injected: Vec<&String> = log
            .iter()
            .filter(|(n, _)| n == "injected")
            .map(|(_, k)| k)
            .collect();
        let skipped: Vec<&String> = log
            .iter()
            .filter(|(n, _)| n == "skipped")
            .map(|(_, k)| k)
            .collect();
        let applied_kinds: Vec<String> = report.applied.iter().map(|a| a.kind.to_string()).collect();
        let skipped_kinds: Vec<String> = report.skipped.iter().map(|s| s.kind.to_string()).collect();
        assert_eq!(injected, applied_kinds.iter().collect::<Vec<_>>(), "{report}");
        assert_eq!(skipped, skipped_kinds.iter().collect::<Vec<_>>(), "{report}");
    }

    #[test]
    fn telemetry_log_is_equivalent_to_plan() {
        let adg = presets::softbrain();
        for seed in 0..4u64 {
            let plan = FaultPlan::random(seed, 5);
            let tel = Telemetry::in_memory();
            let (degraded, report) = inject_with_telemetry(&adg, &plan, &tel);
            // Telemetry is invisible: identical results to the plain call.
            let (plain, plain_report) = inject(&adg, &plan);
            assert_eq!(degraded, plain);
            assert_eq!(report, plain_report);
            // Log/plan equivalence: one event per plan entry, in order,
            // kinds matching the plan exactly.
            assert_log_matches(&fault_log(&tel), &plan, &report);
        }
    }

    #[test]
    fn stream_corruption_telemetry_log_is_equivalent_to_plan() {
        let words = sample_stream(12);
        let plan = FaultPlan::random_config_plane(0xFACE, 4);
        let tel = Telemetry::in_memory();
        let (stream, report) = corrupt_stream_with_telemetry(&words, 2, &plan, &tel);
        let (plain, plain_report) = corrupt_frames(&words, &plan);
        assert_eq!(stream, plain);
        assert_eq!(report, plain_report);
        assert_log_matches(&fault_log(&tel), &plan, &report);
    }

    #[test]
    fn stream_corruption_is_deterministic() {
        let words = sample_stream(20);
        let plan = FaultPlan::random_config_plane(0xABC, 5);
        assert_eq!(plan.faults.len(), 5);
        assert!(plan.faults.iter().all(|k| k.is_config_plane()));
        let (a, ra) = corrupt_frames(&words, &plan);
        let (b, rb) = corrupt_frames(&words, &plan);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
