//! Temporal fault schedules: *when* a fault strikes and *how long* it
//! lives, layered on the structural damage model of [`FaultPlan`].
//!
//! [`FaultPlan`] describes damage that exists before anything runs — the
//! pre-silicon / pre-compilation view used by `inject`. A deployed
//! accelerator also degrades *mid-execution*: a PE burns out after a
//! million cycles, a link flakes intermittently under thermal stress, a
//! transient particle strike corrupts a window of results and then
//! clears. [`FaultSchedule`] captures that temporal dimension: each
//! [`TimedFault`] is a structural fault kind plus an **arrival cycle**
//! and a [`FaultLifetime`] (transient, intermittent, or permanent).
//!
//! The schedule itself is hardware-agnostic — victims are resolved
//! deterministically against a concrete (ADG, schedule) pair by the
//! runtime simulator (`dsagen_sim::runtime`), using [`FaultSchedule::seed`]
//! so the same schedule always strikes the same hardware. The
//! [`FaultSchedule::structural_plan`] view projects the permanent faults
//! back onto a plain [`FaultPlan`] for tools that only understand static
//! damage.
//!
//! Determinism contract: every function here is a pure function of the
//! seed — the same `(seed, count, horizon)` always yields the same
//! schedule, which is what makes recovery experiments reproducible.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{FaultKind, FaultPlan};

/// How long a runtime fault stays active after its arrival cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultLifetime {
    /// Active for `duration` cycles starting at the arrival cycle, then
    /// clears (particle strike, voltage droop).
    Transient {
        /// Active cycles after arrival.
        duration: u64,
    },
    /// Active for the first `duty` cycles of every `period`-cycle window
    /// after arrival (thermal flakiness, marginal timing).
    Intermittent {
        /// Window length in cycles.
        period: u64,
        /// Active cycles at the start of each window (clamped to
        /// `period`).
        duty: u64,
    },
    /// Active forever once arrived (electromigration, burned-out FU).
    Permanent,
}

impl FaultLifetime {
    /// Whether a fault with this lifetime, arrived at `arrival`, is
    /// active at `cycle`.
    #[must_use]
    pub fn active(self, arrival: u64, cycle: u64) -> bool {
        if cycle < arrival {
            return false;
        }
        let since = cycle - arrival;
        match self {
            FaultLifetime::Transient { duration } => since < duration,
            FaultLifetime::Intermittent { period, duty } => {
                let period = period.max(1);
                since % period < duty.clamp(1, period)
            }
            FaultLifetime::Permanent => true,
        }
    }

    /// Whether the fault never clears on its own.
    #[must_use]
    pub fn is_permanent(self) -> bool {
        matches!(self, FaultLifetime::Permanent)
    }
}

impl fmt::Display for FaultLifetime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultLifetime::Transient { duration } => write!(f, "transient({duration})"),
            FaultLifetime::Intermittent { period, duty } => {
                write!(f, "intermittent({duty}/{period})")
            }
            FaultLifetime::Permanent => f.write_str("permanent"),
        }
    }
}

/// One structural fault with an arrival time and a lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulated cycle at which the fault first strikes (0 = present
    /// from the first executed cycle).
    pub arrival: u64,
    /// How long the fault stays active.
    pub lifetime: FaultLifetime,
    /// What breaks. Only structural kinds are meaningful at runtime;
    /// config-plane kinds are rejected by the runtime resolver.
    pub kind: FaultKind,
}

impl TimedFault {
    /// Whether the fault is active at `cycle`.
    #[must_use]
    pub fn active_at(&self, cycle: u64) -> bool {
        self.lifetime.active(self.arrival, cycle)
    }
}

impl fmt::Display for TimedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{} ({})", self.kind, self.arrival, self.lifetime)
    }
}

/// The runtime fault kinds a [`FaultSchedule::random`] draw can produce.
///
/// * [`FaultKind::DeadPe`] / [`FaultKind::SeveredLink`] are **blocking**
///   faults: the hardware element stops moving data, so affected regions
///   stall and the progress watchdog catches them.
/// * [`FaultKind::StuckSwitch`] is a **silent-corruption** fault: routing
///   still moves data but delivers the wrong operands, so affected
///   regions keep firing and produce poisoned results that only a
///   result-residue check catches.
pub const RUNTIME_KINDS: [FaultKind; 3] = [
    FaultKind::DeadPe,
    FaultKind::SeveredLink,
    FaultKind::StuckSwitch,
];

/// The fault kinds a [`FaultSchedule::storm`] draw can produce: the
/// node/link kinds of [`RUNTIME_KINDS`] plus the port/lane-scoped kinds
/// ([`FaultKind::DeadPort`], [`FaultKind::StuckLane`],
/// [`FaultKind::DegradedLink`]) that exercise the repair ladder's
/// port-mask rungs. Kept separate from [`RUNTIME_KINDS`] so existing
/// seeded [`FaultSchedule::random`] draws stay stable.
pub const STORM_KINDS: [FaultKind; 6] = [
    FaultKind::DeadPe,
    FaultKind::SeveredLink,
    FaultKind::StuckSwitch,
    FaultKind::DeadPort,
    FaultKind::StuckLane,
    FaultKind::DegradedLink { capacity: 50 },
];

/// Shape of a multi-fault storm for [`FaultSchedule::storm`].
///
/// A storm is a sequence of *bursts*: groups of faults whose arrivals
/// cluster within [`StormConfig::spread`] cycles of a shared burst center
/// (correlated neighbors — one thermal event or voltage droop taking out
/// several elements at once). Burst centers are spaced evenly across the
/// horizon with seed-derived jitter. With [`StormConfig::escalate`] set,
/// early bursts lean transient and later bursts lean permanent, modelling
/// progressive wear-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Number of bursts spread across the horizon.
    pub bursts: usize,
    /// Faults per burst.
    pub burst_size: usize,
    /// Cycle window the storm spans; burst centers land inside it.
    pub horizon: u64,
    /// Maximum cycles between a burst's center and its members' arrivals.
    pub spread: u64,
    /// Whether lifetimes escalate from transient toward permanent as the
    /// storm progresses (false: uniform mix like [`FaultSchedule::random`]).
    pub escalate: bool,
    /// Whether to draw kinds from [`STORM_KINDS`] (true) or only the
    /// node/link kinds of [`RUNTIME_KINDS`] (false).
    pub port_faults: bool,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            bursts: 3,
            burst_size: 2,
            horizon: 4096,
            spread: 32,
            escalate: true,
            port_faults: true,
        }
    }
}

/// A seeded, reproducible schedule of mid-execution faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for victim resolution: the same seed against the same
    /// (ADG, schedule) pair always strikes the same hardware.
    pub seed: u64,
    /// Faults in arrival order (not enforced; the runtime sorts by
    /// arrival internally where it matters).
    pub faults: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule with the given victim-resolution seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one timed fault (builder style).
    #[must_use]
    pub fn with(mut self, arrival: u64, lifetime: FaultLifetime, kind: FaultKind) -> Self {
        self.faults.push(TimedFault {
            arrival,
            lifetime,
            kind,
        });
        self
    }

    /// A schedule of `count` faults with kinds drawn uniformly from
    /// [`RUNTIME_KINDS`], arrivals uniform in `[1, horizon)`, and
    /// lifetimes mixed (≈⅓ transient, ⅓ intermittent, ⅓ permanent) with
    /// seed-derived durations. Deterministic in `(seed, count, horizon)`.
    #[must_use]
    pub fn random(seed: u64, count: usize, horizon: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E3A_0F42_51C6_88DDu64);
        let horizon = horizon.max(2);
        let faults = (0..count)
            .map(|_| {
                let kind = RUNTIME_KINDS[rng.gen_range(0..RUNTIME_KINDS.len())];
                let arrival = rng.gen_range(1..horizon);
                let lifetime = match rng.gen_range(0..3u8) {
                    0 => FaultLifetime::Transient {
                        duration: rng.gen_range(16..512u64),
                    },
                    1 => FaultLifetime::Intermittent {
                        period: rng.gen_range(64..512u64),
                        duty: rng.gen_range(8..64u64),
                    },
                    _ => FaultLifetime::Permanent,
                };
                TimedFault {
                    arrival,
                    lifetime,
                    kind,
                }
            })
            .collect();
        FaultSchedule { seed, faults }
    }

    /// A seeded multi-fault storm shaped by `cfg`: bursts of correlated
    /// arrivals with (optionally) escalating permanence. Deterministic in
    /// `(seed, cfg)`, and **prefix-stable**: truncating the fault list to
    /// its first `k` entries yields exactly the first `k` faults every
    /// richer storm from the same `(seed, cfg)` starts with — which is
    /// what lets soak tests assert monotonic degradation over growing
    /// storm prefixes.
    #[must_use]
    pub fn storm(seed: u64, cfg: &StormConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5707_A11E_D5A6_E401u64);
        let bursts = cfg.bursts.max(1);
        let horizon = cfg.horizon.max(2);
        let kinds: &[FaultKind] = if cfg.port_faults {
            &STORM_KINDS
        } else {
            &RUNTIME_KINDS
        };
        let mut faults = Vec::with_capacity(bursts * cfg.burst_size);
        for b in 0..bursts {
            // Centers spaced evenly, jittered by up to half a slot.
            let slot = horizon / (bursts as u64 + 1);
            let center =
                (slot * (b as u64 + 1) + rng.gen_range(0..slot.max(1) / 2 + 1)).clamp(1, horizon);
            // 0 for the first burst, 1.0 for the last: drives escalation.
            let progress = if bursts > 1 {
                b as f64 / (bursts - 1) as f64
            } else {
                1.0
            };
            for _ in 0..cfg.burst_size {
                let mut kind = kinds[rng.gen_range(0..kinds.len())];
                if let FaultKind::DegradedLink { .. } = kind {
                    kind = FaultKind::DegradedLink {
                        capacity: rng.gen_range(30..90u8),
                    };
                }
                let arrival = (center + rng.gen_range(0..cfg.spread.max(1))).max(1);
                let lifetime = if cfg.escalate {
                    // Early bursts clear on their own; late bursts are
                    // wear-out: permanently broken hardware.
                    let roll = rng.gen_range(0.0..1.0f64);
                    if roll < 1.0 - progress {
                        FaultLifetime::Transient {
                            duration: rng.gen_range(16..512u64),
                        }
                    } else if roll < 1.0 - progress / 2.0 {
                        FaultLifetime::Intermittent {
                            period: rng.gen_range(64..512u64),
                            duty: rng.gen_range(8..64u64),
                        }
                    } else {
                        FaultLifetime::Permanent
                    }
                } else {
                    match rng.gen_range(0..3u8) {
                        0 => FaultLifetime::Transient {
                            duration: rng.gen_range(16..512u64),
                        },
                        1 => FaultLifetime::Intermittent {
                            period: rng.gen_range(64..512u64),
                            duty: rng.gen_range(8..64u64),
                        },
                        _ => FaultLifetime::Permanent,
                    }
                };
                faults.push(TimedFault {
                    arrival,
                    lifetime,
                    kind,
                });
            }
        }
        FaultSchedule { seed, faults }
    }

    /// The same schedule truncated to its first `k` faults (seed kept).
    /// With [`FaultSchedule::storm`]'s prefix stability this is "the same
    /// storm, stopped early".
    #[must_use]
    pub fn prefix(&self, k: usize) -> Self {
        FaultSchedule {
            seed: self.seed,
            faults: self.faults.iter().take(k).copied().collect(),
        }
    }

    /// Whether the schedule contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The earliest arrival cycle, if any fault is scheduled.
    #[must_use]
    pub fn first_arrival(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.arrival).min()
    }

    /// Projects the *permanent* faults onto a plain [`FaultPlan`] — the
    /// static damage an offline tool (e.g. `inject`) would see once every
    /// permanent fault has arrived. Transient and intermittent faults
    /// have no static projection.
    #[must_use]
    pub fn structural_plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faults: self
                .faults
                .iter()
                .filter(|f| f.lifetime.is_permanent())
                .map(|f| f.kind)
                .collect(),
        }
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} timed fault(s)", self.faults.len())?;
        for fault in &self.faults {
            write!(f, "; {fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetimes_activate_correctly() {
        let t = FaultLifetime::Transient { duration: 10 };
        assert!(!t.active(100, 99));
        assert!(t.active(100, 100));
        assert!(t.active(100, 109));
        assert!(!t.active(100, 110));

        let i = FaultLifetime::Intermittent { period: 10, duty: 3 };
        assert!(i.active(0, 0));
        assert!(i.active(0, 2));
        assert!(!i.active(0, 3));
        assert!(i.active(0, 10));
        assert!(!i.active(0, 19));

        let p = FaultLifetime::Permanent;
        assert!(!p.active(5, 4));
        assert!(p.active(5, 1_000_000));
    }

    #[test]
    fn degenerate_lifetimes_do_not_divide_by_zero() {
        let i = FaultLifetime::Intermittent { period: 0, duty: 0 };
        // period clamps to 1, duty clamps into [1, period] — always active.
        assert!(i.active(0, 0));
        assert!(i.active(0, 7));
    }

    #[test]
    fn random_schedule_is_reproducible_and_bounded() {
        let a = FaultSchedule::random(42, 8, 1000);
        let b = FaultSchedule::random(42, 8, 1000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            assert!(f.arrival >= 1 && f.arrival < 1000, "{f}");
            assert!(RUNTIME_KINDS.contains(&f.kind), "{f}");
        }
        assert_ne!(FaultSchedule::random(43, 8, 1000), a);
    }

    #[test]
    fn structural_plan_keeps_only_permanent_faults() {
        let s = FaultSchedule::new(7)
            .with(10, FaultLifetime::Permanent, FaultKind::DeadPe)
            .with(20, FaultLifetime::Transient { duration: 5 }, FaultKind::SeveredLink)
            .with(30, FaultLifetime::Permanent, FaultKind::StuckSwitch);
        let plan = s.structural_plan();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults, vec![FaultKind::DeadPe, FaultKind::StuckSwitch]);
    }

    #[test]
    fn storm_is_reproducible_bounded_and_prefix_stable() {
        let cfg = StormConfig::default();
        let a = FaultSchedule::storm(0xBADC_0FFE, &cfg);
        let b = FaultSchedule::storm(0xBADC_0FFE, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), cfg.bursts * cfg.burst_size);
        for f in &a.faults {
            assert!(f.arrival >= 1, "{f}");
            assert!(
                f.arrival <= cfg.horizon + cfg.spread,
                "{f} beyond horizon+spread"
            );
            assert!(STORM_KINDS.iter().any(|k| {
                matches!(
                    (k, f.kind),
                    (FaultKind::DegradedLink { .. }, FaultKind::DegradedLink { .. })
                ) || *k == f.kind
            }), "{f} not a storm kind");
        }
        // Prefix stability: the 3-fault prefix is the storm stopped early.
        let p = a.prefix(3);
        assert_eq!(p.seed, a.seed);
        assert_eq!(p.faults[..], a.faults[..3]);
        assert_ne!(FaultSchedule::storm(0xBADC_0FFF, &cfg), a);
    }

    #[test]
    fn storm_bursts_are_correlated_in_time() {
        let cfg = StormConfig {
            bursts: 4,
            burst_size: 3,
            horizon: 8192,
            spread: 16,
            ..StormConfig::default()
        };
        let s = FaultSchedule::storm(7, &cfg);
        for burst in s.faults.chunks(cfg.burst_size) {
            let lo = burst.iter().map(|f| f.arrival).min().unwrap();
            let hi = burst.iter().map(|f| f.arrival).max().unwrap();
            assert!(hi - lo < cfg.spread, "burst spans {lo}..{hi}");
        }
    }

    #[test]
    fn escalating_storms_end_permanent_heavy() {
        let cfg = StormConfig {
            bursts: 8,
            burst_size: 4,
            escalate: true,
            ..StormConfig::default()
        };
        // Across seeds, the last burst must be more permanent than the
        // first (statistically certain with these parameters).
        let mut first = 0u32;
        let mut last = 0u32;
        for seed in 0..16u64 {
            let s = FaultSchedule::storm(seed, &cfg);
            let chunks: Vec<_> = s.faults.chunks(cfg.burst_size).collect();
            first += chunks[0].iter().filter(|f| f.lifetime.is_permanent()).count() as u32;
            last += chunks[chunks.len() - 1]
                .iter()
                .filter(|f| f.lifetime.is_permanent())
                .count() as u32;
        }
        assert!(first == 0, "first bursts must be transient-leaning, got {first} permanent");
        assert!(last > first, "escalation missing: first={first} last={last}");
    }

    #[test]
    fn storm_without_port_faults_stays_node_scoped() {
        let cfg = StormConfig {
            port_faults: false,
            ..StormConfig::default()
        };
        let s = FaultSchedule::storm(3, &cfg);
        for f in &s.faults {
            assert!(RUNTIME_KINDS.contains(&f.kind), "{f}");
        }
    }

    #[test]
    fn display_is_informative() {
        let s = FaultSchedule::new(1).with(
            64,
            FaultLifetime::Intermittent { period: 32, duty: 4 },
            FaultKind::DeadPe,
        );
        let txt = s.to_string();
        assert!(txt.contains("dead-pe"), "{txt}");
        assert!(txt.contains("@64"), "{txt}");
        assert!(txt.contains("intermittent(4/32)"), "{txt}");
        assert!(s.first_arrival() == Some(64));
    }
}
