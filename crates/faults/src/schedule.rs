//! Temporal fault schedules: *when* a fault strikes and *how long* it
//! lives, layered on the structural damage model of [`FaultPlan`].
//!
//! [`FaultPlan`] describes damage that exists before anything runs — the
//! pre-silicon / pre-compilation view used by `inject`. A deployed
//! accelerator also degrades *mid-execution*: a PE burns out after a
//! million cycles, a link flakes intermittently under thermal stress, a
//! transient particle strike corrupts a window of results and then
//! clears. [`FaultSchedule`] captures that temporal dimension: each
//! [`TimedFault`] is a structural fault kind plus an **arrival cycle**
//! and a [`FaultLifetime`] (transient, intermittent, or permanent).
//!
//! The schedule itself is hardware-agnostic — victims are resolved
//! deterministically against a concrete (ADG, schedule) pair by the
//! runtime simulator (`dsagen_sim::runtime`), using [`FaultSchedule::seed`]
//! so the same schedule always strikes the same hardware. The
//! [`FaultSchedule::structural_plan`] view projects the permanent faults
//! back onto a plain [`FaultPlan`] for tools that only understand static
//! damage.
//!
//! Determinism contract: every function here is a pure function of the
//! seed — the same `(seed, count, horizon)` always yields the same
//! schedule, which is what makes recovery experiments reproducible.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{FaultKind, FaultPlan};

/// How long a runtime fault stays active after its arrival cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultLifetime {
    /// Active for `duration` cycles starting at the arrival cycle, then
    /// clears (particle strike, voltage droop).
    Transient {
        /// Active cycles after arrival.
        duration: u64,
    },
    /// Active for the first `duty` cycles of every `period`-cycle window
    /// after arrival (thermal flakiness, marginal timing).
    Intermittent {
        /// Window length in cycles.
        period: u64,
        /// Active cycles at the start of each window (clamped to
        /// `period`).
        duty: u64,
    },
    /// Active forever once arrived (electromigration, burned-out FU).
    Permanent,
}

impl FaultLifetime {
    /// Whether a fault with this lifetime, arrived at `arrival`, is
    /// active at `cycle`.
    #[must_use]
    pub fn active(self, arrival: u64, cycle: u64) -> bool {
        if cycle < arrival {
            return false;
        }
        let since = cycle - arrival;
        match self {
            FaultLifetime::Transient { duration } => since < duration,
            FaultLifetime::Intermittent { period, duty } => {
                let period = period.max(1);
                since % period < duty.clamp(1, period)
            }
            FaultLifetime::Permanent => true,
        }
    }

    /// Whether the fault never clears on its own.
    #[must_use]
    pub fn is_permanent(self) -> bool {
        matches!(self, FaultLifetime::Permanent)
    }
}

impl fmt::Display for FaultLifetime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultLifetime::Transient { duration } => write!(f, "transient({duration})"),
            FaultLifetime::Intermittent { period, duty } => {
                write!(f, "intermittent({duty}/{period})")
            }
            FaultLifetime::Permanent => f.write_str("permanent"),
        }
    }
}

/// One structural fault with an arrival time and a lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulated cycle at which the fault first strikes (0 = present
    /// from the first executed cycle).
    pub arrival: u64,
    /// How long the fault stays active.
    pub lifetime: FaultLifetime,
    /// What breaks. Only structural kinds are meaningful at runtime;
    /// config-plane kinds are rejected by the runtime resolver.
    pub kind: FaultKind,
}

impl TimedFault {
    /// Whether the fault is active at `cycle`.
    #[must_use]
    pub fn active_at(&self, cycle: u64) -> bool {
        self.lifetime.active(self.arrival, cycle)
    }
}

impl fmt::Display for TimedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{} ({})", self.kind, self.arrival, self.lifetime)
    }
}

/// The runtime fault kinds a [`FaultSchedule::random`] draw can produce.
///
/// * [`FaultKind::DeadPe`] / [`FaultKind::SeveredLink`] are **blocking**
///   faults: the hardware element stops moving data, so affected regions
///   stall and the progress watchdog catches them.
/// * [`FaultKind::StuckSwitch`] is a **silent-corruption** fault: routing
///   still moves data but delivers the wrong operands, so affected
///   regions keep firing and produce poisoned results that only a
///   result-residue check catches.
pub const RUNTIME_KINDS: [FaultKind; 3] = [
    FaultKind::DeadPe,
    FaultKind::SeveredLink,
    FaultKind::StuckSwitch,
];

/// A seeded, reproducible schedule of mid-execution faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for victim resolution: the same seed against the same
    /// (ADG, schedule) pair always strikes the same hardware.
    pub seed: u64,
    /// Faults in arrival order (not enforced; the runtime sorts by
    /// arrival internally where it matters).
    pub faults: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule with the given victim-resolution seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one timed fault (builder style).
    #[must_use]
    pub fn with(mut self, arrival: u64, lifetime: FaultLifetime, kind: FaultKind) -> Self {
        self.faults.push(TimedFault {
            arrival,
            lifetime,
            kind,
        });
        self
    }

    /// A schedule of `count` faults with kinds drawn uniformly from
    /// [`RUNTIME_KINDS`], arrivals uniform in `[1, horizon)`, and
    /// lifetimes mixed (≈⅓ transient, ⅓ intermittent, ⅓ permanent) with
    /// seed-derived durations. Deterministic in `(seed, count, horizon)`.
    #[must_use]
    pub fn random(seed: u64, count: usize, horizon: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E3A_0F42_51C6_88DDu64);
        let horizon = horizon.max(2);
        let faults = (0..count)
            .map(|_| {
                let kind = RUNTIME_KINDS[rng.gen_range(0..RUNTIME_KINDS.len())];
                let arrival = rng.gen_range(1..horizon);
                let lifetime = match rng.gen_range(0..3u8) {
                    0 => FaultLifetime::Transient {
                        duration: rng.gen_range(16..512u64),
                    },
                    1 => FaultLifetime::Intermittent {
                        period: rng.gen_range(64..512u64),
                        duty: rng.gen_range(8..64u64),
                    },
                    _ => FaultLifetime::Permanent,
                };
                TimedFault {
                    arrival,
                    lifetime,
                    kind,
                }
            })
            .collect();
        FaultSchedule { seed, faults }
    }

    /// Whether the schedule contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The earliest arrival cycle, if any fault is scheduled.
    #[must_use]
    pub fn first_arrival(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.arrival).min()
    }

    /// Projects the *permanent* faults onto a plain [`FaultPlan`] — the
    /// static damage an offline tool (e.g. `inject`) would see once every
    /// permanent fault has arrived. Transient and intermittent faults
    /// have no static projection.
    #[must_use]
    pub fn structural_plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faults: self
                .faults
                .iter()
                .filter(|f| f.lifetime.is_permanent())
                .map(|f| f.kind)
                .collect(),
        }
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} timed fault(s)", self.faults.len())?;
        for fault in &self.faults {
            write!(f, "; {fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetimes_activate_correctly() {
        let t = FaultLifetime::Transient { duration: 10 };
        assert!(!t.active(100, 99));
        assert!(t.active(100, 100));
        assert!(t.active(100, 109));
        assert!(!t.active(100, 110));

        let i = FaultLifetime::Intermittent { period: 10, duty: 3 };
        assert!(i.active(0, 0));
        assert!(i.active(0, 2));
        assert!(!i.active(0, 3));
        assert!(i.active(0, 10));
        assert!(!i.active(0, 19));

        let p = FaultLifetime::Permanent;
        assert!(!p.active(5, 4));
        assert!(p.active(5, 1_000_000));
    }

    #[test]
    fn degenerate_lifetimes_do_not_divide_by_zero() {
        let i = FaultLifetime::Intermittent { period: 0, duty: 0 };
        // period clamps to 1, duty clamps into [1, period] — always active.
        assert!(i.active(0, 0));
        assert!(i.active(0, 7));
    }

    #[test]
    fn random_schedule_is_reproducible_and_bounded() {
        let a = FaultSchedule::random(42, 8, 1000);
        let b = FaultSchedule::random(42, 8, 1000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            assert!(f.arrival >= 1 && f.arrival < 1000, "{f}");
            assert!(RUNTIME_KINDS.contains(&f.kind), "{f}");
        }
        assert_ne!(FaultSchedule::random(43, 8, 1000), a);
    }

    #[test]
    fn structural_plan_keeps_only_permanent_faults() {
        let s = FaultSchedule::new(7)
            .with(10, FaultLifetime::Permanent, FaultKind::DeadPe)
            .with(20, FaultLifetime::Transient { duration: 5 }, FaultKind::SeveredLink)
            .with(30, FaultLifetime::Permanent, FaultKind::StuckSwitch);
        let plan = s.structural_plan();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults, vec![FaultKind::DeadPe, FaultKind::StuckSwitch]);
    }

    #[test]
    fn display_is_informative() {
        let s = FaultSchedule::new(1).with(
            64,
            FaultLifetime::Intermittent { period: 32, duty: 4 },
            FaultKind::DeadPe,
        );
        let txt = s.to_string();
        assert!(txt.contains("dead-pe"), "{txt}");
        assert!(txt.contains("@64"), "{txt}");
        assert!(txt.contains("intermittent(4/32)"), "{txt}");
        assert!(s.first_arrival() == Some(64));
    }
}
