//! Codesign-as-a-service: a long-running, admission-controlled,
//! multi-tenant front end over the DSE explorer and the crash-consistent
//! artifact store (PR 9 tentpole).
//!
//! # Shape
//!
//! A [`Service`] owns a **bounded request queue** (an
//! `std::sync::mpsc::sync_channel`) drained by a fixed **worker pool**.
//! [`Service::submit`] is non-blocking admission control: when the queue
//! is full the request is *shed* with a typed [`Rejected::QueueFull`] —
//! the caller is told immediately instead of stacking unbounded latency
//! — and when the service is draining, with [`Rejected::Draining`].
//!
//! Each accepted request runs one DSE exploration with three protective
//! layers, all riding existing machinery:
//!
//! * **Deadline** — the per-request `deadline_ms` (measured from
//!   *submission*, so queue wait counts) becomes a [`RunControl`]
//!   deadline, honored at DSE iteration boundaries; per-candidate
//!   runaway protection stays with [`DseConfig::eval_budget_ms`].
//! * **Cancellation** — the caller can hand in an `Arc<AtomicBool>`
//!   token and flip it at any time; the explorer stops at the next
//!   iteration boundary with [`StopCause::Cancelled`].
//! * **Warm start** — an attached [`ArtifactStore`] serves verified
//!   schedules persisted by earlier processes; transient store I/O is
//!   retried with exponential backoff inside the store itself.
//!
//! [`Service::drain`] is graceful shutdown: the queue closes (new
//! submissions are rejected), every already-admitted request completes,
//! workers join, and a [`ServiceReport`] summarizes the run.
//!
//! # Determinism
//!
//! Exploration results depend only on each request's `(seed, shards)` —
//! the worker count is pure execution width. Service metrics count
//! *events* (submitted/completed/shed), so for a fixed request set the
//! final counter snapshot is identical at any worker count; only
//! latencies vary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsagen_adg::Adg;
use dsagen_dfg::Kernel;
use dsagen_dse::{CacheStats, DseConfig, Explorer, RunControl, StopCause};
use dsagen_store::ArtifactStore;
use dsagen_telemetry::{log, Level, Telemetry};

/// Service tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue depth; a submit finding it full is shed with
    /// [`Rejected::QueueFull`].
    pub queue_depth: usize,
    /// Deadline applied to requests that don't carry their own, in
    /// milliseconds from submission. `None` means unbounded.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 8,
            default_deadline_ms: None,
        }
    }
}

/// One tenant's codesign request.
#[derive(Debug)]
pub struct CompileRequest {
    /// Tenant label (metrics/log attribution only — no behavior).
    pub tenant: String,
    /// Starting hardware.
    pub adg: Adg,
    /// Kernels to codesign for.
    pub kernels: Vec<Kernel>,
    /// Exploration configuration (its `seed`/`shards` fix the result;
    /// its `eval_budget_ms` bounds individual candidate evaluations).
    pub dse: DseConfig,
    /// Per-request deadline in milliseconds from submission; falls back
    /// to [`ServiceConfig::default_deadline_ms`].
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation token; set it to `true` to stop the
    /// request at its next DSE iteration boundary.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Why a submission was refused at the door. Admission control is typed
/// so multi-tenant callers can distinguish "back off and retry"
/// ([`Rejected::QueueFull`]) from "this service is going away"
/// ([`Rejected::Draining`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The bounded queue is at capacity; the request was shed.
    QueueFull {
        /// The configured queue depth that was full.
        depth: usize,
    },
    /// The service is draining; no new work is admitted.
    Draining,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => {
                write!(f, "rejected: queue full (depth {depth}); request shed")
            }
            Rejected::Draining => write!(f, "rejected: service draining"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The completed outcome of one admitted request.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Echo of the request's tenant label.
    pub tenant: String,
    /// Best objective (perf²/mm²) found.
    pub objective: f64,
    /// Best design's area.
    pub area_mm2: f64,
    /// Aggregate performance of the best design.
    pub perf: f64,
    /// `Some` when the run stopped at a control boundary (deadline or
    /// cancellation) before natural convergence; the outcome is still the
    /// coherent best-so-far.
    pub stopped: Option<StopCause>,
    /// Schedule-cache counters for this request (the `store_hits` field
    /// is the cross-process warm-start figure).
    pub cache: CacheStats,
    /// Milliseconds spent queued before a worker picked the request up.
    pub queued_ms: f64,
    /// Milliseconds from submission to completion.
    pub latency_ms: f64,
}

/// Waiting on a [`Ticket`] failed: the worker processing the request
/// died (panicked) before replying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost;

impl fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("worker lost before replying")
    }
}

impl std::error::Error for WorkerLost {}

/// Handle to one admitted request's eventual outcome.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<CompileOutcome>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// [`WorkerLost`] if the worker died before replying.
    pub fn wait(self) -> Result<CompileOutcome, WorkerLost> {
        self.rx.recv().map_err(|_| WorkerLost)
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    #[must_use]
    pub fn try_wait(&self) -> Option<CompileOutcome> {
        self.rx.try_recv().ok()
    }
}

/// Final accounting returned by [`Service::drain`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests completed (including deadline/cancel early stops).
    pub completed: u64,
    /// Submissions shed with [`Rejected::QueueFull`].
    pub shed: u64,
    /// Completions that stopped on [`StopCause::DeadlineExceeded`].
    pub deadline_stopped: u64,
    /// Completions that stopped on [`StopCause::Cancelled`].
    pub cancelled: u64,
}

struct Job {
    req: CompileRequest,
    deadline: Option<Instant>,
    submitted: Instant,
    reply: mpsc::Sender<CompileOutcome>,
}

#[derive(Debug)]
struct Shared {
    telemetry: Telemetry,
    store: Option<ArtifactStore>,
    draining: AtomicBool,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    deadline_stopped: AtomicU64,
    cancelled: AtomicU64,
}

/// The running service: a bounded queue plus its worker pool. Dropping
/// the service drains it (ungracefully discarding the report); prefer
/// [`Service::drain`].
pub struct Service {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    queue_depth: usize,
    default_deadline_ms: Option<u64>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the worker pool. `store`, when present, is attached to
    /// every request's explorer (warm starts + persistence); `telemetry`
    /// is shared by all workers (counter merges commute, so snapshots
    /// are worker-count independent for a fixed request set).
    #[must_use]
    pub fn start(
        cfg: ServiceConfig,
        store: Option<ArtifactStore>,
        telemetry: Telemetry,
    ) -> Service {
        let workers = cfg.workers.max(1);
        let queue_depth = cfg.queue_depth.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            telemetry,
            store,
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_stopped: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dsagen-svc-{w}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            tx: Some(tx),
            workers: handles,
            shared,
            queue_depth,
            default_deadline_ms: cfg.default_deadline_ms,
        }
    }

    /// Starts a service with `cfg.default_deadline_ms` applied and no
    /// store, observing `telemetry` — the minimal useful configuration.
    #[must_use]
    pub fn start_basic(cfg: ServiceConfig) -> Service {
        Service::start(cfg, None, Telemetry::disabled())
    }

    /// Non-blocking admission: enqueues the request or sheds it with a
    /// typed rejection. Shedding is an *observable event* — counted under
    /// `service.shed`, recorded to the flight ring, and (when
    /// `DSAGEN_FLIGHT_DIR` is set) dumped, so shed storms leave evidence.
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] when the bounded queue is at capacity,
    /// [`Rejected::Draining`] once [`Service::drain`] has begun.
    pub fn submit(&self, req: CompileRequest) -> Result<Ticket, Rejected> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(Rejected::Draining);
        }
        let Some(tx) = &self.tx else {
            return Err(Rejected::Draining);
        };
        let deadline = req
            .deadline_ms
            .or(self.default_deadline_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let (reply_tx, reply_rx) = mpsc::channel();
        let tenant = req.tenant.clone();
        let job = Job {
            req,
            deadline,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.admitted.fetch_add(1, Ordering::Relaxed);
                self.shared.telemetry.metrics().add("service.admitted", 1);
                Ok(Ticket { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.telemetry.metrics().add("service.shed", 1);
                log(
                    Level::Warn,
                    format!(
                        "service: shed request from tenant '{tenant}' (queue depth {} full)",
                        self.queue_depth
                    ),
                );
                self.shared.telemetry.recorder().record("service", || {
                    (
                        "shed".to_string(),
                        format!("tenant={tenant} depth={}", self.queue_depth),
                    )
                });
                self.shared
                    .telemetry
                    .recorder()
                    .dump_on_error("service-shed");
                Err(Rejected::QueueFull {
                    depth: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(Rejected::Draining),
        }
    }

    /// Graceful drain: closes the queue (subsequent submits get
    /// [`Rejected::Draining`]), lets every admitted request finish,
    /// joins the workers, and returns the final accounting.
    #[must_use]
    pub fn drain(mut self) -> ServiceReport {
        self.shared.draining.store(true, Ordering::Release);
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            if handle.join().is_err() {
                log(Level::Error, "service: worker panicked during drain");
            }
        }
        let report = self.report();
        self.shared
            .telemetry
            .metrics()
            .add("service.drained", 1);
        report
    }

    /// Current accounting snapshot (also available live, before drain).
    #[must_use]
    pub fn report(&self) -> ServiceReport {
        let s = &self.shared;
        ServiceReport {
            admitted: s.admitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_stopped: s.deadline_stopped.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        // Hold the lock only for the dequeue, never for the work.
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else {
            return; // queue closed and empty: drain complete
        };
        process(job, shared);
    }
}

fn process(job: Job, shared: &Arc<Shared>) {
    let Job {
        req,
        deadline,
        submitted,
        reply,
    } = job;
    let queued_ms = submitted.elapsed().as_secs_f64() * 1e3;
    let control = RunControl {
        cancel: req.cancel.clone(),
        deadline,
    };

    // A request whose deadline passed while queued (or that was cancelled
    // before dequeue) is answered immediately with an empty best-effort
    // outcome instead of burning a worker on doomed exploration.
    let outcome = if let Some(cause) = control.should_stop() {
        CompileOutcome {
            tenant: req.tenant.clone(),
            objective: 0.0,
            area_mm2: 0.0,
            perf: 0.0,
            stopped: Some(cause),
            cache: CacheStats::default(),
            queued_ms,
            latency_ms: submitted.elapsed().as_secs_f64() * 1e3,
        }
    } else {
        let mut explorer = Explorer::new(req.adg, &req.kernels, req.dse)
            .with_telemetry(shared.telemetry.clone())
            .with_control(control);
        if let Some(store) = &shared.store {
            explorer.attach_store(store.clone());
        }
        let result = explorer.run();
        CompileOutcome {
            tenant: req.tenant.clone(),
            objective: result.best.objective,
            area_mm2: result.best.cost.area_mm2,
            perf: result.best.perf,
            stopped: result.stopped,
            cache: explorer.cache_stats(),
            queued_ms,
            latency_ms: submitted.elapsed().as_secs_f64() * 1e3,
        }
    };

    shared.completed.fetch_add(1, Ordering::Relaxed);
    let m = shared.telemetry.metrics();
    m.add("service.completed", 1);
    m.observe("service.latency_ms", outcome.latency_ms.max(0.0) as u64);
    match outcome.stopped {
        Some(StopCause::DeadlineExceeded) => {
            shared.deadline_stopped.fetch_add(1, Ordering::Relaxed);
            m.add("service.stopped.deadline_exceeded", 1);
        }
        Some(StopCause::Cancelled) => {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            m.add("service.stopped.cancelled", 1);
        }
        _ => {}
    }
    // The requester may have walked away (dropped the ticket); that is
    // not a service error.
    let _ = reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsagen_adg::presets;
    use dsagen_workloads::{suite_kernels, Suite};

    fn tiny_request(tenant: &str, seed: u64) -> CompileRequest {
        let kernels: Vec<Kernel> = suite_kernels(Suite::Dsp)
            .into_iter()
            .filter(|k| k.name == "centro-fir")
            .collect();
        assert!(!kernels.is_empty(), "workload suite must contain centro-fir");
        CompileRequest {
            tenant: tenant.to_string(),
            adg: presets::dse_initial(),
            kernels,
            dse: DseConfig {
                seed,
                max_iters: 2,
                patience: 2,
                sched_iters: 30,
                max_unroll: 1,
                shards: 1,
                threads: 1,
                ..DseConfig::default()
            },
            deadline_ms: None,
            cancel: None,
        }
    }

    #[test]
    fn submit_run_drain_completes() {
        let svc = Service::start_basic(ServiceConfig {
            workers: 2,
            queue_depth: 4,
            default_deadline_ms: None,
        });
        let t1 = svc.submit(tiny_request("a", 1)).expect("admitted");
        let t2 = svc.submit(tiny_request("b", 2)).expect("admitted");
        let o1 = t1.wait().expect("worker replies");
        let o2 = t2.wait().expect("worker replies");
        assert_eq!(o1.tenant, "a");
        assert_eq!(o2.tenant, "b");
        assert!(o1.stopped.is_none());
        let report = svc.drain();
        assert_eq!(report.admitted, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.shed, 0);
    }

    #[test]
    fn draining_service_rejects_typed() {
        let svc = Service::start_basic(ServiceConfig::default());
        let shared = Arc::clone(&svc.shared);
        shared.draining.store(true, Ordering::Release);
        match svc.submit(tiny_request("late", 3)) {
            Err(Rejected::Draining) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
    }
}
