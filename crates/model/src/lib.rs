//! Analytical performance and power/area models for DSAGEN (§V-B, §V-C).
//!
//! * [`PerfModel`] estimates a scheduled kernel version's cycles from its
//!   streams, schedule timing facts, and control-core costs — the
//!   `IPC = #Insts × ActivityRatio` model of §V-B, with activity limited by
//!   memory bandwidth, recurrences, instruction multiplexing, and the
//!   control core.
//! * [`AreaPowerModel`] is the regression model of §V-C, fitted on a
//!   sampled per-component dataset of [`synthesize_component`] — our
//!   synthetic stand-in for Synopsys DC at UMC 28 nm (see DESIGN.md for the
//!   substitution rationale). [`synthesize_adg`] plays the role of
//!   full-fabric synthesis for Fig 15's model validation.
//! * [`objective`] computes the DSE objective `perf² / mm²` (§V).
//!
//! # Example
//!
//! ```
//! use dsagen_adg::presets;
//! use dsagen_model::{synthesize_adg, AreaPowerModel};
//!
//! let adg = presets::softbrain();
//! let model = AreaPowerModel::default();
//! let est = model.estimate_adg(&adg);
//! let syn = synthesize_adg(&adg);
//! // The regression estimate lands a few percent below "synthesis".
//! assert!(est.area_mm2 < syn.area_mm2);
//! assert!(est.area_mm2 > 0.85 * syn.area_mm2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod perf;
mod regress;
pub mod scaled;

pub use area::{
    component_features, synthesize_adg, synthesize_component, HwCost, FABRIC_OVERHEAD, N_FEATURES,
};
pub use perf::{PerfEstimate, PerfModel, RegionPerf};
pub use regress::AreaPowerModel;

/// The design-space-exploration objective `perf² / mm²` (§V step 3).
///
/// `perf` is a throughput figure (IPC or 1/time — any consistent unit);
/// `area_mm2` must be positive.
#[must_use]
pub fn objective(perf: f64, area_mm2: f64) -> f64 {
    perf * perf / area_mm2.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_prefers_fast_and_small() {
        assert!(objective(2.0, 1.0) > objective(1.0, 1.0));
        assert!(objective(1.0, 0.5) > objective(1.0, 1.0));
        // perf² means performance dominates: 2× perf beats 2× area.
        assert!(objective(2.0, 2.0) > objective(1.0, 1.0));
    }

    #[test]
    fn objective_handles_zero_area() {
        assert!(objective(1.0, 0.0).is_finite());
    }
}
